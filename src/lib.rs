//! Umbrella crate for the SuperOffload reproduction workspace.
//!
//! Re-exports every member crate so the examples and cross-crate
//! integration tests have a single import root. See the individual crates
//! for the substance:
//!
//! - [`superchip_sim`] — discrete-event Superchip simulator (performance plane)
//! - [`tensorlite`] — numeric tensor substrate (numeric plane)
//! - [`llm_model`] — model configs, accounting, real miniature GPT
//! - [`grace_optim`] — real Adam implementations, mixed precision, rollback
//! - [`superoffload`] — the paper's contribution
//! - [`baselines`] — the seven comparison systems

pub use baselines;
pub use grace_optim;
pub use llm_model;
pub use superchip_sim;
pub use superoffload;
pub use tensorlite;
