//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the slice of the criterion API the workspace's benches use:
//! `Criterion`, `benchmark_group` with `sample_size`/`throughput`/
//! `bench_function`/`bench_with_input`/`finish`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! It performs real wall-clock measurements (median of `sample_size`
//! samples after a short warm-up) and prints one line per benchmark, but
//! does no statistical analysis, HTML reporting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion trait so benchmark entry points accept either a string or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `sample_size` samples of `f` (after one warm-up call) and
    /// records per-sample wall-clock durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(group: &str, id: &BenchmarkId, time: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if time > Duration::ZERO => {
            format!("  {:.3e} elem/s", n as f64 / time.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if time > Duration::ZERO => {
            format!("  {:.3e} B/s", n as f64 / time.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{group}/{id}: median {time:.2?}{rate}", id = id.id);
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub keeps samples fixed instead
    /// of targeting a measurement duration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id, b.median(), self.throughput);
        self
    }

    /// Runs a benchmark closure with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id, b.median(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        report(
            "bench",
            &BenchmarkId::from_parameter(name),
            b.median(),
            None,
        );
        self
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
        c.bench_function("top-level", |b| b.iter(|| black_box(2 + 2)));
    }
}
