//! Offline, deterministic stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements exactly the proptest surface the workspace's property tests
//! use: the `proptest!` macro, `prop_assert*` macros, `Strategy` with
//! `prop_map`/`prop_flat_map`, numeric range strategies, tuple strategies,
//! `prop::collection::vec`, `any::<bool>()`, and `ProptestConfig`.
//!
//! Differences from real proptest, by design:
//!
//! - **Fully deterministic**: each case's RNG is seeded from the test's
//!   module path, name, and case index. Reruns always replay the same
//!   inputs, so no regression files are needed (existing
//!   `.proptest-regressions` files are ignored).
//! - **No shrinking**: a failing case panics immediately; the case index is
//!   printed so the exact inputs can be replayed.
//! - **Default case count is 32** (not 256) to keep `cargo test` fast on
//!   tests that run whole schedule simulations per case. Tests that set
//!   `ProptestConfig::with_cases(n)` are honored exactly.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG and configuration for the test harness.

    /// xorshift64* RNG seeded from the test identity and case index, so
    /// every run of a given test case draws identical values.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed for case `case` of the test named `test_name` (normally
        /// `module_path!() + "::" + fn name`).
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if h == 0 {
                h = 0x853c_49e6_748f_ea9b;
            }
            let mut rng = TestRng { state: h };
            // One warm-up step decorrelates nearby seeds.
            rng.next_u64();
            rng
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each test body runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Prints the failing case index when a test body panics, so the
    /// deterministic case can be replayed. Used by the `proptest!` macro.
    #[derive(Debug)]
    pub struct CaseReporter {
        /// Full test name.
        pub test: &'static str,
        /// Case index currently executing.
        pub case: u32,
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest (vendored stub): `{}` failed at deterministic case {}",
                    self.test, self.case
                );
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking; a strategy
    /// simply samples from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to produce a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform `bool` strategy backing `any::<bool>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = u128::from(rng.next_u64()) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    // Rounding can land exactly on the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )+};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategies!(A);
    tuple_strategies!(A, B);
    tuple_strategies!(A, B, C);
    tuple_strategies!(A, B, C, D);
    tuple_strategies!(A, B, C, D, E);
    tuple_strategies!(A, B, C, D, E, G);
    tuple_strategies!(A, B, C, D, E, G, H);
    tuple_strategies!(A, B, C, D, E, G, H, I);
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any()` entry point.

    use crate::strategy::{BoolStrategy, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open range of lengths a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi_exclusive, "empty size range");
            let span = (self.hi_exclusive - self.lo) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub use test_runner::ProptestConfig;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::collection::vec(..)` works after a prelude import.
    pub use crate as prop;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// deterministically-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __reporter = $crate::test_runner::CaseReporter {
                    test: concat!(module_path!(), "::", stringify!($name)),
                    case: __case,
                };
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(__reporter.test, __case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample(&__strats, &mut __rng);
                $body
                drop(__reporter);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn vec_and_combinators_work() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = prop::collection::vec(0usize..10, 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.sample(&mut rng);
            assert!((2..5).contains(&len));
        }
        let exact = prop::collection::vec(0usize..10, 4);
        assert_eq!(exact.sample(&mut rng).len(), 4);
        let dependent = (1usize..6)
            .prop_flat_map(|n| prop::collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = dependent.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let (x, y) = if flip { (a, b) } else { (b, a) };
            prop_assert_eq!(x + y, a + b, "commutativity with flip={}", flip);
        }
    }
}
