//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the tiny slice of the crossbeam API the workspace actually uses
//! (`crossbeam::channel::unbounded` plus `Sender`/`Receiver`), backed by
//! `std::sync::mpsc`. Semantics relevant to this workspace are identical:
//! unbounded FIFO, `Sender: Send + Clone`, and `Receiver::iter()` draining
//! until every sender is dropped.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer channel API compatible with `crossbeam-channel`'s
    //! `unbounded` constructor, as far as this workspace exercises it.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub type Sender<T> = mpsc::Sender<T>;
    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
            });
        });
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
