//! Calibration regression tests: pin the headline numbers of EXPERIMENTS.md
//! within tolerance bands so future changes to cost models or schedules
//! cannot silently drift the reproduction away from the paper.

use baselines::common::single_chip_cluster;
use baselines::{zero_infinity, zero_offload};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

fn wl(name: &str, batch: u32) -> Workload {
    Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
}

fn within(value: f64, target: f64, tol: f64) -> bool {
    (value - target).abs() <= target * tol
}

/// SuperOffload's 5B throughput stays near the paper's 238.9 TFLOPS.
#[test]
fn superoffload_5b_pinned_near_239_tflops() {
    let chip = presets::gh200_chip();
    let r = simulate_single_chip(&chip, &wl("5B", 8), &SuperOffloadOptions::default());
    assert!(
        within(r.tflops, 242.6, 0.08),
        "5B SuperOffload drifted: {:.1} TFLOPS (calibrated 242.6, paper 238.9)",
        r.tflops
    );
}

/// The Table 2 baseline stays near the paper's 116 TFLOPS band.
#[test]
fn ablation_baseline_pinned_near_paper_band() {
    let chip = presets::gh200_chip();
    let r = simulate_single_chip(
        &chip,
        &wl("5B", 8),
        &SuperOffloadOptions::ablation(false, false, false, false),
    );
    assert!(
        (110.0..165.0).contains(&r.tflops),
        "ablation baseline drifted: {:.1} TFLOPS (paper 116.2)",
        r.tflops
    );
}

/// ZeRO-Offload's 13B configuration keeps the Fig. 4 idle band.
#[test]
fn zero_offload_idle_band_pinned() {
    let cluster = single_chip_cluster(&presets::gh200_chip());
    let r = zero_offload::simulate(&cluster, 1, &wl("13B", 8));
    let idle = 1.0 - r.gpu_util;
    assert!(
        (0.30..0.55).contains(&idle),
        "ZeRO-Offload idle drifted: {:.1}% (paper 40-50%)",
        idle * 100.0
    );
}

/// ZeRO-Infinity stays in the paper's sub-50-TFLOPS band (with margin).
#[test]
fn zero_infinity_band_pinned() {
    let cluster = single_chip_cluster(&presets::gh200_chip());
    for name in ["5B", "25B"] {
        let r = zero_infinity::simulate(&cluster, 1, &wl(name, 8));
        assert!(
            (35.0..60.0).contains(&r.tflops),
            "{name}: ZeRO-Infinity drifted to {:.1} TFLOPS",
            r.tflops
        );
    }
}

/// The C2C bandwidth anchors: ~50 GB/s at 1 MiB, >400 GB/s at 64 MiB.
#[test]
fn c2c_curve_anchors_pinned() {
    let c2c = presets::nvlink_c2c();
    let small = c2c.effective_bandwidth(1_000_000) / 1e9;
    let knee = c2c.effective_bandwidth(64 << 20) / 1e9;
    assert!(
        (40.0..65.0).contains(&small),
        "1 MB anchor drifted: {small:.1} GB/s"
    );
    assert!(knee > 390.0, "64 MiB anchor drifted: {knee:.1} GB/s");
}

/// The modeled Table 3 GraceAdam latencies stay pinned to the paper.
#[test]
fn grace_adam_model_pinned_to_table3() {
    use superoffload::costs::OptimizerImpl;
    let cpu = presets::grace_cpu(480 * superchip_sim::GB);
    let t1 = OptimizerImpl::GraceAdam
        .step_time(&cpu, 1_000_000_000)
        .as_secs();
    let t8 = OptimizerImpl::GraceAdam
        .step_time(&cpu, 8_000_000_000)
        .as_secs();
    assert!(within(t1, 0.082, 0.15), "1B GraceAdam drifted: {t1:.3} s");
    assert!(
        within(t8, 0.706, 0.20),
        "8B GraceAdam drifted: {t8:.3} s (paper 0.608)"
    );
}

/// The 25B single-chip capacity headline holds exactly.
#[test]
fn capacity_headline_pinned() {
    let chip = presets::gh200_chip();
    assert!(simulate_single_chip(&chip, &wl("25B", 8), &SuperOffloadOptions::default()).feasible());
    // The next Appendix-A rung must NOT fit (50B), keeping 25B the headline.
    assert!(
        !simulate_single_chip(&chip, &wl("50B", 8), &SuperOffloadOptions::default()).feasible()
    );
}
