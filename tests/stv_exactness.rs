//! Cross-crate integration tests of the numeric plane: the real STV engine
//! over the real transformer, verified against the synchronous reference —
//! the §4.4 "exact optimization" claim under many regimes.

use grace_optim::adam::AdamConfig;
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::engine::{EngineConfig, StvEngine, SyncEngine};

fn run_pair(
    model_cfg: GptConfig,
    engine_cfg: EngineConfig,
    seed: u64,
    iters: usize,
    batch: usize,
    seq: usize,
) -> (StvEngine, SyncEngine) {
    let mut stv = StvEngine::new(GptModel::new(model_cfg.clone(), seed), engine_cfg);
    let mut sync = SyncEngine::new(GptModel::new(model_cfg, seed), engine_cfg);
    let mut pile = SyntheticPile::new(61, seed);
    for it in 0..iters {
        let batch = pile.next_batch(batch, seq);
        stv.train_step(&batch).expect("stv step");
        sync.train_step(&batch).expect("sync step");
        assert_eq!(
            stv.model().params(),
            sync.model().params(),
            "divergence at iteration {it}"
        );
    }
    (stv, sync)
}

fn tiny_cfg() -> GptConfig {
    GptConfig {
        vocab: 61,
        hidden: 16,
        layers: 2,
        heads: 2,
        max_seq: 24,
    }
}

#[test]
fn exact_across_seeds_and_bucket_counts() {
    for seed in [1u64, 7, 99] {
        for buckets in [1usize, 3, 8] {
            let cfg = EngineConfig {
                buckets,
                ..EngineConfig::default()
            };
            let (stv, _) = run_pair(tiny_cfg(), cfg, seed, 12, 2, 12);
            assert!(stv.stats().steps > 0, "seed {seed} buckets {buckets}");
        }
    }
}

#[test]
fn exact_under_aggressive_clipping() {
    let cfg = EngineConfig {
        max_grad_norm: 0.02,
        ..EngineConfig::default()
    };
    let (stv, sync) = run_pair(tiny_cfg(), cfg, 5, 20, 2, 12);
    assert!(
        stv.stats().clip_rollbacks > 10,
        "tight threshold should clip nearly every step: {:?}",
        stv.stats()
    );
    assert_eq!(stv.stats().clip_rollbacks, sync.stats().clip_rollbacks);
}

#[test]
fn exact_through_overflow_recovery() {
    let cfg = EngineConfig {
        initial_loss_scale: 1e9,
        ..EngineConfig::default()
    };
    let (stv, sync) = run_pair(tiny_cfg(), cfg, 11, 40, 2, 12);
    assert!(stv.stats().skipped > 3, "expected warm-up skips");
    assert_eq!(stv.stats().skipped, sync.stats().skipped);
    assert!(stv.stats().steps > 0, "training must resume after backoff");
}

#[test]
fn exact_with_larger_model_and_batches() {
    let model = GptConfig {
        vocab: 61,
        hidden: 32,
        layers: 3,
        heads: 4,
        max_seq: 24,
    };
    let cfg = EngineConfig {
        buckets: 6,
        ..EngineConfig::default()
    };
    let (stv, _) = run_pair(model, cfg, 3, 8, 4, 20);
    assert!(stv.stats().steps > 0);
}

#[test]
fn stv_loss_matches_sync_loss_exactly() {
    let cfg = EngineConfig::default();
    let mut stv = StvEngine::new(GptModel::new(tiny_cfg(), 17), cfg);
    let mut sync = SyncEngine::new(GptModel::new(tiny_cfg(), 17), cfg);
    let mut pile = SyntheticPile::new(61, 17);
    for _ in 0..10 {
        let batch = pile.next_batch(2, 12);
        let a = stv.train_step(&batch).unwrap();
        let b = sync.train_step(&batch).unwrap();
        assert_eq!(a.loss().to_bits(), b.loss().to_bits());
    }
}

#[test]
fn adam_config_flows_through_engines() {
    // A different learning rate must change the trajectory (sanity that the
    // config plumbs through) while exactness still holds.
    let fast = EngineConfig {
        adam: AdamConfig {
            lr: 1e-2,
            ..AdamConfig::default()
        },
        ..EngineConfig::default()
    };
    let slow = EngineConfig::default();
    let (stv_fast, _) = run_pair(tiny_cfg(), fast, 23, 6, 2, 12);
    let (stv_slow, _) = run_pair(tiny_cfg(), slow, 23, 6, 2, 12);
    assert_ne!(stv_fast.model().params(), stv_slow.model().params());
}
