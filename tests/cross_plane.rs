//! Integration tests tying the two planes together: the accounting used by
//! the performance plane must agree with the numeric plane's real objects,
//! and the policy modules must compose coherently.

use llm_model::memory::ModelStateMemory;
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload::bucket::{BucketPlan, DEFAULT_BUCKET_BYTES};
use superoffload::casting::CastPlacement;
use superoffload::policy::{choose_policy, WeightPolicy};
use superoffload::sadfg::{build_iteration_graph, Device, OpKind};

/// The real flat model's parameter count matches the analytic formula for
/// a same-shaped config (with learned positions added, which the analytic
/// count excludes by its RoPE convention).
#[test]
fn real_model_matches_analytic_param_count() {
    let g = GptConfig {
        vocab: 100,
        hidden: 64,
        layers: 3,
        heads: 4,
        max_seq: 32,
    };
    let model = GptModel::new(g.clone(), 1);
    let mut cfg = ModelConfig::new("t", g.layers as u32, g.hidden as u32);
    cfg.vocab = g.vocab as u32;
    let analytic = cfg.param_count() as usize;
    let learned_positions = g.max_seq * g.hidden;
    assert_eq!(model.num_params(), analytic + learned_positions);
}

/// Bucketizing the real model's flat vector covers every parameter exactly
/// once — buckets are literally sub-ranges of the same storage the STV
/// engine rolls back.
#[test]
fn bucket_plan_partitions_real_flat_model() {
    let model = GptModel::new(GptConfig::tiny(), 2);
    let plan = BucketPlan::new(model.num_params() as u64, 4096, 1);
    let total: u64 = (0..plan.num_buckets).map(|i| plan.bucket_elems(i)).sum();
    assert_eq!(total, model.num_params() as u64);
    // Every view of the model falls inside the covered range.
    for v in model.views() {
        assert!(v.offset + v.len <= model.num_params());
    }
}

/// The 16Ψ accounting matches a literal sum over the mixed-precision
/// buffers the numeric plane would allocate.
#[test]
fn sixteen_psi_matches_buffer_sum() {
    let n = 12_345u64;
    let m = ModelStateMemory::for_params(n);
    let fp16 = 2 * n;
    let fp32 = 4 * n;
    // fp16 params + fp16 grads + fp32 master + fp32 m + fp32 v
    assert_eq!(m.total(), fp16 + fp16 + fp32 + fp32 + fp32);
}

/// Policy + casting + partitioning compose: on a GH200 the adaptive stack
/// picks GPU-side casting, keeps compute on the GPU, offloads the optimizer,
/// and goes weight-stationary for small models.
#[test]
fn adaptive_stack_is_coherent_on_gh200() {
    let chip = presets::gh200_chip();
    let wl = Workload::new(ModelConfig::appendix_a_5b(), 8, 2048);

    assert_eq!(choose_policy(&chip, &wl, 0), WeightPolicy::Stationary);
    assert_eq!(
        CastPlacement::choose(&chip, DEFAULT_BUCKET_BYTES / 4),
        CastPlacement::GpuCastMoveFp32
    );

    let g = build_iteration_graph(&chip, 8, 100_000_000, 8 * 2048);
    let placement = g.partition(&chip);
    for (node, dev) in g.nodes().iter().zip(&placement) {
        match node.kind {
            OpKind::OptimizerStep => assert_eq!(*dev, Device::Cpu),
            OpKind::Forward | OpKind::Backward => assert_eq!(*dev, Device::Gpu),
            _ => {}
        }
    }
}

/// On a PCIe-era chip the same adaptive stack flips to the conventional
/// choices — the paper's "revisit the assumptions" point, in reverse.
#[test]
fn adaptive_stack_reverts_on_pcie() {
    let chip = presets::dgx2_chip();
    assert_eq!(
        CastPlacement::choose(&chip, DEFAULT_BUCKET_BYTES / 4),
        CastPlacement::CpuCastMoveFp16Fused
    );
}

/// A full tiny training step with FP16 gradient round-tripping keeps every
/// model-state buffer finite — the invariant the validator protects.
#[test]
fn tiny_training_keeps_states_finite() {
    use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, GraceAdam};
    use tensorlite::cast::{f16_to_f32_slice, f32_to_f16_slice};

    let mut model = GptModel::new(GptConfig::tiny(), 9);
    let mut pile = llm_model::SyntheticPile::new(64, 9);
    let mut state = AdamState::new(model.num_params());
    let cfg = AdamConfig::default();
    for t in 1..=5 {
        model.zero_grads();
        let (x, y) = pile.next_sequence(16);
        model.forward_backward(&x, &y).unwrap();
        // FP16 round trip, as if the gradients crossed the C2C link.
        let grads = f16_to_f32_slice(&f32_to_f16_slice(model.grads()));
        GraceAdam::default().step(&cfg, t, model.params_mut(), &grads, &mut state);
        assert!(model.params().iter().all(|p| p.is_finite()));
        assert!(state.v.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
