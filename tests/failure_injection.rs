//! Failure-injection tests: corrupted gradients, poisoned checkpoints, and
//! adversarial inputs must be detected and contained — the robustness the
//! validation pass (§4.4) exists to provide.

use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, GraceAdam};
use grace_optim::rollback::RollbackGuard;
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::checkpoint::Checkpoint;
use superoffload::engine::{EngineConfig, StepOutcome, StvEngine, SyncEngine};
use tensorlite::XorShiftRng;

fn tiny() -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 53,
            hidden: 16,
            layers: 2,
            heads: 2,
            max_seq: 16,
        },
        404,
    )
}

/// A NaN planted anywhere in the parameters poisons the loss; the engines
/// must skip (never commit a poisoned update) and agree with each other.
#[test]
fn injected_parameter_nan_forces_identical_skips() {
    let cfg = EngineConfig::default();
    let mut rng = XorShiftRng::new(9);
    for _ in 0..5 {
        let mut model = tiny();
        // Plant the NaN in the final LayerNorm gain: it is on every token's
        // path, so the poison is guaranteed to reach the loss.
        let view = model.view("lnf.gamma").expect("lnf.gamma exists");
        let idx = view.offset + rng.next_usize(view.len);
        model.params_mut()[idx] = f32::NAN;
        let mut stv = StvEngine::new(model.clone(), cfg);
        let mut sync = SyncEngine::new(model, cfg);
        let mut pile = SyntheticPile::new(53, 1);
        let batch = pile.next_batch(2, 12);
        let a = stv.train_step(&batch).unwrap();
        let b = sync.train_step(&batch).unwrap();
        assert!(
            matches!(a, StepOutcome::Skipped { .. }),
            "poisoned model must skip, got {a:?}"
        );
        assert!(matches!(b, StepOutcome::Skipped { .. }));
        // Bitwise comparison: the planted NaN makes `==` on floats useless.
        let bits = |m: &GptModel| -> Vec<u32> { m.params().iter().map(|p| p.to_bits()).collect() };
        assert_eq!(bits(stv.model()), bits(sync.model()));
    }
}

/// Randomly corrupted checkpoint bytes must never load as a valid state
/// (or, if the corruption misses every check, must at least preserve
/// structural invariants).
#[test]
fn corrupted_checkpoints_never_load_invalid_structure() {
    let engine = StvEngine::new(tiny(), EngineConfig::default());
    let bytes = engine.checkpoint().to_bytes();
    let mut rng = XorShiftRng::new(77);
    for _ in 0..50 {
        let mut corrupted = bytes.clone();
        let idx = rng.next_usize(corrupted.len());
        corrupted[idx] ^= 0x40 + (rng.next_usize(64) as u8);
        match Checkpoint::from_bytes(&corrupted) {
            Err(_) => {} // detected — good
            Ok(ckpt) => {
                // A flipped float payload can slip through; the structure
                // must still be coherent.
                assert_eq!(ckpt.params.len(), ckpt.m.len());
                assert_eq!(ckpt.params.len(), ckpt.v.len());
            }
        }
    }
}

/// Truncated checkpoints at every prefix length are rejected, not
/// misinterpreted.
#[test]
fn truncated_checkpoints_always_rejected() {
    let engine = SyncEngine::new(tiny(), EngineConfig::default());
    let bytes = engine.checkpoint().to_bytes();
    for cut in (0..bytes.len()).step_by(97) {
        assert!(
            Checkpoint::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes parsed as a checkpoint"
        );
    }
}

/// Rollback containment: if a speculative step is poisoned mid-flight
/// (gradient corruption after capture), restoring the guard recovers the
/// exact pre-step state regardless of what the step wrote.
#[test]
fn rollback_contains_arbitrary_corruption() {
    let cfg = AdamConfig::default();
    let mut rng = XorShiftRng::new(13);
    let n = 500;
    let mut params: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
    let mut state = AdamState::new(n);
    let before_p = params.clone();

    for trial in 0..10 {
        let guard = RollbackGuard::capture_all(&params, &state);
        // Corrupted gradients: random NaN/Inf/huge entries.
        let grads: Vec<f32> = (0..n)
            .map(|_| match rng.next_usize(4) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => 1e30,
                _ => rng.normal(),
            })
            .collect();
        GraceAdam::default().step(&cfg, trial + 1, &mut params, &grads, &mut state);
        guard.restore(&mut params, &mut state);
        assert_eq!(params, before_p, "trial {trial}: rollback incomplete");
        assert!(state.m.iter().all(|&x| x == 0.0));
        assert!(state.v.iter().all(|&x| x == 0.0));
    }
}

/// Extreme inputs: the longest sequence, repeated tokens, and the maximum
/// token id never break the forward/backward path.
#[test]
fn adversarial_inputs_stay_finite() {
    let mut model = tiny();
    let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
        (vec![52; 16], vec![52; 16]), // max token id, max length
        (vec![0; 16], vec![0; 16]),   // all zeros
        (
            (0..16).map(|i| i % 53).collect(),
            (1..17).map(|i| i % 53).collect(),
        ),
        (vec![5], vec![9]), // single token
    ];
    for (x, y) in cases {
        model.zero_grads();
        let loss = model.forward_backward(&x, &y).unwrap();
        assert!(loss.is_finite(), "loss blew up on {x:?}");
        assert!(model.grads().iter().all(|g| g.is_finite()));
    }
}

/// Sustained overflow pressure: an adversarial schedule of giant losses
/// (huge scale) never corrupts parameters — every poisoned step is skipped
/// and the scaler backs off monotonically until recovery.
#[test]
fn sustained_overflow_never_corrupts_parameters() {
    let cfg = EngineConfig {
        initial_loss_scale: 3.4e38,
        ..EngineConfig::default()
    };
    let mut engine = StvEngine::new(tiny(), cfg);
    let initial = engine.model().params().to_vec();
    let mut pile = SyntheticPile::new(53, 3);
    let mut recovered = false;
    for _ in 0..140 {
        let batch = pile.next_batch(2, 12);
        let out = engine.train_step(&batch).unwrap();
        assert!(engine.model().params().iter().all(|p| p.is_finite()));
        match out {
            // While skipping, parameters must remain exactly the initial
            // ones (every speculative update fully rolled back).
            StepOutcome::Skipped { .. } => {
                if !recovered {
                    assert_eq!(engine.model().params(), &initial[..]);
                }
            }
            // A committed update (clipped or not) means the scaler backed
            // off far enough for training to resume.
            StepOutcome::Clipped { .. } | StepOutcome::Applied { .. } => {
                recovered = true;
            }
        }
    }
    assert!(recovered, "engine never recovered from overflow pressure");
    assert!(
        engine.stats().skipped > 50,
        "overflow pressure was not sustained"
    );
}
