//! Cross-crate integration tests asserting the paper's headline claims hold
//! end-to-end (simulator + policies + baselines together).

use baselines::common::single_chip_cluster;
use baselines::{ddp, fsdp_offload, zero_infinity, zero_offload};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};
use superoffload::ulysses::{max_sequence_length, SequenceSystem};
use superoffload::zero_dp;

fn wl(name: &str, batch: u32) -> Workload {
    Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
}

/// §1 / Fig. 10: "up to 2.5× throughput improvement compared to
/// state-of-the-art offloading-based systems" — SuperOffload beats
/// ZeRO-Offload by roughly 2× across the sweep.
#[test]
fn claim_2x_over_zero_offload() {
    let chip = presets::gh200_chip();
    let cluster = single_chip_cluster(&chip);
    let mut ratios = Vec::new();
    for name in ["5B", "8B", "10B", "13B"] {
        let w = wl(name, 8);
        let zo = zero_offload::simulate(&cluster, 1, &w);
        let so = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
        assert!(zo.feasible() && so.feasible(), "{name} must fit both");
        ratios.push(so.tflops / zo.tflops);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.6..2.6).contains(&avg),
        "mean speedup {avg:.2} outside the paper's ~2x band ({ratios:?})"
    );
}

/// §1: "outperforms GPU-only approaches across all tested model sizes".
#[test]
fn claim_beats_gpu_only_everywhere() {
    let chip = presets::gh200_chip();
    let cluster = single_chip_cluster(&chip);
    for name in ["1B", "2B", "3B", "4B"] {
        let w = wl(name, 8);
        let d = ddp::simulate(&cluster, 1, &w);
        let so = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
        assert!(d.feasible());
        assert!(
            so.tflops >= d.tflops * 0.995,
            "{name}: DDP {:.1} beat SuperOffload {:.1}",
            d.tflops,
            so.tflops
        );
    }
}

/// §1 / Fig. 13: "enabling training of up to 25B model on a single
/// Superchip, which is 7× larger than GPU-only solutions".
#[test]
fn claim_25b_on_one_superchip() {
    let chip = presets::gh200_chip();
    let so = simulate_single_chip(&chip, &wl("25B", 8), &SuperOffloadOptions::default());
    assert!(so.feasible(), "25B must fit with SuperOffload");

    // GPU-only tops out far below (paper: 3.5B; our ladder: ~4B).
    let cluster = single_chip_cluster(&chip);
    assert!(!ddp::simulate(&cluster, 1, &wl("5B", 8)).feasible());
    let ratio = ModelConfig::by_name("25B").unwrap().param_count() as f64
        / ModelConfig::by_name("4B").unwrap().param_count() as f64;
    assert!(ratio > 5.0, "scale-up factor {ratio:.1} should be large");
}

/// §1: "enables LLM training with 50B parameters using only four
/// Superchips, which is 2.5× larger than the largest model trainable with
/// ZeRO-Offload".
#[test]
fn claim_50b_on_four_superchips() {
    let cluster = presets::gh200_nvl2_cluster(2);
    let so =
        zero_dp::simulate_cluster(&cluster, 4, &wl("50B", 16), &SuperOffloadOptions::default());
    assert!(so.feasible(), "50B must fit on 4 Superchips");
    // ZeRO-Offload replicates FP16 params: 50B cannot fit.
    assert!(!zero_offload::simulate(&cluster, 4, &wl("50B", 16)).feasible());
}

/// §5.2: FSDP-Offload "consistently achieves less than 15 TFLOPS" and
/// ZeRO-Infinity "remains below 50 TFLOPS".
#[test]
fn claim_slow_baselines_stay_slow() {
    let cluster = single_chip_cluster(&presets::gh200_chip());
    for name in ["5B", "13B", "25B"] {
        let w = wl(name, 8);
        let fsdp = fsdp_offload::simulate(&cluster, 1, &w);
        assert!(fsdp.feasible());
        assert!(fsdp.tflops < 20.0, "{name}: fsdp {:.1}", fsdp.tflops);
        let zi = zero_infinity::simulate(&cluster, 1, &w);
        assert!(zi.feasible());
        assert!(zi.tflops < 60.0, "{name}: zero-infinity {:.1}", zi.tflops);
    }
}

/// §1 / Fig. 12: SuperOffload-Ulysses trains "sequences 8× longer than
/// Ulysses" and reaches 1M tokens for 13B on 8 Superchips.
#[test]
fn claim_million_token_sequences() {
    let cluster = presets::gh200_nvl2_cluster(4);
    let mut cfg = ModelConfig::by_name("13B").unwrap();
    cfg.max_seq = 1 << 21;
    let opts = SuperOffloadOptions::default();
    let ours = max_sequence_length(
        &cluster,
        8,
        &cfg,
        SequenceSystem::SuperOffloadUlysses,
        1 << 21,
        &opts,
    )
    .expect("superoffload-ulysses must train some sequence length");
    assert!(ours >= 1 << 20, "expected >= 1M tokens, got {ours}");

    let vanilla = max_sequence_length(&cluster, 8, &cfg, SequenceSystem::Ulysses, 1 << 21, &opts)
        .expect("vanilla ulysses must train short sequences");
    assert!(
        ours / vanilla >= 4,
        "sequence extension {}x below the paper's ~8x",
        ours / vanilla
    );
}

/// Fig. 4 vs Fig. 15: ZeRO-Offload idles the GPU heavily; SuperOffload
/// nearly eliminates the idle time in the identical setting.
#[test]
fn claim_idle_time_eliminated() {
    let chip = presets::gh200_chip();
    let cluster = single_chip_cluster(&chip);
    let w = wl("13B", 8);
    let zo = zero_offload::simulate(&cluster, 1, &w);
    let so = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
    let zo_idle = 1.0 - zo.gpu_util;
    let so_idle = 1.0 - so.gpu_util;
    assert!(
        zo_idle > 0.3,
        "ZeRO-Offload idle {zo_idle:.2} should be large"
    );
    assert!(
        so_idle < 0.2,
        "SuperOffload idle {so_idle:.2} should be small"
    );
    assert!(so_idle < zo_idle / 2.0);
}

/// Fig. 13: the capacity ordering across all seven systems holds on a
/// single chip: DDP ≈ Megatron ≈ ZeRO-2/3 < ZeRO-Offload < ZeRO-Infinity ≈
/// SuperOffload.
#[test]
fn claim_capacity_ordering_single_chip() {
    let chip = presets::gh200_chip();
    let cluster = single_chip_cluster(&chip);
    let max_for = |f: &dyn Fn(&Workload) -> bool| -> u64 {
        ModelConfig::appendix_a()
            .into_iter()
            .filter(|cfg| f(&Workload::new(cfg.clone(), 8, 2048)))
            .map(|cfg| cfg.param_count())
            .max()
            .unwrap_or(0)
    };
    let ddp_max = max_for(&|w| ddp::simulate(&cluster, 1, w).feasible());
    let zo_max = max_for(&|w| zero_offload::simulate(&cluster, 1, w).feasible());
    let so_max =
        max_for(&|w| simulate_single_chip(&chip, w, &SuperOffloadOptions::default()).feasible());
    assert!(ddp_max < zo_max, "ddp {ddp_max} !< zero-offload {zo_max}");
    assert!(
        zo_max < so_max,
        "zero-offload {zo_max} !< superoffload {so_max}"
    );
    // The paper's 25B single-chip headline.
    assert_eq!(so_max, ModelConfig::by_name("25B").unwrap().param_count());
}
