//! Cross-plane telemetry invariants: profiles are deterministic,
//! Perfetto-loadable, and the wall-clock span counters agree with the
//! simulated-plane statistics.

use baselines::common::single_chip_cluster;
use baselines::standard_registry;
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::workload::Workload;
use llm_model::{ModelConfig, SyntheticPile};
use superchip_sim::presets;
use superchip_sim::telemetry::{validate_json, MetricsRecorder, METRICS_SCHEMA};
use superoffload::engine::EngineConfig;
use superoffload::schedule::{simulate_single_chip_profiled, SuperOffloadOptions};
use superoffload::{StvEngine, Trainer};

fn smoke_workload() -> Workload {
    Workload::new(ModelConfig::by_name("3B").unwrap(), 8, 2048)
}

fn tiny_model(seed: u64) -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 43,
            hidden: 16,
            layers: 2,
            heads: 2,
            max_seq: 16,
        },
        seed,
    )
}

/// Two identical runs must produce byte-identical trace and snapshot
/// output: all telemetry derives from simulated time, never wall clock.
#[test]
fn profile_outputs_are_byte_deterministic() {
    let chip = presets::gh200_chip();
    let w = smoke_workload();
    let opts = SuperOffloadOptions::default();
    let a = simulate_single_chip_profiled(&chip, &w, &opts).expect("smoke fits");
    let b = simulate_single_chip_profiled(&chip, &w, &opts).expect("smoke fits");
    assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    assert_eq!(a.snapshot_json(), b.snapshot_json());
}

/// The Chrome trace must carry both slice (`ph:X`) and counter (`ph:C`)
/// events, including at least one memory-pool track and one link
/// bandwidth track, and must be valid JSON.
#[test]
fn chrome_trace_has_slices_and_counter_tracks() {
    let chip = presets::gh200_chip();
    let p =
        simulate_single_chip_profiled(&chip, &smoke_workload(), &SuperOffloadOptions::default())
            .expect("smoke fits");
    let trace = p.chrome_trace_json();
    validate_json(&trace).expect("trace is valid JSON");
    assert!(trace.contains("\"ph\":\"X\""), "missing slice events");
    assert!(trace.contains("\"ph\":\"C\""), "missing counter events");
    assert!(trace.contains("mem:hbm"), "missing HBM pool track");
    assert!(trace.contains("mem:ddr"), "missing DDR pool track");
    assert!(trace.contains("bw:"), "missing link bandwidth track");
}

/// The metrics snapshot is schema-versioned valid JSON and carries the
/// derived report gauges.
#[test]
fn snapshot_is_versioned_and_valid() {
    let chip = presets::gh200_chip();
    let p =
        simulate_single_chip_profiled(&chip, &smoke_workload(), &SuperOffloadOptions::default())
            .expect("smoke fits");
    let snap = p.snapshot_json();
    validate_json(&snap).expect("snapshot is valid JSON");
    assert!(snap.contains(METRICS_SCHEMA), "missing schema tag");
    assert!(snap.contains("report.tflops"), "missing throughput gauge");
    assert!(snap.contains("peak-bytes:hbm"), "missing pool peak gauge");
}

/// Every feasible registry system reports memory-pool high-water marks.
#[test]
fn registry_systems_report_pool_peaks() {
    let cluster = single_chip_cluster(&presets::gh200_chip());
    let w = smoke_workload();
    for sys in standard_registry().iter() {
        let Ok(p) = sys.simulate_profiled(&cluster, 1, &w) else {
            continue;
        };
        assert!(
            p.report.peak_bytes("hbm").unwrap_or(0) > 0,
            "{} reports no HBM peak",
            sys.name()
        );
    }
}

/// Wall-clock span counters on the real plane must agree with the
/// simulated statistics: one validate span per attempted step, one
/// rollback span per rolled-back step.
#[test]
fn stv_span_counters_agree_with_stats() {
    let mut trainer = Trainer::new(tiny_model(7)).build();
    let mut pile = SyntheticPile::new(43, 7);
    trainer
        .run(12, || pile.next_batch(2, 12))
        .expect("training");
    let stats = trainer.stats();
    let spans = trainer.spans();
    assert_eq!(spans.rollback.count, stats.rollbacks());
    assert_eq!(spans.validate.count, stats.steps + stats.skipped);
    let mut rec = MetricsRecorder::new();
    spans.record_into(&mut rec);
    assert_eq!(
        rec.counter("span.validate.count"),
        stats.steps + stats.skipped
    );
}

/// The standalone engine exposes the same invariant without the trainer,
/// including under clipping stress that forces rollbacks.
#[test]
fn engine_spans_match_engine_stats() {
    let stress = EngineConfig {
        max_grad_norm: 0.05,
        ..EngineConfig::default()
    };
    let mut eng = StvEngine::new(tiny_model(21), stress);
    let mut pile = SyntheticPile::new(37, 21);
    for _ in 0..8 {
        let batch = pile.next_batch(2, 12);
        eng.train_step(&batch).expect("stv step");
    }
    assert_eq!(eng.spans().rollback.count, eng.stats().rollbacks());
    assert_eq!(
        eng.spans().validate.count,
        eng.stats().steps + eng.stats().skipped
    );
}
