//! Property-based tests of baseline-system invariants.

use baselines::common::single_chip_cluster;
use baselines::zero::ZeroStage;
use baselines::{ddp, fsdp_offload, megatron, zero, zero_infinity, zero_offload};
use llm_model::{ModelConfig, Workload};
use proptest::prelude::*;
use superchip_sim::presets;
use superoffload::report::TrainReport;

const NAMES: [&str; 7] = ["1B", "3B", "5B", "8B", "13B", "20B", "25B"];

fn all_systems(
    cluster: &superchip_sim::topology::ClusterSpec,
    ranks: u32,
    w: &Workload,
) -> Vec<TrainReport> {
    vec![
        ddp::simulate(cluster, ranks, w),
        megatron::simulate(cluster, ranks, w),
        zero::simulate(cluster, ranks, w, ZeroStage::Two),
        zero::simulate(cluster, ranks, w, ZeroStage::Three),
        zero_offload::simulate(cluster, ranks, w),
        zero_infinity::simulate(cluster, ranks, w),
        fsdp_offload::simulate(cluster, ranks, w),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every baseline produces sane reports on a single chip: feasible ⇒
    /// positive finite TFLOPS and valid utilizations; infeasible ⇒ zeroed.
    #[test]
    fn reports_are_sane(model_idx in 0usize..NAMES.len(), batch_pow in 0u32..4) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let w = Workload::new(
            ModelConfig::by_name(NAMES[model_idx]).unwrap(),
            1 << batch_pow,
            2048,
        );
        for r in all_systems(&cluster, 1, &w) {
            if r.feasible() {
                prop_assert!(r.tflops.is_finite() && r.tflops > 0.0, "{}", r.system);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&r.gpu_util), "{}", r.system);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&r.cpu_util), "{}", r.system);
            } else {
                prop_assert_eq!(r.tflops, 0.0);
            }
        }
    }

    /// Feasibility is monotone in model size for every system: if a model
    /// fits, every smaller Appendix-A model fits too (same batch).
    #[test]
    fn feasibility_monotone_in_model_size(batch_pow in 0u32..3) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let batch = 1u32 << batch_pow;
        for sys_idx in 0..7usize {
            let mut prev_feasible = true;
            for name in NAMES {
                let w = Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048);
                let feasible = all_systems(&cluster, 1, &w)[sys_idx].feasible();
                if !prev_feasible {
                    prop_assert!(
                        !feasible,
                        "system {sys_idx}: {name} fits but a smaller model did not"
                    );
                }
                prev_feasible = feasible;
            }
        }
    }

    /// Simulations are deterministic.
    #[test]
    fn deterministic(model_idx in 0usize..4) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 8, 2048);
        let a = all_systems(&cluster, 1, &w);
        let b = all_systems(&cluster, 1, &w);
        prop_assert_eq!(a, b);
    }

    /// GPU-only systems never use the CPU; offloaders always do (when
    /// feasible).
    #[test]
    fn cpu_usage_matches_system_class(model_idx in 0usize..3) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 8, 2048);
        let d = ddp::simulate(&cluster, 1, &w);
        if d.feasible() {
            prop_assert!(d.cpu_util < 1e-9, "DDP used the CPU: {}", d.cpu_util);
        }
        let zo = zero_offload::simulate(&cluster, 1, &w);
        if zo.feasible() {
            prop_assert!(zo.cpu_util > 0.05, "ZeRO-Offload CPU idle: {}", zo.cpu_util);
        }
    }

    /// Megatron's best-MP search never does worse than mp=1 when both fit.
    #[test]
    fn megatron_search_dominates_mp1(model_idx in 0usize..3) {
        let cluster = presets::gh200_nvl2_cluster(2);
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 16, 2048);
        let best = megatron::simulate(&cluster, 4, &w);
        let mp1 = megatron::simulate_with_mp(&cluster, 4, 1, &w);
        if mp1.feasible() {
            prop_assert!(best.feasible());
            prop_assert!(best.tflops >= mp1.tflops * 0.999);
        }
    }
}
