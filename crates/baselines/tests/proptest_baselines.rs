//! Property-based tests of system invariants, driven by the registry: every
//! system registered in [`baselines::standard_registry`] is exercised on a
//! grid of (model, ranks, batch) points without any hand-maintained list.

use baselines::common::single_chip_cluster;
use baselines::{megatron, standard_registry};
use llm_model::{ModelConfig, Workload};
use proptest::prelude::*;
use superchip_sim::presets;
use superchip_sim::topology::ClusterSpec;
use superoffload::report::TrainReport;

const NAMES: [&str; 7] = ["1B", "3B", "5B", "8B", "13B", "20B", "25B"];

fn grid_cluster(ranks: u32) -> ClusterSpec {
    if ranks == 1 {
        single_chip_cluster(&presets::gh200_chip())
    } else {
        presets::gh200_nvl2_cluster(2)
    }
}

fn all_reports(cluster: &ClusterSpec, ranks: u32, w: &Workload) -> Vec<TrainReport> {
    standard_registry()
        .iter()
        .map(|s| s.simulate(cluster, ranks, w))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Registry-wide grid property: every system on every (model, ranks,
    /// batch) point either returns a feasible report with sane numbers or a
    /// structured `Infeasible` reason with a non-empty message — and the
    /// `simulate` wrapper collapses the latter to a zeroed infeasible
    /// report.
    #[test]
    fn grid_reports_sane_or_structured(
        model_idx in 0usize..NAMES.len(),
        ranks_pow in 0u32..3,
        batch_pow in 0u32..4,
    ) {
        let ranks = 1u32 << ranks_pow;
        let cluster = grid_cluster(ranks);
        let w = Workload::new(
            ModelConfig::by_name(NAMES[model_idx]).unwrap(),
            1 << batch_pow,
            2048,
        );
        for sys in standard_registry().iter() {
            match sys.simulate_traced(&cluster, ranks, &w) {
                Ok((r, _)) => {
                    prop_assert!(r.feasible(), "{}: Ok but infeasible", sys.name());
                    prop_assert!(
                        r.tflops.is_finite() && r.tflops > 0.0,
                        "{}: tflops {}", sys.name(), r.tflops
                    );
                    prop_assert!(
                        (0.0..=1.0 + 1e-9).contains(&r.gpu_util),
                        "{}: gpu_util {}", sys.name(), r.gpu_util
                    );
                    prop_assert!(
                        (0.0..=1.0 + 1e-9).contains(&r.cpu_util),
                        "{}: cpu_util {}", sys.name(), r.cpu_util
                    );
                }
                Err(e) => {
                    prop_assert!(
                        !format!("{e}").is_empty(),
                        "{}: empty infeasibility reason", sys.name()
                    );
                    let collapsed = sys.simulate(&cluster, ranks, &w);
                    prop_assert!(!collapsed.feasible(), "{}", sys.name());
                    prop_assert_eq!(collapsed.tflops, 0.0);
                }
            }
        }
    }

    /// Feasibility is monotone in model size for every registered system:
    /// if a model fits, every smaller Appendix-A model fits too (same
    /// batch).
    #[test]
    fn feasibility_monotone_in_model_size(batch_pow in 0u32..3) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let batch = 1u32 << batch_pow;
        let reg = standard_registry();
        for sys in reg.iter() {
            let mut prev_feasible = true;
            for name in NAMES {
                let w = Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048);
                let feasible = sys.simulate(&cluster, 1, &w).feasible();
                if !prev_feasible {
                    prop_assert!(
                        !feasible,
                        "{}: {name} fits but a smaller model did not", sys.name()
                    );
                }
                prev_feasible = feasible;
            }
        }
    }

    /// Simulations are deterministic: repeated runs of the whole registry
    /// are bit-identical, on the error path as well as the report path.
    #[test]
    fn deterministic(model_idx in 0usize..4, ranks_pow in 0u32..2) {
        let ranks = 1u32 << (2 * ranks_pow); // 1 or 4
        let cluster = grid_cluster(ranks);
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 8, 2048);
        let a = all_reports(&cluster, ranks, &w);
        let b = all_reports(&cluster, ranks, &w);
        prop_assert_eq!(a, b);
        for sys in standard_registry().iter() {
            let ea = sys.simulate_traced(&cluster, ranks, &w).err();
            let eb = sys.simulate_traced(&cluster, ranks, &w).err();
            prop_assert_eq!(ea, eb, "{}", sys.name());
        }
    }

    /// GPU-only systems never use the CPU; offloaders always do (when
    /// feasible).
    #[test]
    fn cpu_usage_matches_system_class(model_idx in 0usize..3) {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 8, 2048);
        let reg = standard_registry();
        let d = reg.expect("pytorch-ddp").simulate(&cluster, 1, &w);
        if d.feasible() {
            prop_assert!(d.cpu_util < 1e-9, "DDP used the CPU: {}", d.cpu_util);
        }
        let zo = reg.expect("zero-offload").simulate(&cluster, 1, &w);
        if zo.feasible() {
            prop_assert!(zo.cpu_util > 0.05, "ZeRO-Offload CPU idle: {}", zo.cpu_util);
        }
    }

    /// Megatron's best-MP search never does worse than mp=1 when both fit.
    #[test]
    fn megatron_search_dominates_mp1(model_idx in 0usize..3) {
        let cluster = presets::gh200_nvl2_cluster(2);
        let w = Workload::new(ModelConfig::by_name(NAMES[model_idx]).unwrap(), 16, 2048);
        let best = megatron::simulate(&cluster, 4, &w);
        let mp1 = megatron::simulate_with_mp(&cluster, 4, 1, &w);
        if mp1.feasible() {
            prop_assert!(best.feasible());
            prop_assert!(best.tflops >= mp1.tflops * 0.999);
        }
    }
}
