//! Megatron-LM tensor model parallelism.
//!
//! Linear layers are column/row-split across `mp` GPUs; each transformer
//! block incurs two all-reduces in forward and two in backward, mostly on
//! the critical path. Model states shrink as 16Ψ/mp but activations are
//! only partially sharded. As in the paper (§5.2), the MP degree is chosen
//! per workload for best performance.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::{ExecutionPlan, Workload};
use superchip_sim::prelude::*;

use superoffload::costs::{gpu_optimizer_time, ComputeTimes, OP_OVERHEAD_TUNED};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// Fraction of activations that remain unsharded under tensor parallelism
/// (LayerNorms, dropouts, residuals).
const UNSHARDED_ACT_FRACTION: f64 = 0.15;

/// Megatron tensor parallelism (best MP degree per workload) as an
/// [`OffloadSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Megatron;

impl OffloadSystem for Megatron {
    fn name(&self) -> &str {
        "megatron"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates Megatron with an explicit MP degree (`mp` must divide `ranks`;
/// the remaining `ranks / mp` ways are data parallelism).
pub fn simulate_with_mp(
    cluster: &ClusterSpec,
    ranks: u32,
    mp: u32,
    workload: &Workload,
) -> TrainReport {
    collapse(
        simulate_with_mp_traced(cluster, ranks, mp, workload),
        "megatron",
    )
}

/// Like [`simulate_with_mp`], additionally returning the execution trace,
/// or the structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_with_mp_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    mp: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    assert!(mp >= 1 && ranks.is_multiple_of(mp), "mp must divide ranks");
    let system = "megatron";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let dp = ranks / mp;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let mp_coll = lease.collective(mp)?;
    let dp_coll = lease.collective_spanning(ranks, dp)?;

    let rank_wl = split_batch(workload, dp)?;
    let rank_batch = rank_wl.global_batch;

    let cap = lease.capacity();
    let gpu_resident = states.total() / mp as u64;
    cap.fit_gpu(gpu_resident)?;
    // Activation budget: sharded by mp except the unsharded fraction.
    let act_scale = (1.0 - UNSHARDED_ACT_FRACTION) / mp as f64 + UNSHARDED_ACT_FRACTION;
    let budget = ((cap.gpu - gpu_resident) as f64 / act_scale) as u64;
    let plan = ExecutionPlan::best(&rank_wl, budget).ok_or(Infeasible::NoExecutionPlan {
        activation_budget: budget,
    })?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    // Per-GPU compute: 1/mp of the rank's FLOPs.
    let per_gpu = TrainingFlops {
        forward: flops.forward / mp as f64,
        backward: flops.backward / mp as f64,
        recompute: flops.recompute / mp as f64,
    };
    let compute = ComputeTimes::new(&chip.gpu, &per_gpu, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_TUNED);

    // TP all-reduces: 4 per layer per micro-step, each over the micro-batch
    // activations (tokens · hidden · 2 bytes).
    let micro_tokens = (rank_batch / plan.micro_steps()).max(1) as u64 * workload.seq;
    let ar_bytes = 2 * micro_tokens * workload.config.hidden as u64;
    let tp_comm_per_micro = if mp > 1 {
        mp_coll.all_reduce(ar_bytes) * (4 * workload.config.layers) as f64
    } else {
        SimTime::ZERO
    };

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, 0);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut last: Option<TaskId> = None;
        for _m in 0..plan.micro_steps() {
            let deps: Vec<TaskId> = iters.start_deps().into_iter().chain(last).collect();
            // Alternate compute and blocking TP all-reduces in four
            // segments per pass (Megatron's collectives sit on the
            // critical path).
            let segments = 4u32;
            let mut prev: Option<TaskId> = None;
            for s in 0..segments {
                let mut spec = TaskSpec::compute(
                    ctx.gpu,
                    (compute.fwd_per_micro + compute.bwd_per_micro) / segments as f64 + overhead,
                )
                .with_label(format!("compute[{s}]"))
                .after_all(deps.iter().copied());
                if let Some(p) = prev {
                    spec = spec.after(p);
                }
                let c = ctx.sim.add_task(spec)?;
                if mp > 1 {
                    let ar = ctx.sim.add_task(
                        TaskSpec::collective(
                            ctx.net,
                            tp_comm_per_micro / segments as f64 + overhead,
                        )
                        .with_label(format!("tp-allreduce[{s}]"))
                        .after(c),
                    )?;
                    prev = Some(ar);
                } else {
                    prev = Some(c);
                }
            }
            last = prev;
        }
        // DP gradient all-reduce over the shard (2Ψ/mp bytes).
        let mut step_dep = last.expect("at least one micro-step");
        if dp > 1 {
            step_dep = ctx.sim.add_task(
                TaskSpec::collective(
                    ctx.net,
                    dp_coll.all_reduce(states.fp16_grads / mp as u64) + overhead,
                )
                .with_label("dp-allreduce")
                .after(step_dep),
            )?;
        }
        let step = ctx.sim.add_task(
            TaskSpec::compute(
                ctx.gpu,
                gpu_optimizer_time(&chip.gpu, params / mp as u64) + overhead,
            )
            .with_label("step-gpu")
            .tagged(TaskTag::OptimizerStep)
            .after(step_dep),
        )?;
        iters.close(&mut ctx, [step])?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, per_gpu.effective(), chip, plan)
}

/// Simulates Megatron with the best MP degree among divisors of `ranks`
/// (the paper's methodology: "we use a MP degree that gives the best
/// performance").
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    collapse(simulate_traced(cluster, ranks, workload), "megatron")
}

/// Like [`simulate`], additionally returning the execution trace of the
/// best MP degree, or — when no degree is feasible — the structured
/// [`Infeasible`] reason from the first degree tried (mp = 1).
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let mut best: Option<(TrainReport, Trace)> = None;
    let mut first_err: Option<Infeasible> = None;
    for mp in (1..=ranks).filter(|m| ranks.is_multiple_of(*m)) {
        match simulate_with_mp_traced(cluster, ranks, mp, workload) {
            Ok((r, t)) => {
                if best.as_ref().is_none_or(|(b, _)| r.tflops > b.tflops) {
                    best = Some((r, t));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    best.ok_or_else(|| first_err.expect("at least mp = 1 is tried"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn single_gpu_equals_mp1() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let r = simulate(&c, 1, &wl("3B", 8));
        assert!(r.feasible());
    }

    #[test]
    fn mp_extends_model_scale() {
        let c = presets::gh200_nvl2_cluster(2);
        // 15B needs aggregated memory: infeasible on 1 GPU, feasible at mp 4.
        assert!(!simulate_with_mp(&c, 4, 1, &wl("15B", 16)).feasible());
        assert!(simulate_with_mp(&c, 4, 4, &wl("15B", 16)).feasible());
    }

    #[test]
    fn infeasible_mp1_reports_gpu_capacity() {
        let c = presets::gh200_nvl2_cluster(2);
        let err = simulate_with_mp_traced(&c, 4, 1, &wl("15B", 16)).unwrap_err();
        assert!(
            matches!(err, Infeasible::GpuCapacity { .. }),
            "expected GpuCapacity, got {err}"
        );
    }

    #[test]
    fn best_mp_beats_or_ties_forced_mp() {
        let c = presets::gh200_nvl2_cluster(2);
        let best = simulate(&c, 4, &wl("10B", 16));
        let forced = simulate_with_mp(&c, 4, 4, &wl("10B", 16));
        assert!(best.tflops >= forced.tflops * 0.999);
    }

    #[test]
    fn tp_allreduces_cost_throughput() {
        // Same model on 1 GPU vs mp=2 within a node: per-GPU throughput
        // should drop under TP.
        let single = single_chip_cluster(&presets::gh200_chip());
        let multi = presets::gh200_nvl2_cluster(1);
        let one = simulate(&single, 1, &wl("3B", 8));
        let two = simulate_with_mp(&multi, 2, 2, &wl("3B", 8));
        assert!(two.feasible());
        assert!(two.tflops < one.tflops);
    }

    #[test]
    #[should_panic(expected = "mp must divide")]
    fn bad_mp_rejected() {
        let c = presets::gh200_nvl2_cluster(2);
        let _ = simulate_with_mp(&c, 4, 3, &wl("5B", 8));
    }
}
