//! PyTorch DistributedDataParallel: replicated model states, GPU-only.
//!
//! Every rank holds the full 16Ψ of model states plus an all-reduce bucket
//! buffer; gradients all-reduce across ranks overlapping backward; the
//! optimizer runs on the GPU. Memory-bound by replication: the largest
//! trainable model is whatever fits 16Ψ + activations on one GPU (Fig. 13).

use llm_model::flops::TrainingFlops;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use llm_model::memory::ModelStateMemory;
use superoffload::bucket::BucketPlan;
use superoffload::costs::{gpu_optimizer_time, ComputeTimes, OP_OVERHEAD_TUNED};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// DDP's default all-reduce bucket: 25 MB.
pub const DDP_BUCKET_BYTES: u64 = 25 * 1000 * 1000;

/// PyTorch DistributedDataParallel as an [`OffloadSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Ddp;

impl OffloadSystem for Ddp {
    fn name(&self) -> &str {
        "pytorch-ddp"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates PyTorch DDP on `ranks` GPUs of `cluster`.
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    collapse(simulate_traced(cluster, ranks, workload), "pytorch-ddp")
}

/// Like [`simulate`], additionally returning the execution trace, or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "pytorch-ddp";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    // PyTorch AMP keeps FP32 parameters and FP32 gradients (autocast only
    // casts compute), so replicated residency is 4Ψ + 4Ψ + 8Ψ Adam + 2Ψ
    // FP16 autocast copies + 2Ψ flat all-reduce buffer = 20Ψ — which is
    // what caps DDP near 3.5–4B on 96 GB (Fig. 13).
    let cap = lease.capacity();
    let params_bytes = states.fp32_params; // 4Ψ
    let gpu_resident = params_bytes + params_bytes + states.optimizer_states() - states.fp32_params
        + states.fp16_params
        + states.fp16_grads
        + 2 * DDP_BUCKET_BYTES;
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_TUNED);
    let buckets = BucketPlan::new(params, DDP_BUCKET_BYTES, 0);

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, 0);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut iter_end: Vec<TaskId> = Vec::new();
        let mut last: Option<TaskId> = None;
        for m in 0..plan.micro_steps() {
            let mut deps: Vec<TaskId> = iters.start_deps();
            if let Some(t) = last {
                deps.push(t);
            }
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, deps)?;
            // Backward chunked by all-reduce bucket; the all-reduce of
            // bucket i overlaps the backward of bucket i+1 (DDP's
            // gradient hook design) — only on the last micro-step.
            let prev_chunk = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                fwd,
                None,
                |ctx, bi, elems, chunk| {
                    if ranks > 1 && m + 1 == plan.micro_steps() {
                        let ar = ctx.all_reduce(
                            &coll,
                            2 * elems,
                            overhead,
                            format!("allreduce[{bi}]"),
                            chunk,
                        )?;
                        iter_end.push(ar);
                    }
                    Ok(())
                },
            )?;
            last = Some(prev_chunk);
        }
        // GPU optimizer over the full replicated state.
        let step = ctx.sim.add_task(
            TaskSpec::compute(ctx.gpu, gpu_optimizer_time(&chip.gpu, params) + overhead)
                .with_label("step-gpu")
                .tagged(TaskTag::OptimizerStep)
                .after_all(iter_end.iter().copied().chain(last)),
        )?;
        iters.close(&mut ctx, [step])?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn small_model_runs_fast() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let r = simulate(&c, 1, &wl("3B", 8));
        assert!(r.feasible());
        assert!(r.tflops > 100.0, "tflops {}", r.tflops);
    }

    #[test]
    fn replication_caps_model_size_around_4b() {
        // Fig. 13: DDP tops out near 3.5B on a 96 GB GPU.
        let c = single_chip_cluster(&presets::gh200_chip());
        assert!(simulate(&c, 1, &wl("3B", 8)).feasible());
        assert!(!simulate(&c, 1, &wl("5B", 8)).feasible());
        assert!(!simulate(&c, 1, &wl("10B", 8)).feasible());
    }

    #[test]
    fn more_ranks_do_not_increase_model_scale() {
        let c = presets::gh200_nvl2_cluster(2);
        assert!(!simulate(&c, 4, &wl("5B", 8)).feasible());
    }

    #[test]
    fn allreduce_costs_throughput_on_slow_fabric() {
        let single = single_chip_cluster(&presets::gh200_chip());
        let multi = presets::gh200_nvl2_cluster(2);
        let one = simulate(&single, 1, &wl("3B", 8));
        let four = simulate(&multi, 4, &wl("3B", 32));
        assert!(four.feasible());
        assert!(
            four.tflops < one.tflops,
            "cross-node all-reduce should cost throughput: {} !< {}",
            four.tflops,
            one.tflops
        );
    }
}
