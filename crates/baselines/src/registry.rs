//! The standard system registry: every simulated training system from the
//! paper's evaluation, registered by name.
//!
//! This is the single source of truth the experiment drivers
//! (`bench::experiments`), the `repro` binary, and the registry-wide
//! property tests iterate — adding a system here makes it appear in every
//! figure sweep and test automatically.

use superoffload::schedule::SuperOffloadOptions;
use superoffload::system::{SuperOffload, SystemRegistry};

use crate::ddp::Ddp;
use crate::deep_optimizer_states::DeepOptimizerStates;
use crate::fsdp_offload::FsdpOffload;
use crate::megatron::Megatron;
use crate::pipeline::Pipeline;
use crate::zero::{Zero, ZeroStage};
use crate::zero_infinity::ZeroInfinity;
use crate::zero_offload::ZeroOffload;

/// Builds the registry of all systems from the paper, in the order the
/// figures list them:
///
/// `pytorch-ddp`, `megatron`, `pipeline`, `zero-2`, `zero-3`,
/// `zero-offload`, `zero-infinity`, `fsdp-offload`,
/// `deep-optimizer-states`, `superoffload`.
pub fn standard_registry() -> SystemRegistry {
    let mut reg = SystemRegistry::new();
    reg.register(Ddp);
    reg.register(Megatron);
    reg.register(Pipeline);
    reg.register(Zero {
        stage: ZeroStage::Two,
    });
    reg.register(Zero {
        stage: ZeroStage::Three,
    });
    reg.register(ZeroOffload);
    reg.register(ZeroInfinity::default());
    reg.register(FsdpOffload);
    reg.register(DeepOptimizerStates);
    reg.register(SuperOffload {
        opts: SuperOffloadOptions::default(),
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_systems_are_registered() {
        let reg = standard_registry();
        let names = reg.names();
        assert_eq!(
            names,
            vec![
                "pytorch-ddp",
                "megatron",
                "pipeline",
                "zero-2",
                "zero-3",
                "zero-offload",
                "zero-infinity",
                "fsdp-offload",
                "deep-optimizer-states",
                "superoffload",
            ]
        );
        assert_eq!(reg.len(), 10);
    }

    #[test]
    fn lookup_by_name_matches_iteration_order() {
        let reg = standard_registry();
        for name in reg.names() {
            assert_eq!(reg.expect(name).name(), name);
        }
    }
}
