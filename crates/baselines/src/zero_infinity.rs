//! ZeRO-Infinity with CPU offloading (NVMe disabled, as in §5.1).
//!
//! Weight-flow from CPU memory: parameters stream in layer by layer for
//! every forward and backward pass, gradients stream out, the optimizer
//! runs on the CPU. Its transfer engine slices tensors into small fixed
//! partitions that were tuned for PCIe — on NVLink-C2C those sit far below
//! the Fig. 7 saturation knee, which is why the paper measures it under
//! 50 TFLOPS ("bandwidth can drop to as low as 50 GB/s with small tensor
//! sizes").

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use superoffload::bucket::BucketPlan;
use superoffload::casting::CastPlacement;
use superoffload::costs::{pipeline_step_time, ComputeTimes, OptimizerImpl, OP_OVERHEAD_FRAMEWORK};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// ZeRO-Infinity's transfer partition: small slices tuned for PCIe/NVMe.
/// At 1 MB the C2C link delivers ~50 GB/s — the collapse the paper measures.
const INFINITY_SLICE_BYTES: u64 = 1000 * 1000;

/// Gradient bucket granularity for the optimizer pipeline.
const INFINITY_BUCKET_BYTES: u64 = 32 * 1000 * 1000;

/// The NVMe tier configuration for ZeRO-Infinity's deepest offload level.
///
/// The paper's evaluation disables NVMe "for fair comparison"; this
/// reproduction implements it as the documented extension: optimizer states
/// live on NVMe and are swapped through CPU memory around each bucket's
/// step, trading throughput for near-unbounded capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmeTier {
    /// Usable NVMe capacity in bytes.
    pub capacity: u64,
    /// The NVMe link (bandwidth + access latency).
    pub link: superchip_sim::Link,
}

impl Default for NvmeTier {
    fn default() -> Self {
        NvmeTier {
            capacity: 4 * 1000 * superchip_sim::GB, // 4 TB array
            link: superchip_sim::presets::nvme(),
        }
    }
}

/// ZeRO-Infinity as an [`OffloadSystem`] (CPU offload only by default; set
/// `nvme` to add the NVMe tier).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroInfinity {
    /// Optional NVMe tier for optimizer states.
    pub nvme: Option<NvmeTier>,
}

impl OffloadSystem for ZeroInfinity {
    fn name(&self) -> &str {
        "zero-infinity"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_with_nvme_traced(cluster, ranks, workload, self.nvme)
    }
}

/// Simulates ZeRO-Infinity (CPU offload only) on `ranks` GPUs.
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    simulate_with_nvme(cluster, ranks, workload, None)
}

/// Simulates ZeRO-Infinity with an optional NVMe tier for optimizer states.
pub fn simulate_with_nvme(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    nvme: Option<NvmeTier>,
) -> TrainReport {
    collapse(
        simulate_with_nvme_traced(cluster, ranks, workload, nvme),
        "zero-infinity",
    )
}

/// Like [`simulate_with_nvme`], additionally returning the execution trace,
/// or the structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_with_nvme_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    nvme: Option<NvmeTier>,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "zero-infinity";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let n = ranks as u64;

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    // GPU: only a streaming window + staging. CPU: all model states.
    let cap = lease.capacity();
    let window = (states.fp16_params / workload.config.layers.max(1) as u64) * 4;
    let gpu_resident = window + 4 * INFINITY_BUCKET_BYTES;
    cap.fit_gpu(gpu_resident)?;
    // With an NVMe tier the optimizer states (12Ψ) move off the CPU; only
    // the FP16 parameter mirror and swap buffers stay in DDR.
    let cpu_resident = match nvme {
        None => (states.optimizer_states() + states.fp16_params) / n + 4 * INFINITY_BUCKET_BYTES,
        Some(_) => states.fp16_params / n + 8 * INFINITY_BUCKET_BYTES,
    };
    cap.fit_cpu(cpu_resident)?;
    if let Some(tier) = nvme {
        let needed = states.optimizer_states() / n;
        if needed > tier.capacity {
            return Err(Infeasible::NvmeCapacity {
                needed,
                cap: tier.capacity,
            });
        }
    }
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_FRAMEWORK);

    // Weight streaming cost per pass: the full FP16 parameters move in
    // PCIe-sized slices, each paying the per-message latency — this is the
    // small-tensor bandwidth collapse.
    let slices = states.fp16_params.div_ceil(INFINITY_SLICE_BYTES);
    // Each slice pays the link latency plus the swap-manager's submission
    // and completion overhead (two framework ops per slice).
    let stream_per_pass = (chip.c2c.transfer_time(INFINITY_SLICE_BYTES)
        + SimTime::from_secs(2.0 * OP_OVERHEAD_FRAMEWORK))
        * slices as f64;

    let buckets = BucketPlan::new(params, INFINITY_BUCKET_BYTES, 0);
    let cast = CastPlacement::CpuCastMoveFp16Pageable;
    let shard = |elems: u64| (elems / n).max(1);

    let mut ctx = lease.ctx();
    let nvme_res = ctx.add_resource("nvme");
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);

    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut last: Option<TaskId> = None;
        let mut arrivals: Vec<(u32, TaskId)> = Vec::new();
        for m in 0..plan.micro_steps() {
            let deps: Vec<TaskId> = iters.start_deps().into_iter().chain(last).collect();
            // Stream weights for forward; partially overlapped (the
            // prefetcher hides at most half the stream behind compute).
            let fetch_f = ctx.sim.add_task(
                TaskSpec::transfer(ctx.h2d, stream_per_pass)
                    .with_label("weight-stream-fwd")
                    .tagged(TaskTag::Eviction)
                    .after_all(deps.iter().copied()),
            )?;
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, [fetch_f])?;
            let fetch_b = ctx.sim.add_task(
                TaskSpec::transfer(ctx.h2d, stream_per_pass)
                    .with_label("weight-stream-bwd")
                    .tagged(TaskTag::Eviction)
                    .after(fwd),
            )?;
            let prev_chunk = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                fetch_b,
                None,
                |ctx, bi, elems, chunk| {
                    if m + 1 == plan.micro_steps() {
                        let mut dep = chunk;
                        if ranks > 1 {
                            dep = ctx.reduce_scatter(
                                &coll,
                                2 * elems,
                                overhead,
                                format!("reduce-scatter[{bi}]"),
                                chunk,
                            )?;
                        }
                        let xfer = ctx.sim.add_task(
                            TaskSpec::transfer(
                                ctx.d2h,
                                cast.one_way_time(chip, shard(elems)) + overhead,
                            )
                            .with_label(format!("grad-out[{bi}]"))
                            .after(dep),
                        )?;
                        arrivals.push((bi, xfer));
                    }
                    Ok(())
                },
            )?;
            last = Some(prev_chunk);
        }

        // STE sync, CPU optimizer, parameters stay on the CPU (they
        // stream in next iteration) — only FP16 shard updates are
        // written back to CPU-side parameter memory.
        let all: Vec<TaskId> = arrivals.iter().map(|&(_, t)| t).collect();
        let norm_sync = ctx.sim.add_task(
            TaskSpec::compute(
                ctx.cpu,
                SimTime::from_secs((4 * shard(params)) as f64 / chip.cpu.mem_bandwidth) + overhead,
            )
            .with_label("global-norm-sync")
            .after_all(all),
        )?;
        let mut iter_end: Vec<TaskId> = Vec::new();
        let mut prev_nvme: Option<TaskId> = None;
        for &(bi, _) in &arrivals {
            let elems = shard(buckets.bucket_elems(bi));
            // NVMe tier: swap this bucket's optimizer states (12 bytes
            // per element) in from NVMe before the step, back after.
            let step_dep = if let Some(tier) = nvme {
                let mut spec =
                    TaskSpec::transfer(nvme_res, tier.link.transfer_time(12 * elems) + overhead)
                        .with_label(format!("nvme-in[{bi}]"))
                        .tagged(TaskTag::Eviction)
                        .after(norm_sync);
                if let Some(p) = prev_nvme {
                    spec = spec.after(p);
                }
                ctx.sim.add_task(spec)?
            } else {
                norm_sync
            };
            let step = ctx.sim.add_task(
                TaskSpec::compute(
                    ctx.cpu,
                    pipeline_step_time(OptimizerImpl::CpuAdam, &chip.cpu, elems) + overhead,
                )
                .with_label(format!("step-cpu[{bi}]"))
                .tagged(TaskTag::OptimizerStep)
                .after(step_dep),
            )?;
            if let Some(tier) = nvme {
                let out = ctx.sim.add_task(
                    TaskSpec::transfer(nvme_res, tier.link.transfer_time(12 * elems) + overhead)
                        .with_label(format!("nvme-out[{bi}]"))
                        .tagged(TaskTag::Eviction)
                        .after(step),
                )?;
                prev_nvme = Some(out);
                iter_end.push(out);
            } else {
                iter_end.push(step);
            }
        }
        iters.close(&mut ctx, iter_end)?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn scales_to_large_models_on_one_chip() {
        // Fig. 13: ZeRO-Infinity trains models comparable to SuperOffload.
        let c = single_chip_cluster(&presets::gh200_chip());
        assert!(simulate(&c, 1, &wl("25B", 8)).feasible());
    }

    #[test]
    fn throughput_stays_low() {
        // Fig. 10: ZeRO-Infinity remains below ~50 TFLOPS on a Superchip.
        let c = single_chip_cluster(&presets::gh200_chip());
        for name in ["5B", "13B", "25B"] {
            let r = simulate(&c, 1, &wl(name, 8));
            assert!(r.feasible(), "{name} should fit");
            assert!(
                r.tflops < 80.0,
                "{name}: ZeRO-Infinity should be slow, got {}",
                r.tflops
            );
        }
    }

    #[test]
    fn slower_than_zero_offload_when_both_fit() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let w = wl("5B", 8);
        let zi = simulate(&c, 1, &w);
        let zo = crate::zero_offload::simulate(&c, 1, &w);
        assert!(zi.tflops < zo.tflops);
    }
}

#[cfg(test)]
mod nvme_tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn nvme_extends_capacity_beyond_cpu_memory() {
        let c = single_chip_cluster(&presets::gh200_chip());
        // 80B: optimizer states (960 GB) exceed the 480 GB Grace DDR, but
        // fit a 4 TB NVMe array.
        let w = wl("80B", 8);
        assert!(
            !simulate(&c, 1, &w).feasible(),
            "80B should not fit CPU-only"
        );
        let r = simulate_with_nvme(&c, 1, &w, Some(NvmeTier::default()));
        assert!(r.feasible(), "80B should fit with the NVMe tier");
    }

    #[test]
    fn nvme_costs_throughput() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let w = wl("5B", 8);
        let cpu_only = simulate(&c, 1, &w);
        let with_nvme = simulate_with_nvme(&c, 1, &w, Some(NvmeTier::default()));
        assert!(with_nvme.feasible());
        assert!(
            with_nvme.tflops < cpu_only.tflops / 2.0,
            "NVMe swap should dominate: {} vs {}",
            with_nvme.tflops,
            cpu_only.tflops
        );
    }

    #[test]
    fn nvme_capacity_is_enforced() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let tiny = NvmeTier {
            capacity: superchip_sim::GB,
            ..NvmeTier::default()
        };
        assert!(!simulate_with_nvme(&c, 1, &wl("5B", 8), Some(tiny)).feasible());
    }
}
