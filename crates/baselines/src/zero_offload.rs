//! ZeRO-Offload: ZeRO-2 plus a synchronous CPU optimizer.
//!
//! The PCIe-era design the paper revisits (§3): FP16 weights stationary on
//! the GPU, gradients bucketized to the CPU during backward, optimizer
//! states and the Adam step on the CPU, updated FP16 parameters returned
//! before the next forward. Three structural costs show up on a Superchip:
//!
//! 1. **STE**: the CPU waits for *all* gradients (global norm / NaN check)
//!    before any optimizer work starts (Fig. 3).
//! 2. The next forward waits for *all* updated parameters to return.
//! 3. Casting on the CPU with FP16 moves uses the pageable staging path.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use superoffload::bucket::BucketPlan;
use superoffload::casting::CastPlacement;
use superoffload::costs::{pipeline_step_time, ComputeTimes, OptimizerImpl, OP_OVERHEAD_FRAMEWORK};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{
    collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem, STANDARD_RESOURCES,
};

use crate::common::ITERATIONS;

/// ZeRO-Offload's gradient bucket (DeepSpeed default ~2 × 10^8 elements is
/// far larger than C2C-optimal; the effective transfer unit after slicing is
/// modest — we use 32 MB).
const OFFLOAD_BUCKET_BYTES: u64 = 32 * 1000 * 1000;

/// Resource names of the ZeRO-Offload schedule, in registration order.
pub const RESOURCES: [&str; 5] = STANDARD_RESOURCES;

/// ZeRO-Offload as an [`OffloadSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroOffload;

impl OffloadSystem for ZeroOffload {
    fn name(&self) -> &str {
        "zero-offload"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates ZeRO-Offload on `ranks` GPUs (ZeRO-2 sharding across ranks,
/// each rank offloading its shard's optimizer to its local CPU).
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    collapse(simulate_traced(cluster, ranks, workload), "zero-offload")
}

/// Like [`simulate`], additionally returning the execution trace for
/// timeline inspection (the paper's Fig. 3 schedule diagram), or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "zero-offload";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let n = ranks as u64;

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    let cap = lease.capacity();
    // Full FP16 params + full FP16 grads + the contiguous reduce buffer
    // (partitioned across ranks) — the 6Ψ replication that caps
    // ZeRO-Offload near 13-15B on 96 GB regardless of rank count.
    let gpu_resident =
        states.fp16_params + states.fp16_grads + states.fp16_grads / n + 2 * OFFLOAD_BUCKET_BYTES;
    cap.fit_gpu(gpu_resident)?;
    let cpu_resident = states.optimizer_states() / n + 2 * OFFLOAD_BUCKET_BYTES;
    cap.fit_cpu(cpu_resident)?;
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_FRAMEWORK);
    let buckets = BucketPlan::new(params, OFFLOAD_BUCKET_BYTES, 0);
    // The conventional design the paper measures (§4.5): FP16 moves that
    // stage through an unpinned temporary buffer before the CPU-side cast.
    let cast = CastPlacement::CpuCastMoveFp16Pageable;
    let shard = |elems: u64| (elems / n).max(1);

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut last: Option<TaskId> = None;
        let mut arrivals: Vec<(u32, TaskId)> = Vec::new();
        for m in 0..plan.micro_steps() {
            let deps: Vec<TaskId> = iters.start_deps().into_iter().chain(last).collect();
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, deps)?;
            let prev_chunk = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                fwd,
                None,
                |ctx, bi, elems, chunk| {
                    if m + 1 == plan.micro_steps() {
                        let mut dep = chunk;
                        if ranks > 1 {
                            dep = ctx.reduce_scatter(
                                &coll,
                                2 * elems,
                                overhead,
                                format!("reduce-scatter[{bi}]"),
                                chunk,
                            )?;
                        }
                        let xfer = ctx.sim.add_task(
                            TaskSpec::transfer(
                                ctx.d2h,
                                cast.one_way_time(chip, shard(elems)) + overhead,
                            )
                            .with_label(format!("grad-out[{bi}]"))
                            .after(dep),
                        )?;
                        arrivals.push((bi, xfer));
                    }
                    Ok(())
                },
            )?;
            last = Some(prev_chunk);
        }

        // STE: global gradient norm + NaN/Inf check over the full shard
        // before any optimizer step may start (Fig. 3's gray block).
        let all: Vec<TaskId> = arrivals.iter().map(|&(_, t)| t).collect();
        let norm_sync = ctx.sim.add_task(
            TaskSpec::compute(
                ctx.cpu,
                SimTime::from_secs((4 * shard(params)) as f64 / chip.cpu.mem_bandwidth) + overhead,
            )
            .with_label("global-norm-sync")
            .after_all(all),
        )?;

        let mut iter_end: Vec<TaskId> = Vec::new();
        for &(bi, _) in &arrivals {
            let elems = shard(buckets.bucket_elems(bi));
            let step = ctx.sim.add_task(
                TaskSpec::compute(
                    ctx.cpu,
                    pipeline_step_time(OptimizerImpl::CpuAdam, &chip.cpu, elems)
                        + cast.fused_optimizer_overhead(chip, elems)
                        + overhead,
                )
                .with_label(format!("step-cpu[{bi}]"))
                .tagged(TaskTag::OptimizerStep)
                .after(norm_sync),
            )?;
            let ret = ctx.sim.add_task(
                TaskSpec::transfer(ctx.h2d, cast.one_way_time(chip, elems) + overhead)
                    .with_label(format!("param-in[{bi}]"))
                    .after(step),
            )?;
            iter_end.push(ret);
        }
        // ZeRO-2: all-gather updated params across ranks.
        let gate_dep: Vec<TaskId> = if ranks > 1 {
            vec![ctx.sim.add_task(
                TaskSpec::collective(ctx.net, coll.all_gather(states.fp16_params / n) + overhead)
                    .with_label("allgather-params")
                    .after_all(iter_end),
            )?]
        } else {
            iter_end
        };
        iters.close(&mut ctx, gate_dep)?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;
    use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn offloading_extends_scale_past_ddp() {
        let c = single_chip_cluster(&presets::gh200_chip());
        // Fig. 13: ZeRO-Offload handles ~15B on one 96 GB GPU.
        assert!(simulate(&c, 1, &wl("13B", 8)).feasible());
        assert!(!simulate(&c, 1, &wl("20B", 8)).feasible());
    }

    #[test]
    fn replicated_params_cap_scale_even_with_more_ranks() {
        // Fig. 13: ZeRO-Offload is bounded (~20B) regardless of rank count
        // because every GPU holds the full FP16 copy.
        let c = presets::gh200_nvl2_cluster(8);
        assert!(!simulate(&c, 16, &wl("25B", 128)).feasible());
    }

    #[test]
    fn gpu_idles_heavily() {
        // Fig. 4: 40–50% GPU idle per iteration.
        let c = single_chip_cluster(&presets::gh200_chip());
        let r = simulate(&c, 1, &wl("13B", 8));
        assert!(r.feasible());
        assert!(
            r.gpu_util < 0.75,
            "ZeRO-Offload should idle the GPU, util {}",
            r.gpu_util
        );
    }

    #[test]
    fn superoffload_is_about_twice_as_fast() {
        // Fig. 10: SuperOffload ≈ 2× (up to 2.5×) over ZeRO-Offload.
        let chip = presets::gh200_chip();
        let c = single_chip_cluster(&chip);
        let w = wl("5B", 8);
        let zo = simulate(&c, 1, &w);
        let so = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
        assert!(zo.feasible() && so.feasible());
        let speedup = so.tflops / zo.tflops;
        assert!(
            (1.5..3.5).contains(&speedup),
            "speedup {speedup} (so {} vs zo {})",
            so.tflops,
            zo.tflops
        );
    }
}
