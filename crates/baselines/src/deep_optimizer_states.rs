//! Deep-Optimizer-States (Middleware '24), as described in the paper's
//! related work (§2.2): "extends ZeRO-Offload by fetching optimizer states
//! from CPU to GPU and updating parameters in parallel across both devices,
//! thus reducing optimizer step time in the critical path".
//!
//! The schedule keeps ZeRO-Offload's placement (FP16 weights on GPU,
//! optimizer states on CPU, STE synchronization) but splits each optimizer
//! step: a fraction of the parameters' states are fetched to the GPU,
//! stepped there at HBM speed, and written back, concurrently with the CPU
//! stepping the remainder. The split is chosen so both sides finish
//! together.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use superoffload::bucket::BucketPlan;
use superoffload::casting::CastPlacement;
use superoffload::costs::{
    gpu_optimizer_time, pipeline_step_time, ComputeTimes, OptimizerImpl, OP_OVERHEAD_FRAMEWORK,
};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// Gradient/optimizer bucket size (matches the ZeRO-Offload baseline).
const BUCKET_BYTES: u64 = 32 * 1000 * 1000;

/// Optimizer-state bytes per parameter fetched for a GPU-side step
/// (master + momentum + variance).
const OPT_STATE_BYTES: u64 = 12;

/// Chooses the GPU's share of the optimizer step so the interleaved CPU and
/// GPU halves finish together: solve
/// `f · (fetch + step_gpu + writeback) per param = (1-f) · step_cpu per param`.
pub fn gpu_share(chip: &ChipSpec) -> f64 {
    // Per-parameter costs (seconds).
    let cpu = pipeline_step_time(OptimizerImpl::CpuAdam, &chip.cpu, 1_000_000_000).as_secs() / 1e9;
    let gpu_step = gpu_optimizer_time(&chip.gpu, 1_000_000_000).as_secs() / 1e9;
    let wire = 2.0 * OPT_STATE_BYTES as f64 / chip.c2c.peak_bandwidth();
    let gpu = gpu_step + wire;
    cpu / (cpu + gpu)
}

/// Deep-Optimizer-States as an [`OffloadSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepOptimizerStates;

impl OffloadSystem for DeepOptimizerStates {
    fn name(&self) -> &str {
        "deep-optimizer-states"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates Deep-Optimizer-States on `ranks` GPUs.
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    collapse(
        simulate_traced(cluster, ranks, workload),
        "deep-optimizer-states",
    )
}

/// Like [`simulate`], additionally returning the execution trace, or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "deep-optimizer-states";
    let lease = FleetCtx::new(cluster).lease(0)?;
    lease.check_span(ranks)?;
    let chip = lease.chip();
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let n = ranks as u64;

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    // Same GPU replication as ZeRO-Offload, plus a staging window for the
    // optimizer states of the buckets being stepped on the GPU.
    let cap = lease.capacity();
    let staging = 4 * BUCKET_BYTES * OPT_STATE_BYTES / 4;
    let gpu_resident = states.fp16_params + states.fp16_grads + states.fp16_grads / n + staging;
    cap.fit_gpu(gpu_resident)?;
    let cpu_resident = states.optimizer_states() / n + 2 * BUCKET_BYTES;
    cap.fit_cpu(cpu_resident)?;
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_FRAMEWORK);
    let buckets = BucketPlan::new(params, BUCKET_BYTES, 0);
    let cast = CastPlacement::CpuCastMoveFp16Pageable;
    let shard = |elems: u64| (elems / n).max(1);
    let share = gpu_share(chip);

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut last: Option<TaskId> = None;
        let mut arrivals: Vec<(u32, TaskId)> = Vec::new();
        for m in 0..plan.micro_steps() {
            let deps: Vec<TaskId> = iters.start_deps().into_iter().chain(last).collect();
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, deps)?;
            let prev_chunk = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                fwd,
                None,
                |ctx, bi, elems, chunk| {
                    if m + 1 == plan.micro_steps() {
                        let xfer = ctx.sim.add_task(
                            TaskSpec::transfer(
                                ctx.d2h,
                                cast.one_way_time(chip, shard(elems)) + overhead,
                            )
                            .with_label(format!("grad-out[{bi}]"))
                            .after(chunk),
                        )?;
                        arrivals.push((bi, xfer));
                    }
                    Ok(())
                },
            )?;
            last = Some(prev_chunk);
        }

        // STE global sync, as in ZeRO-Offload.
        let all: Vec<TaskId> = arrivals.iter().map(|&(_, t)| t).collect();
        let norm_sync = ctx.sim.add_task(
            TaskSpec::compute(
                ctx.cpu,
                SimTime::from_secs((4 * shard(params)) as f64 / chip.cpu.mem_bandwidth) + overhead,
            )
            .with_label("global-norm-sync")
            .after_all(all),
        )?;

        // Interleaved optimizer: per bucket, the GPU takes `share` of the
        // elements (fetch states -> step -> write back) while the CPU
        // steps the rest.
        let mut iter_end: Vec<TaskId> = Vec::new();
        for &(bi, _) in &arrivals {
            let elems = shard(buckets.bucket_elems(bi));
            let gpu_elems = (elems as f64 * share) as u64;
            let cpu_elems = elems - gpu_elems;

            if gpu_elems > 0 {
                let fetch = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        chip.c2c.transfer_time(gpu_elems * OPT_STATE_BYTES) + overhead,
                    )
                    .with_label(format!("opt-fetch[{bi}]"))
                    .tagged(TaskTag::Eviction)
                    .after(norm_sync),
                )?;
                let step = ctx.sim.add_task(
                    TaskSpec::compute(ctx.gpu, gpu_optimizer_time(&chip.gpu, gpu_elems) + overhead)
                        .with_label(format!("step-gpu[{bi}]"))
                        .tagged(TaskTag::OptimizerStep)
                        .after(fetch),
                )?;
                let writeback = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.d2h,
                        chip.c2c.transfer_time(gpu_elems * OPT_STATE_BYTES) + overhead,
                    )
                    .with_label(format!("opt-writeback[{bi}]"))
                    .tagged(TaskTag::Eviction)
                    .after(step),
                )?;
                iter_end.push(writeback);
            }
            if cpu_elems > 0 {
                let step = ctx.sim.add_task(
                    TaskSpec::compute(
                        ctx.cpu,
                        pipeline_step_time(OptimizerImpl::CpuAdam, &chip.cpu, cpu_elems) + overhead,
                    )
                    .with_label(format!("step-cpu[{bi}]"))
                    .tagged(TaskTag::OptimizerStep)
                    .after(norm_sync),
                )?;
                let ret = ctx.sim.add_task(
                    TaskSpec::transfer(ctx.h2d, cast.one_way_time(chip, cpu_elems) + overhead)
                        .with_label(format!("param-in[{bi}]"))
                        .after(step),
                )?;
                iter_end.push(ret);
            }
        }
        iters.close(&mut ctx, iter_end)?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;
    use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn gpu_share_is_a_meaningful_split() {
        let share = gpu_share(&presets::gh200_chip());
        assert!(
            (0.5..0.99).contains(&share),
            "GPU should take the larger share on a Superchip: {share}"
        );
        // On a PCIe machine the wire cost pushes work back to the CPU.
        let pcie = gpu_share(&presets::dgx2_chip());
        assert!(
            pcie < share,
            "PCIe share {pcie} should be below C2C share {share}"
        );
    }

    #[test]
    fn faster_than_zero_offload_slower_than_superoffload() {
        // The paper's positioning: Deep-Optimizer-States reduces optimizer
        // time in the critical path (beats ZeRO-Offload) but keeps the STE
        // synchronization (loses to SuperOffload).
        let chip = presets::gh200_chip();
        let cluster = single_chip_cluster(&chip);
        let w = wl("5B", 8);
        let dos = simulate(&cluster, 1, &w);
        let zo = crate::zero_offload::simulate(&cluster, 1, &w);
        let so = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
        assert!(dos.feasible());
        assert!(
            dos.tflops > zo.tflops * 1.1,
            "DOS {:.1} should beat ZeRO-Offload {:.1}",
            dos.tflops,
            zo.tflops
        );
        assert!(
            dos.tflops < so.tflops,
            "DOS {:.1} should not beat SuperOffload {:.1}",
            dos.tflops,
            so.tflops
        );
    }

    #[test]
    fn same_capacity_class_as_zero_offload() {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        assert!(simulate(&cluster, 1, &wl("13B", 8)).feasible());
        assert!(!simulate(&cluster, 1, &wl("20B", 8)).feasible());
    }
}
