//! Baseline distributed-training systems on the Superchip simulator.
//!
//! Implements every comparison system from the paper's evaluation (§5.1 and
//! Appendix B) as a schedule on the same simulator and cost models that
//! SuperOffload uses, so differences come only from placement and overlap
//! decisions:
//!
//! - [`ddp`] — PyTorch DistributedDataParallel (GPU-only, replicated state).
//! - [`deep_optimizer_states`] — hybrid CPU+GPU optimizer stepping (§2.2
//!   related work).
//! - [`megatron`] — Megatron-LM tensor model parallelism.
//! - [`pipeline`] — GPipe-style pipeline parallelism (background §2.2).
//! - [`zero`] — ZeRO-2 and ZeRO-3 sharded data parallelism (GPU-only).
//! - [`zero_offload`] — ZeRO-Offload (ZeRO-2 + synchronous CPU optimizer).
//! - [`zero_infinity`] — ZeRO-Infinity (weight-flow + CPU optimizer with
//!   small default buckets).
//! - [`fsdp_offload`] — PyTorch FSDP with CPU offloading (fully synchronous
//!   per-unit swapping and a single-threaded native CPU optimizer).
//!
//! Every system implements [`superoffload::system::OffloadSystem`] and is
//! registered in [`registry::standard_registry`], which the experiment
//! drivers and property tests iterate. Infeasible configurations surface as
//! typed [`superoffload::system::Infeasible`] reasons rather than a bare
//! "OOM" report.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod ddp;
pub mod deep_optimizer_states;
pub mod fsdp_offload;
pub mod megatron;
pub mod pipeline;
pub mod registry;
pub mod zero;
pub mod zero_infinity;
pub mod zero_offload;

pub use common::single_chip_cluster;
pub use registry::standard_registry;
pub use superoffload::report::TrainReport;
pub use superoffload::system::{Infeasible, OffloadSystem, SystemRegistry};
