//! ZeRO-2 and ZeRO-3 sharded data parallelism (GPU-only).
//!
//! ZeRO-2 shards gradients and optimizer states but replicates FP16
//! parameters; ZeRO-3 shards parameters too, at the cost of all-gathering
//! them for every forward and backward pass.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use superoffload::bucket::BucketPlan;
use superoffload::costs::{gpu_optimizer_time, ComputeTimes, OP_OVERHEAD_TUNED};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// Which ZeRO stage to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroStage {
    /// Gradients + optimizer states sharded.
    Two,
    /// Parameters sharded as well.
    Three,
}

impl ZeroStage {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ZeroStage::Two => "zero-2",
            ZeroStage::Three => "zero-3",
        }
    }
}

/// DeepSpeed's default reduce bucket size.
const ZERO_BUCKET_BYTES: u64 = 200 * 1000 * 1000;

/// ZeRO-2 or ZeRO-3 as an [`OffloadSystem`].
#[derive(Debug, Clone, Copy)]
pub struct Zero {
    /// Which ZeRO stage this system simulates.
    pub stage: ZeroStage,
}

impl OffloadSystem for Zero {
    fn name(&self) -> &str {
        self.stage.name()
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload, self.stage)
    }
}

/// Simulates ZeRO-2/3 on `ranks` GPUs.
pub fn simulate(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    stage: ZeroStage,
) -> TrainReport {
    collapse(
        simulate_traced(cluster, ranks, workload, stage),
        stage.name(),
    )
}

/// Like [`simulate`], additionally returning the execution trace, or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    stage: ZeroStage,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = stage.name();
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    let cap = lease.capacity();
    let n = ranks as u64;
    let gpu_resident = match stage {
        // Full FP16 params + full FP16 gradients (held until the reduction
        // drains) + sharded optimizer states.
        ZeroStage::Two => {
            states.fp16_params
                + states.fp16_grads
                + 2 * ZERO_BUCKET_BYTES
                + states.optimizer_states() / n
        }
        // Everything sharded + a gathered working window.
        ZeroStage::Three => {
            let window = (states.fp16_params / workload.config.layers.max(1) as u64) * 4;
            states.total() / n + window + 2 * ZERO_BUCKET_BYTES
        }
    };
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_TUNED);
    let buckets = BucketPlan::new(params, ZERO_BUCKET_BYTES, 0);
    let allgather = coll.all_gather(states.fp16_params / n.max(1));

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, 0);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut iter_end: Vec<TaskId> = Vec::new();
        let mut last: Option<TaskId> = None;
        for m in 0..plan.micro_steps() {
            let mut deps: Vec<TaskId> = iters.start_deps().into_iter().chain(last).collect();
            if stage == ZeroStage::Three && ranks > 1 {
                let ag = ctx.sim.add_task(
                    TaskSpec::collective(ctx.net, allgather + overhead)
                        .with_label("allgather-fwd")
                        .after_all(deps.iter().copied()),
                )?;
                deps = vec![ag];
            }
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, deps)?;
            let mut bwd_start = fwd;
            if stage == ZeroStage::Three && ranks > 1 {
                bwd_start = ctx.sim.add_task(
                    TaskSpec::collective(ctx.net, allgather + overhead)
                        .with_label("allgather-bwd")
                        .after(fwd),
                )?;
            }
            let prev_chunk = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                bwd_start,
                None,
                |ctx, bi, elems, chunk| {
                    if ranks > 1 && m + 1 == plan.micro_steps() {
                        let rs = ctx.reduce_scatter(
                            &coll,
                            2 * elems,
                            overhead,
                            format!("reduce-scatter[{bi}]"),
                            chunk,
                        )?;
                        iter_end.push(rs);
                    }
                    Ok(())
                },
            )?;
            last = Some(prev_chunk);
        }
        // Sharded GPU optimizer step.
        let step = ctx.sim.add_task(
            TaskSpec::compute(
                ctx.gpu,
                gpu_optimizer_time(&chip.gpu, params / n) + overhead,
            )
            .with_label("step-gpu")
            .tagged(TaskTag::OptimizerStep)
            .after_all(iter_end.iter().copied().chain(last)),
        )?;
        // ZeRO-2: all-gather updated FP16 params back to every rank.
        let gate_dep = if stage == ZeroStage::Two && ranks > 1 {
            ctx.sim.add_task(
                TaskSpec::collective(ctx.net, allgather + overhead)
                    .with_label("allgather-params")
                    .after(step),
            )?
        } else {
            step
        };
        iters.close(&mut ctx, [gate_dep])?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn single_gpu_caps_match_ddp_scale() {
        // §5.2: Megatron and ZeRO-2/3 "do not enable training larger models
        // on a single GPU compared to PyTorch DDP".
        let c = single_chip_cluster(&presets::gh200_chip());
        assert!(simulate(&c, 1, &wl("3B", 8), ZeroStage::Two).feasible());
        assert!(!simulate(&c, 1, &wl("6B", 8), ZeroStage::Two).feasible());
        assert!(!simulate(&c, 1, &wl("6B", 8), ZeroStage::Three).feasible());
    }

    #[test]
    fn zero3_scales_further_than_zero2() {
        let c = presets::gh200_nvl2_cluster(8);
        // ZeRO-2 replicates FP16 params: bounded regardless of rank count.
        assert!(!simulate(&c, 16, &wl("25B", 128), ZeroStage::Two).feasible());
        assert!(simulate(&c, 16, &wl("25B", 128), ZeroStage::Three).feasible());
    }

    #[test]
    fn zero3_pays_allgather_throughput_tax() {
        let c = presets::gh200_nvl2_cluster(2);
        let z2 = simulate(&c, 4, &wl("10B", 16), ZeroStage::Two);
        let z3 = simulate(&c, 4, &wl("10B", 16), ZeroStage::Three);
        assert!(z2.feasible() && z3.feasible());
        assert!(
            z3.tflops <= z2.tflops * 1.05,
            "zero-3 {} should not beat zero-2 {} materially",
            z3.tflops,
            z2.tflops
        );
    }

    #[test]
    fn stage_names() {
        assert_eq!(ZeroStage::Two.name(), "zero-2");
        assert_eq!(ZeroStage::Three.name(), "zero-3");
    }
}
