//! Shared helpers for baseline schedule builders.

use superchip_sim::prelude::*;

/// Wraps a single Superchip as a degenerate one-node, one-chip cluster so
/// single-chip and multi-chip experiments share one code path.
pub fn single_chip_cluster(chip: &ChipSpec) -> ClusterSpec {
    ClusterSpec {
        node: NodeSpec {
            chip: chip.clone(),
            chip_count: 1,
            intra_link: superchip_sim::presets::nvlink_gpu(),
        },
        node_count: 1,
        inter_link: superchip_sim::presets::slingshot11(),
    }
}

/// Standard simulation iteration count for steady-state measurement.
pub const ITERATIONS: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    #[test]
    fn single_chip_cluster_has_one_gpu() {
        let c = single_chip_cluster(&presets::gh200_chip());
        assert_eq!(c.total_gpus(), 1);
        assert_eq!(c.node.chip.name, "GH200");
    }
}
