//! PyTorch FSDP with CPU offloading.
//!
//! FSDP wraps the model into per-layer units; with `cpu_offload=True` each
//! unit's parameters live on the CPU and are copied in for forward and
//! backward, gradients are copied out, and the optimizer step runs with the
//! framework-native CPU Adam, unit by unit, **synchronously** — no
//! compute/transfer overlap, no fused optimizer, no pinned fast path. This
//! is the configuration the paper measures at under 15 TFLOPS (§5.2).

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use superoffload::casting::CastPlacement;
use superoffload::costs::{ComputeTimes, OptimizerImpl, OP_OVERHEAD_FRAMEWORK};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::system::{collapse, split_batch, Infeasible, IterationBuilder, OffloadSystem};

use crate::common::ITERATIONS;

/// PyTorch FSDP with CPU offloading as an [`OffloadSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FsdpOffload;

impl OffloadSystem for FsdpOffload {
    fn name(&self) -> &str {
        "fsdp-offload"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates FSDP-CPU-Offload on `ranks` GPUs.
pub fn simulate(cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
    collapse(simulate_traced(cluster, ranks, workload), "fsdp-offload")
}

/// Like [`simulate`], additionally returning the execution trace, or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "fsdp-offload";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let n = ranks as u64;
    let layers = workload.config.layers.max(1);

    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    let cap = lease.capacity();
    // GPU: two units' parameters at a time (current + prefetch).
    let unit_params = params / layers as u64;
    let gpu_resident = 2 * 2 * unit_params * 2;
    cap.fit_gpu(gpu_resident)?;
    let cpu_resident = (states.total()) / n;
    cap.fit_cpu(cpu_resident)?;
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(OP_OVERHEAD_FRAMEWORK);
    // Everything moves through pageable host memory (FSDP CPU offload does
    // not pin its parameter storage).
    let cast = CastPlacement::CpuCastMoveFp16Pageable;
    let shard = |elems: u64| (elems / n).max(1);

    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);
    let mut iters = IterationBuilder::new();
    for _ in 0..ITERATIONS {
        let mut chain: Option<TaskId> = iters.prev_gate();
        for m in 0..plan.micro_steps() {
            // Per-unit synchronous pipeline: fetch -> compute -> (bwd:
            // grad out). No overlap: each step waits for the previous.
            for l in 0..layers {
                let fetch = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        chip.c2c.transfer_time_pageable(2 * unit_params) + overhead,
                    )
                    .with_label(format!("unit-fetch-fwd[{l}]"))
                    .tagged(TaskTag::Eviction)
                    .after_all(chain),
                )?;
                let fwd = ctx.sim.add_task(
                    TaskSpec::compute(ctx.gpu, compute.fwd_per_micro / layers as f64 + overhead)
                        .with_label(format!("unit-fwd[{l}]"))
                        .after(fetch),
                )?;
                chain = Some(fwd);
            }
            for l in (0..layers).rev() {
                let fetch = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        chip.c2c.transfer_time_pageable(2 * unit_params) + overhead,
                    )
                    .with_label(format!("unit-fetch-bwd[{l}]"))
                    .tagged(TaskTag::Eviction)
                    .after_all(chain),
                )?;
                let bwd = ctx.sim.add_task(
                    TaskSpec::compute(ctx.gpu, compute.bwd_per_micro / layers as f64 + overhead)
                        .with_label(format!("unit-bwd[{l}]"))
                        .after(fetch),
                )?;
                let mut dep = bwd;
                if ranks > 1 && m + 1 == plan.micro_steps() {
                    dep = ctx.reduce_scatter(
                        &coll,
                        2 * unit_params,
                        overhead,
                        format!("unit-reduce[{l}]"),
                        bwd,
                    )?;
                }
                let out = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.d2h,
                        cast.one_way_time(chip, shard(unit_params)) + overhead,
                    )
                    .with_label(format!("unit-grad-out[{l}]"))
                    .after(dep),
                )?;
                chain = Some(out);
            }
        }
        // Optimizer: framework-native CPU Adam, one unit at a time on a
        // single thread, fully serialized behind the backward pass.
        for l in 0..layers {
            let step = ctx.sim.add_task(
                TaskSpec::compute(
                    ctx.cpu,
                    OptimizerImpl::PtCpuSingleThread.step_time(&chip.cpu, shard(unit_params))
                        + overhead,
                )
                .with_label(format!("unit-step[{l}]"))
                .tagged(TaskTag::OptimizerStep)
                .after_all(chain),
            )?;
            chain = Some(step);
        }
        iters.close(&mut ctx, chain)?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn fits_large_models_but_is_very_slow() {
        // Fig. 10: FSDP-Offload consistently under ~15 TFLOPS.
        let c = single_chip_cluster(&presets::gh200_chip());
        for name in ["5B", "13B"] {
            let r = simulate(&c, 1, &wl(name, 8));
            assert!(r.feasible(), "{name} should fit");
            assert!(
                r.tflops < 30.0,
                "{name}: expected very low TFLOPS, got {}",
                r.tflops
            );
        }
    }

    #[test]
    fn slowest_of_all_offloaders() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let w = wl("5B", 8);
        let fsdp = simulate(&c, 1, &w);
        let zi = crate::zero_infinity::simulate(&c, 1, &w);
        let zo = crate::zero_offload::simulate(&c, 1, &w);
        assert!(fsdp.tflops < zi.tflops);
        assert!(fsdp.tflops < zo.tflops);
    }

    #[test]
    fn gpu_mostly_idle() {
        let c = single_chip_cluster(&presets::gh200_chip());
        let r = simulate(&c, 1, &wl("5B", 8));
        assert!(r.gpu_util < 0.5, "util {}", r.gpu_util);
    }
}
