//! GPipe-style pipeline parallelism (background §2.2).
//!
//! The paper's background lists pipeline parallelism among the distributed
//! techniques whose GPU appetite motivates offloading; it is not part of
//! the evaluation, so this baseline rounds out the system inventory. The
//! model is split into `stages` contiguous layer groups, one per GPU; a
//! batch is cut into micro-batches that flow through the stages, filling
//! and draining the famous pipeline *bubble* — with `m` micro-batches and
//! `s` stages, the bubble wastes `(s-1)/(m+s-1)` of each GPU's time.
//! Unlike the rank-symmetric schedules elsewhere, this one simulates every
//! stage as its own GPU resource, so the bubble emerges from the task graph
//! rather than a formula (the formula is what the tests check it against).
//! Because of that asymmetric resource layout it builds its own task graph
//! instead of using [`ScheduleCtx`](superoffload::system::ScheduleCtx), but
//! it reports infeasibility through the same typed [`Infeasible`] channel.

use llm_model::flops::TrainingFlops;
use llm_model::memory::{ActivationMemory, ModelStateMemory};
use llm_model::workload::{ExecutionPlan, Workload};
use superchip_sim::prelude::*;

use superoffload::costs::{gpu_optimizer_time, ComputeTimes, OP_OVERHEAD_TUNED};
use superoffload::fleet::FleetCtx;
use superoffload::report::TrainReport;
use superoffload::schedule::finalize_report;
use superoffload::system::{collapse, Infeasible, OffloadSystem};

use crate::common::ITERATIONS;

/// Analytic bubble fraction of a GPipe schedule.
pub fn bubble_fraction(stages: u32, micro_batches: u32) -> f64 {
    assert!(stages >= 1 && micro_batches >= 1);
    (stages as f64 - 1.0) / (micro_batches as f64 + stages as f64 - 1.0)
}

/// GPipe pipeline parallelism as an [`OffloadSystem`] (`ranks` == stages).
#[derive(Debug, Clone, Copy, Default)]
pub struct Pipeline;

impl OffloadSystem for Pipeline {
    fn name(&self) -> &str {
        "pipeline"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        simulate_traced(cluster, ranks, workload)
    }
}

/// Simulates GPipe pipeline parallelism with `stages` == `ranks` GPUs.
///
/// The report is per-GPU (effective FLOPs of one stage over the steady
/// iteration), comparable with the other baselines.
pub fn simulate(cluster: &ClusterSpec, stages: u32, workload: &Workload) -> TrainReport {
    collapse(simulate_traced(cluster, stages, workload), "pipeline")
}

/// Like [`simulate`], additionally returning the execution trace, or the
/// structured [`Infeasible`] reason when the workload cannot run.
pub fn simulate_traced(
    cluster: &ClusterSpec,
    stages: u32,
    workload: &Workload,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "pipeline";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    // Stage hand-offs are point-to-point (2 endpoints) over whatever link
    // the `stages`-GPU placement must cross; a single stage has no hops,
    // so its handle degenerates to one rank.
    let coll = lease.collective_spanning(stages, stages.min(2))?;

    // Memory per stage: 1/stages of the model states, plus activations for
    // the micro-batches in flight (up to `stages` of them at the steady
    // point of the pipeline).
    let cap = lease.capacity();
    let stage_states = states.total() / stages as u64;
    cap.fit_gpu(stage_states)?;
    // Choose the micro-batch: smallest unit (1 sequence) maximizes bubble
    // amortization; check that `stages` in-flight micro-activations fit.
    let micro_batches = workload.global_batch;
    let stage_cfg_act = {
        let mut cfg = workload.config.clone();
        cfg.layers = (cfg.layers / stages).max(1);
        ActivationMemory::full(&cfg, 1, workload.seq).bytes
    };
    let in_flight = stages.min(micro_batches) as u64;
    cap.fit_gpu(stage_states + stage_cfg_act * in_flight)?;
    let plan = ExecutionPlan {
        micro_batch: 1,
        accum_steps: micro_batches,
        checkpointing: false,
        activation_bytes: stage_cfg_act * in_flight,
    };

    let flops =
        TrainingFlops::for_iteration(&workload.config, workload.global_batch, workload.seq, false);
    // Whole-model compute split per stage and per micro-batch.
    let compute = ComputeTimes::new(&chip.gpu, &flops, 1);
    let fwd_chunk = compute.fwd_per_micro / (stages * micro_batches) as f64;
    let bwd_chunk = compute.bwd_per_micro / (stages * micro_batches) as f64;
    let overhead = SimTime::from_secs(OP_OVERHEAD_TUNED);
    // Inter-stage activation hand-off per micro-batch.
    let hop_bytes = 2 * workload.seq * workload.config.hidden as u64;
    let hop = coll.link().transfer_time(hop_bytes);

    // Every stage lives in the namespace of the node hosting it, so a
    // fleet-spanning pipeline shows which side of the fabric each stage
    // and hand-off link sit on (node 0 keeps bare names).
    let chips_per_node = cluster.node.chip_count.max(1);
    let node_of = |stage: u32| stage / chips_per_node;
    let mut sim = Simulator::new();
    let gpus: Vec<_> = (0..stages)
        .map(|s| sim.add_node_resource(node_of(s), format!("gpu{s}")))
        .collect();
    let cpu = sim.add_resource("cpu");
    let links: Vec<_> = (0..stages.saturating_sub(1))
        .map(|s| sim.add_node_resource(node_of(s), format!("link{s}")))
        .collect();

    let mut gates = Vec::new();
    let mut prev_gate: Option<TaskId> = None;
    for _ in 0..ITERATIONS {
        let s = stages as usize;
        let m = micro_batches as usize;
        // fwd[stage][micro], bwd[stage][micro]
        let mut fwd = vec![vec![None::<TaskId>; m]; s];
        for micro in 0..m {
            for stage in 0..s {
                let mut spec = TaskSpec::compute(gpus[stage], fwd_chunk + overhead)
                    .with_label(format!("fwd[s{stage},m{micro}]"));
                if let Some(g) = prev_gate {
                    spec = spec.after(g);
                }
                if micro > 0 {
                    spec = spec.after(fwd[stage][micro - 1].expect("built in order"));
                }
                if stage > 0 {
                    let hop_task = sim.add_task(
                        TaskSpec::transfer(links[stage - 1], hop + overhead)
                            .with_label(format!("act[s{stage},m{micro}]"))
                            .after(fwd[stage - 1][micro].expect("built in order")),
                    )?;
                    spec = spec.after(hop_task);
                }
                fwd[stage][micro] = Some(sim.add_task(spec)?);
            }
        }
        // Backward: reverse stage order (GPipe's flush style: backward
        // starts after all forwards).
        let mut bwd = vec![vec![None::<TaskId>; m]; s];
        for micro in 0..m {
            for rstage in 0..s {
                let stage = s - 1 - rstage;
                let mut spec = TaskSpec::compute(gpus[stage], bwd_chunk + overhead)
                    .with_label(format!("bwd[s{stage},m{micro}]"))
                    .after(fwd[s - 1][m - 1].expect("all forwards built"));
                if micro > 0 {
                    spec = spec.after(bwd[stage][micro - 1].expect("built in order"));
                }
                if stage + 1 < s {
                    let hop_task = sim.add_task(
                        TaskSpec::transfer(links[stage], hop + overhead)
                            .with_label(format!("grad[s{stage},m{micro}]"))
                            .after(bwd[stage + 1][micro].expect("built in order")),
                    )?;
                    spec = spec.after(hop_task);
                }
                bwd[stage][micro] = Some(sim.add_task(spec)?);
            }
        }
        // Per-stage optimizer over its parameter shard.
        let mut iter_end = Vec::new();
        for stage in 0..s {
            let step = sim.add_task(
                TaskSpec::compute(
                    gpus[stage],
                    gpu_optimizer_time(&chip.gpu, params / stages as u64) + overhead,
                )
                .with_label(format!("step[s{stage}]"))
                .tagged(TaskTag::OptimizerStep)
                .after(bwd[stage][m - 1].expect("built in order")),
            )?;
            iter_end.push(step);
        }
        let gate = sim.add_task(
            TaskSpec::sync(gpus[0])
                .with_label("iter-gate")
                .after_all(iter_end),
        )?;
        prev_gate = Some(gate);
        gates.push(gate);
    }

    let trace = sim.run()?;
    // Per-GPU peak: stage 0's resident states plus its in-flight
    // activations (the static planning quantities — this builder has no
    // dynamic pool tracking).
    let peaks = vec![("hbm".to_string(), stage_states + stage_cfg_act * in_flight)];
    // Per-GPU effective FLOPs: one stage's share.
    Ok((
        finalize_report(
            system,
            &trace,
            &gates,
            gpus[0],
            cpu,
            flops.effective() / stages as f64,
            chip,
            plan,
            peaks,
        ),
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::single_chip_cluster;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn bubble_fraction_formula() {
        assert_eq!(bubble_fraction(1, 8), 0.0);
        assert!((bubble_fraction(4, 4) - 3.0 / 7.0).abs() < 1e-12);
        assert!((bubble_fraction(4, 16) - 3.0 / 19.0).abs() < 1e-12);
        // More micro-batches shrink the bubble.
        assert!(bubble_fraction(4, 64) < bubble_fraction(4, 8));
    }

    #[test]
    fn simulated_utilization_tracks_the_bubble() {
        // With s stages and m micro-batches, GPU utilization of the
        // compute phase should be roughly 1 - bubble (optimizer and hops
        // perturb it slightly).
        let cluster = presets::gh200_nvl2_cluster(2);
        let r = simulate(&cluster, 4, &wl("10B", 8));
        assert!(r.feasible());
        let expected = 1.0 - bubble_fraction(4, 8);
        assert!(
            (r.gpu_util - expected).abs() < 0.12,
            "gpu util {:.3} vs 1-bubble {:.3}",
            r.gpu_util,
            expected
        );
    }

    #[test]
    fn pipeline_extends_model_scale_with_stages() {
        let cluster = presets::gh200_nvl2_cluster(2);
        // 15B does not fit one GPU but fits 4 pipeline stages.
        assert!(!simulate(
            &single_chip_cluster(&presets::gh200_chip()),
            1,
            &wl("15B", 8)
        )
        .feasible());
        assert!(simulate(&cluster, 4, &wl("15B", 8)).feasible());
    }

    #[test]
    fn more_micro_batches_increase_throughput() {
        let cluster = presets::gh200_nvl2_cluster(2);
        let small = simulate(&cluster, 4, &wl("10B", 4));
        let large = simulate(&cluster, 4, &wl("10B", 32));
        assert!(small.feasible() && large.feasible());
        assert!(
            large.tflops > small.tflops,
            "bubble amortization failed: {} !> {}",
            large.tflops,
            small.tflops
        );
    }

    #[test]
    fn single_stage_degenerates_to_serial_training() {
        let cluster = single_chip_cluster(&presets::gh200_chip());
        let r = simulate(&cluster, 1, &wl("3B", 8));
        assert!(r.feasible());
        assert!(r.gpu_util > 0.9, "no bubble at one stage: {}", r.gpu_util);
    }
}
