//! NUMA binding for multi-Superchip nodes (§4.7).
//!
//! In a K-way Superchip node each chip is its own NUMA domain. A launcher
//! that scatters ranks across CPU cores can leave a GPU's offload traffic
//! crossing the inter-Superchip fabric instead of NVLink-C2C. SuperOffload
//! pins each rank to the cores of its local Grace CPU.

use superchip_sim::topology::{ChipSpec, NodeSpec, NumaBinding};

/// Core-range assignment of one training rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBinding {
    /// Rank index within the node.
    pub rank: u32,
    /// Superchip (NUMA node) the rank's GPU lives on.
    pub chip: u32,
    /// First CPU core assigned (inclusive).
    pub core_start: u32,
    /// One past the last CPU core assigned.
    pub core_end: u32,
    /// Whether the rank is co-located with its GPU's Grace CPU.
    pub binding: NumaBinding,
}

/// Computes co-located bindings for `ranks` training processes on `node`
/// (one rank per Superchip, each getting that chip's full core range).
///
/// # Panics
/// Panics if `ranks` exceeds the node's chip count.
pub fn colocated_bindings(node: &NodeSpec, ranks: u32) -> Vec<RankBinding> {
    assert!(
        ranks <= node.chip_count,
        "{ranks} ranks exceed {} chips",
        node.chip_count
    );
    let cores = node.chip.cpu.cores;
    (0..ranks)
        .map(|r| RankBinding {
            rank: r,
            chip: r,
            core_start: r * cores,
            core_end: (r + 1) * cores,
            binding: NumaBinding::Colocated,
        })
        .collect()
}

/// Worst-case launcher behaviour: every rank lands on the *next* chip's
/// cores (all traffic crosses the fabric). Used to quantify the penalty.
pub fn scattered_bindings(node: &NodeSpec, ranks: u32) -> Vec<RankBinding> {
    assert!(ranks <= node.chip_count);
    let cores = node.chip.cpu.cores;
    (0..ranks)
        .map(|r| {
            let cpu_chip = (r + 1) % node.chip_count;
            RankBinding {
                rank: r,
                chip: cpu_chip,
                core_start: cpu_chip * cores,
                core_end: (cpu_chip + 1) * cores,
                binding: if cpu_chip == r {
                    NumaBinding::Colocated
                } else {
                    NumaBinding::Remote
                },
            }
        })
        .collect()
}

/// Bandwidth penalty factor of a binding: local C2C bandwidth divided by the
/// bandwidth the binding actually achieves.
pub fn binding_penalty(chip: &ChipSpec, binding: NumaBinding) -> f64 {
    chip.c2c.peak_bandwidth() / chip.gpu_cpu_link(binding).peak_bandwidth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    #[test]
    fn colocated_ranks_are_local_and_disjoint() {
        let node = presets::gh200_nvl2_node();
        let bindings = colocated_bindings(&node, 2);
        assert_eq!(bindings.len(), 2);
        for b in &bindings {
            assert_eq!(b.binding, NumaBinding::Colocated);
            assert_eq!(b.chip, b.rank);
            assert_eq!(b.core_end - b.core_start, 72);
        }
        // Core ranges must not overlap.
        assert!(bindings[0].core_end <= bindings[1].core_start);
    }

    #[test]
    fn scattered_ranks_go_remote() {
        let node = presets::gh200_nvl2_node();
        let bindings = scattered_bindings(&node, 2);
        assert!(bindings.iter().all(|b| b.binding == NumaBinding::Remote));
    }

    #[test]
    fn remote_penalty_is_large_on_gh200() {
        // C2C 450 GB/s vs Slingshot 25 GB/s: 18× penalty.
        let chip = presets::gh200_chip();
        let local = binding_penalty(&chip, NumaBinding::Colocated);
        let remote = binding_penalty(&chip, NumaBinding::Remote);
        assert_eq!(local, 1.0);
        assert!(remote > 10.0, "penalty {remote}");
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_ranks_rejected() {
        let node = presets::gh200_nvl2_node();
        let _ = colocated_bindings(&node, 5);
    }
}
