//! Numeric-plane Ulysses sequence parallelism: the all-to-all attention
//! layout, executed for real.
//!
//! DeepSpeed-Ulysses partitions the *sequence* across ranks for every
//! non-attention operator, then uses an all-to-all to re-partition Q/K/V by
//! *head* for attention (each rank sees the full sequence for its subset of
//! heads), and a second all-to-all to return to sequence partitioning.
//! This module implements those two reshapes and the distributed attention
//! on real tensors, and the test suite asserts exact equivalence with the
//! dense single-device computation — the correctness property that lets
//! SuperOffload-Ulysses (§4.7) treat sequence parallelism as
//! loss-transparent.

use tensorlite::ops::softmax_rows;
use tensorlite::{Tensor, TensorError};

/// One rank's sequence shard of Q, K, and V: `[local_seq, heads * head_dim]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceShard {
    /// Queries for the local tokens.
    pub q: Tensor,
    /// Keys for the local tokens.
    pub k: Tensor,
    /// Values for the local tokens.
    pub v: Tensor,
}

/// Splits full-sequence Q/K/V into `ranks` contiguous sequence shards.
///
/// # Errors
/// Returns [`TensorError`] if the sequence does not divide by `ranks` or
/// the tensors disagree in shape.
pub fn shard_sequence(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    ranks: usize,
) -> Result<Vec<SequenceShard>, TensorError> {
    if q.shape() != k.shape() || q.shape() != v.shape() {
        return Err(TensorError::IncompatibleShapes {
            left: q.shape().to_vec(),
            right: k.shape().to_vec(),
            op: "shard_sequence",
        });
    }
    let (seq, width) = (q.shape()[0], q.shape()[1]);
    if ranks == 0 || !seq.is_multiple_of(ranks) {
        return Err(TensorError::BadRank {
            expected: ranks.max(1),
            actual: seq,
            op: "shard_sequence (sequence must divide by ranks)",
        });
    }
    let local = seq / ranks;
    let slice = |t: &Tensor, r: usize| -> Result<Tensor, TensorError> {
        let data = t.data()[r * local * width..(r + 1) * local * width].to_vec();
        Tensor::from_vec(data, &[local, width])
    };
    (0..ranks)
        .map(|r| {
            Ok(SequenceShard {
                q: slice(q, r)?,
                k: slice(k, r)?,
                v: slice(v, r)?,
            })
        })
        .collect()
}

/// The Ulysses **first all-to-all**: from sequence-partitioned shards
/// (each rank holds all heads for `seq/ranks` tokens) to head-partitioned
/// shards (each rank holds `heads/ranks` heads for the *full* sequence).
///
/// Returns, per rank, the full-sequence `[seq, local_heads * head_dim]`
/// Q/K/V for that rank's heads.
///
/// # Errors
/// Returns [`TensorError`] if heads do not divide by the rank count or the
/// width is not a multiple of `heads`.
pub fn all_to_all_to_heads(
    shards: &[SequenceShard],
    heads: usize,
) -> Result<Vec<SequenceShard>, TensorError> {
    let ranks = shards.len();
    let (local_seq, width) = (shards[0].q.shape()[0], shards[0].q.shape()[1]);
    if heads == 0 || !width.is_multiple_of(heads) || !heads.is_multiple_of(ranks) {
        return Err(TensorError::BadRank {
            expected: ranks,
            actual: heads,
            op: "all_to_all_to_heads (heads must divide by ranks)",
        });
    }
    let head_dim = width / heads;
    let local_heads = heads / ranks;
    let seq = local_seq * ranks;

    let gather = |get: &dyn Fn(&SequenceShard) -> &Tensor, dst_rank: usize| {
        let mut out = vec![0.0f32; seq * local_heads * head_dim];
        for (src_rank, shard) in shards.iter().enumerate() {
            let t = get(shard);
            for ls in 0..local_seq {
                let global_s = src_rank * local_seq + ls;
                for lh in 0..local_heads {
                    let head = dst_rank * local_heads + lh;
                    let src = ls * width + head * head_dim;
                    let dst = global_s * local_heads * head_dim + lh * head_dim;
                    out[dst..dst + head_dim].copy_from_slice(&t.data()[src..src + head_dim]);
                }
            }
        }
        Tensor::from_vec(out, &[seq, local_heads * head_dim])
    };

    (0..ranks)
        .map(|r| {
            Ok(SequenceShard {
                q: gather(&|s| &s.q, r)?,
                k: gather(&|s| &s.k, r)?,
                v: gather(&|s| &s.v, r)?,
            })
        })
        .collect()
}

/// Causal multi-head attention over one rank's head shard (full sequence,
/// `local_heads` heads): the compute each rank performs between the two
/// all-to-alls.
///
/// # Errors
/// Returns [`TensorError`] on internal shape violations.
pub fn attention_over_heads(
    shard: &SequenceShard,
    local_heads: usize,
) -> Result<Tensor, TensorError> {
    let (seq, width) = (shard.q.shape()[0], shard.q.shape()[1]);
    let head_dim = width / local_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut out = vec![0.0f32; seq * width];
    for h in 0..local_heads {
        // Extract per-head [seq, head_dim] views.
        let take = |t: &Tensor| -> Result<Tensor, TensorError> {
            let mut d = vec![0.0f32; seq * head_dim];
            for s in 0..seq {
                let src = s * width + h * head_dim;
                d[s * head_dim..(s + 1) * head_dim].copy_from_slice(&t.data()[src..src + head_dim]);
            }
            Tensor::from_vec(d, &[seq, head_dim])
        };
        let (q, k, v) = (take(&shard.q)?, take(&shard.k)?, take(&shard.v)?);
        let mut scores = q.matmul(&k.transpose()?)?.scale(scale);
        for i in 0..seq {
            for j in (i + 1)..seq {
                scores.data_mut()[i * seq + j] = f32::NEG_INFINITY;
            }
        }
        let probs = softmax_rows(&scores)?;
        let o = probs.matmul(&v)?;
        for s in 0..seq {
            let dst = s * width + h * head_dim;
            out[dst..dst + head_dim].copy_from_slice(&o.data()[s * head_dim..(s + 1) * head_dim]);
        }
    }
    Tensor::from_vec(out, &[seq, width])
}

/// The Ulysses **second all-to-all**: from head-partitioned attention
/// outputs back to sequence-partitioned `[local_seq, heads * head_dim]`
/// shards.
///
/// # Errors
/// Returns [`TensorError`] on shape violations.
pub fn all_to_all_to_sequence(
    head_outputs: &[Tensor],
    heads: usize,
) -> Result<Vec<Tensor>, TensorError> {
    let ranks = head_outputs.len();
    let (seq, local_width) = (head_outputs[0].shape()[0], head_outputs[0].shape()[1]);
    let local_heads = heads / ranks;
    let head_dim = local_width / local_heads;
    let width = heads * head_dim;
    let local_seq = seq / ranks;

    (0..ranks)
        .map(|dst_rank| {
            let mut out = vec![0.0f32; local_seq * width];
            for (src_rank, t) in head_outputs.iter().enumerate() {
                for ls in 0..local_seq {
                    let global_s = dst_rank * local_seq + ls;
                    for lh in 0..local_heads {
                        let head = src_rank * local_heads + lh;
                        let src = global_s * local_width + lh * head_dim;
                        let dst = ls * width + head * head_dim;
                        out[dst..dst + head_dim].copy_from_slice(&t.data()[src..src + head_dim]);
                    }
                }
            }
            Tensor::from_vec(out, &[local_seq, width])
        })
        .collect()
}

/// End-to-end Ulysses attention: shard by sequence, all-to-all to heads,
/// attend, all-to-all back, and reassemble the full `[seq, width]` output.
///
/// # Errors
/// Returns [`TensorError`] if shapes do not divide by `ranks`/`heads`.
pub fn ulysses_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    ranks: usize,
) -> Result<Tensor, TensorError> {
    let shards = shard_sequence(q, k, v, ranks)?;
    let by_heads = all_to_all_to_heads(&shards, heads)?;
    let local_heads = heads / ranks;
    let outputs: Result<Vec<Tensor>, TensorError> = by_heads
        .iter()
        .map(|s| attention_over_heads(s, local_heads))
        .collect();
    let seq_shards = all_to_all_to_sequence(&outputs?, heads)?;
    // Reassemble.
    let width = q.shape()[1];
    let mut full = Vec::with_capacity(q.len());
    for shard in &seq_shards {
        full.extend_from_slice(shard.data());
    }
    Tensor::from_vec(full, &[q.shape()[0], width])
}

/// Dense (single-device) reference: the same causal attention with all
/// heads local.
///
/// # Errors
/// Returns [`TensorError`] on shape violations.
pub fn dense_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
) -> Result<Tensor, TensorError> {
    attention_over_heads(
        &SequenceShard {
            q: q.clone(),
            k: k.clone(),
            v: v.clone(),
        },
        heads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlite::XorShiftRng;

    fn qkv(seq: usize, width: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = XorShiftRng::new(seed);
        (
            Tensor::randn(&[seq, width], 1.0, &mut rng),
            Tensor::randn(&[seq, width], 1.0, &mut rng),
            Tensor::randn(&[seq, width], 1.0, &mut rng),
        )
    }

    #[test]
    fn ulysses_equals_dense_attention_exactly() {
        // The load-bearing property: sequence parallelism is a pure data
        // relayout; every output element is produced by the same FLOPs in
        // the same order, so equality is exact, not approximate.
        for (ranks, heads) in [(1usize, 4usize), (2, 4), (4, 4), (2, 8)] {
            let (q, k, v) = qkv(16, 32, 7);
            let dense = dense_attention(&q, &k, &v, heads).unwrap();
            let ulysses = ulysses_attention(&q, &k, &v, heads, ranks).unwrap();
            assert_eq!(
                dense.data(),
                ulysses.data(),
                "ranks {ranks} heads {heads}: outputs differ"
            );
        }
    }

    #[test]
    fn first_all_to_all_repartitions_correctly() {
        let (q, k, v) = qkv(8, 16, 3);
        let shards = shard_sequence(&q, &k, &v, 2).unwrap();
        let by_heads = all_to_all_to_heads(&shards, 4).unwrap();
        assert_eq!(by_heads.len(), 2);
        // Each rank now sees the FULL sequence for half the heads.
        assert_eq!(by_heads[0].q.shape(), &[8, 8]);
        // Rank 0's first head_dim block equals the dense Q's head-0 columns.
        let head_dim = 4;
        for s in 0..8 {
            assert_eq!(
                &by_heads[0].q.data()[s * 8..s * 8 + head_dim],
                &q.data()[s * 16..s * 16 + head_dim],
            );
        }
        // Rank 1's first block equals dense head 2 (heads 2..4 go to rank 1).
        for s in 0..8 {
            assert_eq!(
                &by_heads[1].q.data()[s * 8..s * 8 + head_dim],
                &q.data()[s * 16 + 2 * head_dim..s * 16 + 3 * head_dim],
            );
        }
    }

    #[test]
    fn all_to_alls_are_inverse_permutations() {
        let (q, k, v) = qkv(8, 16, 5);
        let shards = shard_sequence(&q, &k, &v, 4).unwrap();
        let by_heads = all_to_all_to_heads(&shards, 4).unwrap();
        // Skip attention: route the Q tensors straight back.
        let qs: Vec<Tensor> = by_heads.iter().map(|s| s.q.clone()).collect();
        let back = all_to_all_to_sequence(&qs, 4).unwrap();
        let mut full = Vec::new();
        for t in &back {
            full.extend_from_slice(t.data());
        }
        assert_eq!(full, q.data());
    }

    #[test]
    fn indivisible_shapes_rejected() {
        let (q, k, v) = qkv(9, 16, 1);
        assert!(shard_sequence(&q, &k, &v, 2).is_err()); // 9 tokens / 2 ranks
        let (q, k, v) = qkv(8, 16, 1);
        let shards = shard_sequence(&q, &k, &v, 2).unwrap();
        assert!(all_to_all_to_heads(&shards, 3).is_err()); // 3 heads / 2 ranks
    }

    #[test]
    fn causality_preserved_under_partitioning() {
        // Changing a late token never affects early outputs, across shards.
        let (q, k, mut v) = qkv(8, 16, 11);
        let base = ulysses_attention(&q, &k, &v, 4, 2).unwrap();
        for x in v.data_mut()[7 * 16..].iter_mut() {
            *x += 100.0;
        }
        let changed = ulysses_attention(&q, &k, &v, 4, 2).unwrap();
        assert_eq!(&base.data()[..7 * 16], &changed.data()[..7 * 16]);
        assert_ne!(&base.data()[7 * 16..], &changed.data()[7 * 16..]);
    }
}
