//! Shared cost models: optimizer step times, compute kernels, framework
//! overheads.
//!
//! These are the building blocks every schedule builder (SuperOffload and
//! all baselines) uses, so that comparisons are apples-to-apples: the only
//! differences between systems are *placement and overlap decisions*, never
//! the underlying cost assumptions.

use llm_model::flops::TrainingFlops;
use superchip_sim::topology::ComputeDevice;
use superchip_sim::SimTime;

/// Bytes of memory traffic per parameter for a fused Adam step:
/// read grad(4) + read master(4) + read m(4) + read v(4) +
/// write master(4) + write m(4) + write v(4) + write fp16 out(2) = 30.
pub const ADAM_BYTES_PER_PARAM: u64 = 30;

/// Which Adam implementation performs the CPU optimizer step.
///
/// Efficiencies are fractions of the CPU's memory bandwidth that the
/// implementation sustains, calibrated to the paper's Table 3 latencies
/// (GraceAdam ≈ 0.082 s/B-param on a 500 GB/s Grace ⇒ ~68% of bandwidth;
/// CPU-Adam ≈ 1.24× slower; PyTorch native ≈ 3.2× slower). The
/// `PtCpuSingleThread` tier models optimizer steps issued per-FSDP-unit on
/// one thread, which is how FSDP-CPU-offload degrades in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OptimizerImpl {
    /// SVE-tiled, multithreaded (this work, §4.6).
    GraceAdam,
    /// DeepSpeed CPU-Adam (x86-oriented fused implementation).
    CpuAdam,
    /// Framework-native unfused CPU Adam ("PT-CPU").
    PtCpu,
    /// Framework-native Adam driven one shard at a time on a single thread.
    PtCpuSingleThread,
}

impl OptimizerImpl {
    /// Sustained fraction of CPU memory bandwidth.
    pub fn bandwidth_efficiency(self) -> f64 {
        match self {
            OptimizerImpl::GraceAdam => 0.68,
            OptimizerImpl::CpuAdam => 0.55,
            OptimizerImpl::PtCpu => 0.21,
            // Unfused scalar Adam driven one FSDP unit at a time from
            // Python on a single ARM core: calibrated so FSDP-CPU-offload
            // lands in the paper's "<15 TFLOPS" band (§5.2).
            OptimizerImpl::PtCpuSingleThread => 0.008,
        }
    }

    /// Time for one optimizer step over `params` parameters on `cpu`.
    pub fn step_time(self, cpu: &ComputeDevice, params: u64) -> SimTime {
        let bytes = params * ADAM_BYTES_PER_PARAM;
        SimTime::from_secs(bytes as f64 / (cpu.mem_bandwidth * self.bandwidth_efficiency()))
    }
}

/// Extra CPU memory traffic per parameter for the optimizer *pipeline*
/// around the Adam kernel: gradient unscaling, overflow scanning, FP16↔FP32
/// copy-out, and per-group dispatch — separate poorly-localized sweeps of
/// ~100 effective bytes/param. Calibrated so the all-techniques-off
/// configuration reproduces Table 2's 116 TFLOPS baseline (which the paper
/// notes "is close to the ZeRO-Offload throughput"). The same sweeps exist
/// in every CPU optimizer phase; what differs between systems is whether
/// they sit on the critical path (STE) or hide under backward (STV +
/// repartitioning).
pub fn pipeline_tax_bytes(optimizer: OptimizerImpl) -> u64 {
    match optimizer {
        // GraceAdam's tiled loop fuses the unscale and FP16 write-out
        // sweeps into the kernel pass (§4.6's "enhanced memory management").
        OptimizerImpl::GraceAdam => 80,
        _ => 100,
    }
}

/// Wall time of a full deployed CPU optimizer phase: the Adam kernel of
/// `optimizer` plus the surrounding pipeline sweeps. Schedule builders use
/// this; Table 3 microbenchmarks use [`OptimizerImpl::step_time`] (kernel
/// only).
pub fn pipeline_step_time(optimizer: OptimizerImpl, cpu: &ComputeDevice, params: u64) -> SimTime {
    optimizer.step_time(cpu, params)
        + SimTime::from_secs((params * pipeline_tax_bytes(optimizer)) as f64 / cpu.mem_bandwidth)
}

/// Time for a GPU-resident optimizer step over `params` parameters
/// (memory-bandwidth-bound on HBM).
pub fn gpu_optimizer_time(gpu: &ComputeDevice, params: u64) -> SimTime {
    let bytes = params * ADAM_BYTES_PER_PARAM;
    SimTime::from_secs(bytes as f64 / gpu.mem_bandwidth)
}

/// Fixed framework overhead charged per launched operation (kernel launch,
/// Python dispatch, stream synchronization). Offloading runtimes launch many
/// small ops per bucket; this term is what makes tiny buckets expensive even
/// on an infinite-bandwidth link.
pub const FRAMEWORK_OP_OVERHEAD: SimTime = SimTime::ZERO;

/// Per-op launch overhead in seconds for a well-tuned runtime.
pub const OP_OVERHEAD_TUNED: f64 = 30e-6;

/// Per-op launch overhead for a framework-default (Python-driven) runtime.
pub const OP_OVERHEAD_FRAMEWORK: f64 = 150e-6;

/// Splits one iteration's compute into forward and backward GPU times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeTimes {
    /// Forward time per micro-step.
    pub fwd_per_micro: SimTime,
    /// Backward (+ recompute, if checkpointing) time per micro-step.
    pub bwd_per_micro: SimTime,
    /// Number of micro-steps per iteration.
    pub micro_steps: u32,
}

impl ComputeTimes {
    /// Derives GPU compute times from a FLOP budget and an execution plan.
    pub fn new(gpu: &ComputeDevice, flops: &TrainingFlops, micro_steps: u32) -> Self {
        let per_micro = 1.0 / micro_steps as f64;
        ComputeTimes {
            fwd_per_micro: gpu.time_for_flops(flops.forward * per_micro),
            bwd_per_micro: gpu.time_for_flops((flops.backward + flops.recompute) * per_micro),
            micro_steps,
        }
    }

    /// Total compute time per iteration.
    pub fn total(&self) -> SimTime {
        (self.fwd_per_micro + self.bwd_per_micro) * self.micro_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    #[test]
    fn optimizer_tiers_are_ordered() {
        let cpu = presets::grace_cpu(480 * superchip_sim::GB);
        let n = 5_000_000_000u64;
        let grace = OptimizerImpl::GraceAdam.step_time(&cpu, n);
        let cpu_adam = OptimizerImpl::CpuAdam.step_time(&cpu, n);
        let pt = OptimizerImpl::PtCpu.step_time(&cpu, n);
        let pt1 = OptimizerImpl::PtCpuSingleThread.step_time(&cpu, n);
        assert!(grace < cpu_adam && cpu_adam < pt && pt < pt1);
    }

    #[test]
    fn grace_adam_matches_table3_scale() {
        // Table 3: GraceAdam takes 0.082 s for 1B parameters.
        let cpu = presets::grace_cpu(480 * superchip_sim::GB);
        let t = OptimizerImpl::GraceAdam
            .step_time(&cpu, 1_000_000_000)
            .as_secs();
        assert!((t - 0.082).abs() < 0.015, "got {t}");
        // And 0.608 s for 8B.
        let t8 = OptimizerImpl::GraceAdam
            .step_time(&cpu, 8_000_000_000)
            .as_secs();
        assert!((t8 - 0.608).abs() < 0.12, "got {t8}");
    }

    #[test]
    fn cpu_adam_ratio_matches_table3() {
        let cpu = presets::grace_cpu(480 * superchip_sim::GB);
        let ratio = OptimizerImpl::CpuAdam.step_time(&cpu, 1 << 30).as_secs()
            / OptimizerImpl::GraceAdam.step_time(&cpu, 1 << 30).as_secs();
        assert!((1.15..1.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pt_cpu_ratio_matches_table3() {
        let cpu = presets::grace_cpu(480 * superchip_sim::GB);
        let ratio = OptimizerImpl::PtCpu.step_time(&cpu, 1 << 30).as_secs()
            / OptimizerImpl::GraceAdam.step_time(&cpu, 1 << 30).as_secs();
        assert!((2.8..3.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gpu_optimizer_much_faster_than_cpu() {
        let chip = presets::gh200_chip();
        let n = 1_000_000_000u64;
        let gpu = gpu_optimizer_time(&chip.gpu, n);
        let cpu = OptimizerImpl::GraceAdam.step_time(&chip.cpu, n);
        assert!(cpu / gpu > 5.0);
    }

    #[test]
    fn compute_times_split_by_micro_steps() {
        let chip = presets::gh200_chip();
        let cfg = llm_model::ModelConfig::appendix_a_5b();
        let flops = TrainingFlops::for_iteration(&cfg, 8, 2048, false);
        let one = ComputeTimes::new(&chip.gpu, &flops, 1);
        let four = ComputeTimes::new(&chip.gpu, &flops, 4);
        assert!((one.total().as_secs() - four.total().as_secs()).abs() < 1e-9);
        assert!((four.fwd_per_micro.as_secs() - one.fwd_per_micro.as_secs() / 4.0).abs() < 1e-12);
        assert_eq!(one.bwd_per_micro, one.fwd_per_micro * 2.0);
    }

    #[test]
    fn checkpointing_inflates_backward_time_only() {
        let chip = presets::gh200_chip();
        let cfg = llm_model::ModelConfig::appendix_a_5b();
        let plain = TrainingFlops::for_iteration(&cfg, 8, 2048, false);
        let ckpt = TrainingFlops::for_iteration(&cfg, 8, 2048, true);
        let a = ComputeTimes::new(&chip.gpu, &plain, 1);
        let b = ComputeTimes::new(&chip.gpu, &ckpt, 1);
        assert_eq!(a.fwd_per_micro, b.fwd_per_micro);
        assert!(b.bwd_per_micro > a.bwd_per_micro);
    }
}
