//! The Superchip-Aware Dataflow Graph (SA-DFG, §4.1).
//!
//! Each vertex is a tensor operator annotated with its execution cost on
//! *both* the Hopper GPU and the Grace CPU; each edge carries the bytes that
//! would cross NVLink-C2C if its endpoints were placed on different devices.
//! An offloading strategy is a two-way partition of this graph. SuperOffload
//! evaluates partitions with an overlap-aware cost (devices and the two link
//! directions run concurrently) rather than the classic min-edge-cut, which
//! is exactly the shift the paper argues for: on a Superchip, cut *volume*
//! stops being the right objective.

use superchip_sim::topology::ChipSpec;
use superchip_sim::SimTime;

/// Where an operator executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Hopper GPU.
    Gpu,
    /// Grace CPU.
    Cpu,
}

/// Operator category (drives default placement heuristics and reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// Forward compute of a block.
    Forward,
    /// Backward compute of a block.
    Backward,
    /// Optimizer step of a bucket.
    OptimizerStep,
    /// Precision cast.
    Cast,
}

/// A vertex of the SA-DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// Name for reporting ("block3.bwd", "bucket2.step").
    pub name: String,
    /// Category.
    pub kind: OpKind,
    /// Execution time if placed on the GPU.
    pub gpu_time: SimTime,
    /// Execution time if placed on the CPU.
    pub cpu_time: SimTime,
}

/// A directed edge carrying `bytes` from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// The Superchip-aware dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct SaDfg {
    nodes: Vec<OpNode>,
    edges: Vec<OpEdge>,
}

/// Cost breakdown of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementCost {
    /// Total GPU busy time.
    pub gpu_busy: SimTime,
    /// Total CPU busy time.
    pub cpu_busy: SimTime,
    /// Total cross-device traffic time (both directions pooled).
    pub comm: SimTime,
    /// Bytes crossing the device boundary.
    pub cut_bytes: u64,
}

impl PlacementCost {
    /// Overlap-aware makespan lower bound: concurrent resources bound the
    /// iteration by the *busiest* of them.
    pub fn overlapped(&self) -> SimTime {
        self.gpu_busy.max(self.cpu_busy).max(self.comm)
    }

    /// Fully serialized cost (the pessimistic classic view).
    pub fn serialized(&self) -> SimTime {
        self.gpu_busy + self.cpu_busy + self.comm
    }
}

impl SaDfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: OpNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds an edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, bytes: u64) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "edge endpoint out of range"
        );
        self.edges.push(OpEdge { from, to, bytes });
    }

    /// The nodes.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[OpEdge] {
        &self.edges
    }

    /// Evaluates a placement (one device per node).
    ///
    /// # Panics
    /// Panics if `placement.len() != nodes.len()`.
    pub fn evaluate(&self, chip: &ChipSpec, placement: &[Device]) -> PlacementCost {
        assert_eq!(
            placement.len(),
            self.nodes.len(),
            "placement arity mismatch"
        );
        let mut gpu_busy = SimTime::ZERO;
        let mut cpu_busy = SimTime::ZERO;
        for (node, &dev) in self.nodes.iter().zip(placement) {
            match dev {
                Device::Gpu => gpu_busy += node.gpu_time,
                Device::Cpu => cpu_busy += node.cpu_time,
            }
        }
        let mut comm = SimTime::ZERO;
        let mut cut_bytes = 0u64;
        for e in &self.edges {
            if placement[e.from] != placement[e.to] {
                cut_bytes += e.bytes;
                comm += chip.c2c.transfer_time(e.bytes);
            }
        }
        PlacementCost {
            gpu_busy,
            cpu_busy,
            comm,
            cut_bytes,
        }
    }

    /// Greedy overlap-aware partitioner: start with everything on the GPU,
    /// then repeatedly move the single node that most reduces the overlapped
    /// cost, until no move helps. Returns the placement.
    pub fn partition(&self, chip: &ChipSpec) -> Vec<Device> {
        let mut placement = vec![Device::Gpu; self.nodes.len()];
        let mut best = self.evaluate(chip, &placement).overlapped();
        loop {
            let mut improved = false;
            for i in 0..self.nodes.len() {
                let original = placement[i];
                placement[i] = match original {
                    Device::Gpu => Device::Cpu,
                    Device::Cpu => Device::Gpu,
                };
                let cost = self.evaluate(chip, &placement).overlapped();
                if cost < best {
                    best = cost;
                    improved = true;
                } else {
                    placement[i] = original;
                }
            }
            if !improved {
                return placement;
            }
        }
    }

    /// Classic min-communication placement used by PCIe-era systems: move a
    /// node to the CPU only when doing so reduces cut bytes (starting from
    /// the conventional "optimizer on CPU" seed). Provided as the baseline
    /// objective the paper's partitioner replaces.
    pub fn partition_min_cut(&self) -> Vec<Device> {
        // Optimizer and adjacent casts to CPU, compute stays on GPU — the
        // greedy edge-cut described in §3 / ZeRO-Offload.
        self.nodes
            .iter()
            .map(|n| match n.kind {
                OpKind::OptimizerStep => Device::Cpu,
                _ => Device::Gpu,
            })
            .collect()
    }
}

/// Builds the canonical per-iteration SA-DFG for a model: per-layer forward
/// and backward chains, per-bucket optimizer steps fed by backward, and
/// parameter edges back into the next forward.
pub fn build_iteration_graph(
    chip: &ChipSpec,
    layers: u32,
    params_per_layer: u64,
    batch_tokens: u64,
) -> SaDfg {
    let mut g = SaDfg::new();
    // Compute times: 2·p·tokens forward FLOPs per layer, double for backward.
    let fwd_flops = 2.0 * params_per_layer as f64 * batch_tokens as f64;
    let mut fwd_ids = Vec::new();
    let mut bwd_ids = Vec::new();
    for l in 0..layers {
        let fwd = g.add_node(OpNode {
            name: format!("block{l}.fwd"),
            kind: OpKind::Forward,
            gpu_time: chip.gpu.time_for_flops(fwd_flops),
            cpu_time: chip.cpu.time_for_flops(fwd_flops),
        });
        fwd_ids.push(fwd);
        if l > 0 {
            g.add_edge(fwd_ids[l as usize - 1], fwd, 2 * batch_tokens * 4096);
        }
    }
    for l in (0..layers).rev() {
        let bwd = g.add_node(OpNode {
            name: format!("block{l}.bwd"),
            kind: OpKind::Backward,
            gpu_time: chip.gpu.time_for_flops(2.0 * fwd_flops),
            cpu_time: chip.cpu.time_for_flops(2.0 * fwd_flops),
        });
        g.add_edge(fwd_ids[l as usize], bwd, 2 * batch_tokens * 4096);
        bwd_ids.push(bwd);
    }
    // One optimizer step per layer-bucket, fed by that layer's backward.
    for (i, l) in (0..layers).rev().enumerate() {
        let opt_flops = 16.0 * params_per_layer as f64; // few FLOPs per param
        let step = g.add_node(OpNode {
            name: format!("block{l}.step"),
            kind: OpKind::OptimizerStep,
            // Optimizer is bandwidth-bound on both devices.
            gpu_time: crate::costs::gpu_optimizer_time(&chip.gpu, params_per_layer),
            cpu_time: crate::costs::OptimizerImpl::GraceAdam.step_time(&chip.cpu, params_per_layer),
        });
        let _ = opt_flops;
        g.add_edge(bwd_ids[i], step, 4 * params_per_layer); // fp32 grads
                                                            // Updated parameters feed the next iteration's forward.
        g.add_edge(step, fwd_ids[l as usize], 4 * params_per_layer);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    fn graph() -> (ChipSpec, SaDfg) {
        let chip = presets::gh200_chip();
        let g = build_iteration_graph(&chip, 8, 100_000_000, 8 * 2048);
        (chip, g)
    }

    #[test]
    fn graph_shape() {
        let (_, g) = graph();
        assert_eq!(g.nodes().len(), 8 * 3);
        assert!(!g.edges().is_empty());
    }

    #[test]
    fn all_gpu_placement_has_zero_cut() {
        let (chip, g) = graph();
        let cost = g.evaluate(&chip, &vec![Device::Gpu; g.nodes().len()]);
        assert_eq!(cost.cut_bytes, 0);
        assert_eq!(cost.cpu_busy, SimTime::ZERO);
        assert_eq!(cost.comm, SimTime::ZERO);
    }

    #[test]
    fn partitioner_offloads_optimizer_keeps_compute() {
        let (chip, g) = graph();
        let placement = g.partition(&chip);
        for (node, dev) in g.nodes().iter().zip(&placement) {
            match node.kind {
                OpKind::Forward | OpKind::Backward => {
                    assert_eq!(*dev, Device::Gpu, "{} should stay on GPU", node.name);
                }
                OpKind::OptimizerStep => {
                    assert_eq!(*dev, Device::Cpu, "{} should offload", node.name);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn overlap_objective_beats_or_ties_min_cut() {
        let (chip, g) = graph();
        let ours = g.evaluate(&chip, &g.partition(&chip)).overlapped();
        let classic = g.evaluate(&chip, &g.partition_min_cut()).overlapped();
        assert!(ours <= classic);
    }

    #[test]
    fn overlapped_cost_is_lower_bound_of_serialized() {
        let (chip, g) = graph();
        let placement = g.partition(&chip);
        let cost = g.evaluate(&chip, &placement);
        assert!(cost.overlapped() <= cost.serialized());
    }

    #[test]
    #[should_panic(expected = "placement arity")]
    fn placement_arity_checked() {
        let (chip, g) = graph();
        let _ = g.evaluate(&chip, &[Device::Gpu]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        let mut g = SaDfg::new();
        g.add_edge(0, 1, 10);
    }
}
