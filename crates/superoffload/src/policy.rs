//! Adaptive weight-stationary / weight-flow offloading (§4.2).
//!
//! Whether FP16 weights should live on the GPU (stationary) or stream from
//! CPU memory per layer (flow) depends on the workload: flow frees GPU
//! memory for activations but must hide `2Ψ` bytes of movement behind
//! `2·bsz·seq·Ψ` FLOPs of compute. The paper's Eq. 1–3 efficiency model
//! (Fig. 6) quantifies when that hiding succeeds; SuperOffload picks the
//! policy per workload and falls back to *partial* flow when only part of
//! the weights fit.

use llm_model::memory::{ActivationMemory, ModelStateMemory};
use llm_model::workload::Workload;
use superchip_sim::topology::ChipSpec;

/// Weight placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightPolicy {
    /// FP16 weights stay resident on the GPU (ZeRO-Offload style).
    Stationary,
    /// Weights stream from CPU memory; `resident_fraction` of them stay
    /// cached on the GPU (1.0 degenerates to stationary, 0.0 is full flow).
    Flow {
        /// Fraction of FP16 weights kept resident on the GPU, in `[0, 1]`.
        resident_fraction: f64,
    },
}

impl WeightPolicy {
    /// Full weight-flow (nothing resident).
    pub const FULL_FLOW: WeightPolicy = WeightPolicy::Flow {
        resident_fraction: 0.0,
    };

    /// Fraction of FP16 weights resident on the GPU under this policy.
    pub fn resident_fraction(self) -> f64 {
        match self {
            WeightPolicy::Stationary => 1.0,
            WeightPolicy::Flow { resident_fraction } => resident_fraction,
        }
    }

    /// Fraction of FP16 weights streamed over the link each pass.
    pub fn streamed_fraction(self) -> f64 {
        1.0 - self.resident_fraction()
    }
}

/// The paper's Eq. 1–3: efficiency of weight-flow training as a function of
/// batch size, sequence length, link bandwidth, and achievable compute.
///
/// `efficiency = comp / (comp + comm)` with `comp = 2·bsz·seq·Ψ / peak` and
/// `comm = 2·Ψ / bw`; Ψ cancels, so the result is model-size independent.
pub fn flow_efficiency(batch: u32, seq: u64, bw_bytes_per_sec: f64, peak_flops: f64) -> f64 {
    assert!(bw_bytes_per_sec > 0.0 && peak_flops > 0.0);
    let comp = 2.0 * batch as f64 * seq as f64 / peak_flops;
    let comm = 2.0 / bw_bytes_per_sec;
    comp / (comp + comm)
}

/// Efficiency threshold above which weight-flow is considered free (§4.2:
/// "should exceed 50% and ideally surpass 60%").
pub const FLOW_EFFICIENCY_TARGET: f64 = 0.6;

/// Chooses a weight policy for `workload` on `chip`.
///
/// Preference order:
/// 1. **Stationary** if FP16 weights *and* the un-checkpointed activations
///    of at least a micro-batch of 1 fit on the GPU alongside working
///    buffers.
/// 2. **Partial flow** otherwise: keep the largest weight fraction that
///    still leaves `activation_reserve` bytes free.
///
/// `gpu_reserved` is whatever the schedule already pinned on the GPU
/// (retained optimizer buckets, staging buffers).
pub fn choose_policy(chip: &ChipSpec, workload: &Workload, gpu_reserved: u64) -> WeightPolicy {
    let states = ModelStateMemory::for_config(&workload.config);
    let gpu_cap = chip.gpu.mem_bytes.saturating_sub(gpu_reserved);
    let min_act = ActivationMemory::checkpointed(&workload.config, 1, workload.seq).bytes;

    if states.fp16_params + states.fp16_grads + min_act <= gpu_cap {
        // Weights (and transient gradients) fit with room for activations.
        return WeightPolicy::Stationary;
    }
    // Partial flow: resident weights get whatever is left after the minimum
    // activation footprint and transient gradient buffers.
    let budget = gpu_cap.saturating_sub(min_act);
    let resident = (budget as f64 / (states.fp16_params + states.fp16_grads) as f64).min(1.0);
    WeightPolicy::Flow {
        resident_fraction: resident.max(0.0),
    }
}

/// Whether flow is *efficient* (not just necessary) for this workload —
/// used by the adaptive policy to prefer flow in long-sequence regimes even
/// when stationary would fit (frees GPU memory for activations, Fig. 12).
pub fn flow_is_efficient(chip: &ChipSpec, workload: &Workload) -> bool {
    flow_efficiency(
        workload.global_batch,
        workload.seq,
        chip.c2c.peak_bandwidth(),
        chip.gpu.achievable_flops(),
    ) >= FLOW_EFFICIENCY_TARGET
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    #[test]
    fn efficiency_matches_fig6_shape() {
        // Fig. 6: at 450 GB/s uni-directional and seq 1024, batch must be
        // >= 4 to exceed 60%. The figure is drawn against the hardware peak.
        let peak = presets::gh200_chip().gpu.peak_flops;
        let e1 = flow_efficiency(1, 1024, 450e9, peak);
        let e4 = flow_efficiency(4, 1024, 450e9, peak);
        let e16 = flow_efficiency(16, 1024, 450e9, peak);
        assert!(
            e1 < FLOW_EFFICIENCY_TARGET,
            "batch 1 should be inefficient: {e1}"
        );
        assert!(e4 >= 0.55, "batch 4 should be near/above target: {e4}");
        assert!(e16 > e4 && e4 > e1);
    }

    #[test]
    fn efficiency_increases_with_bandwidth() {
        let peak = 450e12;
        let lo = flow_efficiency(4, 1024, 32e9, peak);
        let hi = flow_efficiency(4, 1024, 450e9, peak);
        assert!(hi > lo);
    }

    #[test]
    fn efficiency_is_model_size_independent_by_construction() {
        // Eq. 1–3 cancel Ψ; the function doesn't even take it.
        let e = flow_efficiency(8, 2048, 450e9, 267e12);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn small_models_go_stationary() {
        let chip = presets::gh200_chip();
        let wl = Workload::new(ModelConfig::appendix_a_5b(), 8, 2048);
        assert_eq!(choose_policy(&chip, &wl, 0), WeightPolicy::Stationary);
    }

    #[test]
    fn huge_models_flow() {
        let chip = presets::gh200_chip();
        let wl = Workload::new(ModelConfig::by_name("25B").unwrap(), 8, 2048);
        match choose_policy(&chip, &wl, 0) {
            WeightPolicy::Flow { resident_fraction } => {
                assert!(resident_fraction < 1.0);
            }
            WeightPolicy::Stationary => panic!("25B cannot be weight-stationary on 96 GB"),
        }
    }

    #[test]
    fn long_sequences_force_flow_even_for_small_models() {
        // A 5B model at 256k tokens: activations evict the weights.
        let chip = presets::gh200_chip();
        let wl = Workload::new(ModelConfig::appendix_a_5b(), 1, 256 * 1024);
        let policy = choose_policy(&chip, &wl, 0);
        assert!(
            matches!(policy, WeightPolicy::Flow { .. }),
            "got {policy:?}"
        );
    }

    #[test]
    fn reserved_bytes_shrink_residency() {
        let chip = presets::gh200_chip();
        let wl = Workload::new(ModelConfig::by_name("20B").unwrap(), 8, 2048);
        let free = choose_policy(&chip, &wl, 0).resident_fraction();
        let reserved = choose_policy(&chip, &wl, 40 * superchip_sim::GB).resident_fraction();
        assert!(reserved <= free);
    }

    #[test]
    fn policy_fraction_accessors() {
        assert_eq!(WeightPolicy::Stationary.resident_fraction(), 1.0);
        assert_eq!(WeightPolicy::Stationary.streamed_fraction(), 0.0);
        assert_eq!(WeightPolicy::FULL_FLOW.streamed_fraction(), 1.0);
        let p = WeightPolicy::Flow {
            resident_fraction: 0.3,
        };
        assert!((p.streamed_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn long_seq_flow_is_efficient_on_c2c() {
        let chip = presets::gh200_chip();
        let wl = Workload::new(ModelConfig::by_name("13B").unwrap(), 1, 1 << 20);
        assert!(flow_is_efficient(&chip, &wl));
        // But not on PCIe at small batch/seq.
        let dgx = presets::dgx2_chip();
        let small = Workload::new(ModelConfig::appendix_a_5b(), 1, 1024);
        assert!(!flow_is_efficient(&dgx, &small));
    }
}
