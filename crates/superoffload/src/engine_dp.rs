//! Data-parallel speculation-then-validation — the numeric-plane
//! counterpart of the ZeRO-DP integration (§4.7).
//!
//! `ranks` model replicas each compute gradients over their slice of the
//! global batch on their own thread ("their GPU"); gradients FP16-round-trip
//! ("cross the C2C link") and reduce across ranks in a fixed tree order;
//! the flat parameter space is sharded so each rank speculatively steps
//! only its own 1/N slice ("its local Grace CPU") while a validator scans
//! concurrently; failed validation rolls every shard back in place; the
//! committed parameters broadcast to all replicas ("all-gather").
//!
//! [`DpStvEngine`] is asserted bit-identical to [`DpSyncEngine`] (same
//! reduction tree, synchronize-then-execute ordering) across overflow,
//! clipping, and recovery — the §4.4 exactness claim at data-parallel scale.

use grace_optim::adam::{AdamState, AdamStepper, GraceAdam};
use grace_optim::clip::{apply_clip, clip_factor};
use grace_optim::mixed_precision::LossScaler;
use grace_optim::rollback::RollbackGuard;
use llm_model::transformer::GptModel;
use tensorlite::cast::sum_of_squares;
use tensorlite::TensorError;

use crate::engine::{EngineConfig, Precision, Sample, StepOutcome, StvStats};

/// Splits `n` elements into `parts` contiguous shard ranges.
fn shard_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Per-rank gradients: forward/backward over the rank's batch slice on the
/// rank's replica, scaled by `scale / global_batch` and FP16-round-tripped.
fn rank_gradients(
    replica: &mut GptModel,
    rank_batch: &[Sample],
    scale: f32,
    global_batch: usize,
    precision: Precision,
) -> Result<(f64, Vec<f32>), TensorError> {
    replica.zero_grads();
    let mut loss_sum = 0.0f64;
    for (x, y) in rank_batch {
        loss_sum += replica.forward_backward(x, y)? as f64;
    }
    let factor = scale / global_batch as f32;
    let scaled: Vec<f32> = replica.grads().iter().map(|g| g * factor).collect();
    Ok((loss_sum, precision.roundtrip(&scaled)))
}

/// Computes per-rank gradients concurrently and reduces them in fixed rank
/// order (the deterministic "all-reduce tree" both engines share).
fn reduced_gradients(
    replicas: &mut [GptModel],
    batch: &[Sample],
    scale: f32,
    precision: Precision,
) -> Result<(f32, Vec<f32>), TensorError> {
    let ranks = replicas.len();
    assert_eq!(batch.len() % ranks, 0, "batch must divide across ranks");
    let per = batch.len() / ranks;
    let global = batch.len();

    let mut results: Vec<RankResult> = (0..ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((rank, replica), slot) in replicas.iter_mut().enumerate().zip(results.iter_mut()) {
            let chunk = &batch[rank * per..(rank + 1) * per];
            scope.spawn(move || {
                *slot = Some(rank_gradients(replica, chunk, scale, global, precision));
            });
        }
    });

    let mut loss = 0.0f64;
    let mut reduced: Option<Vec<f32>> = None;
    for slot in results {
        let (l, g) = slot.expect("rank executed")?;
        loss += l;
        reduced = Some(match reduced {
            None => g,
            Some(mut acc) => {
                for (a, b) in acc.iter_mut().zip(&g) {
                    *a += b;
                }
                acc
            }
        });
    }
    Ok((
        (loss / global as f64) as f32,
        reduced.expect("at least one rank"),
    ))
}

fn norm_from_partials(partials: &[f64]) -> f64 {
    partials.iter().sum::<f64>().sqrt()
}

/// Per-rank result slot: `(loss sum, reduced-precision gradients)`.
type RankResult = Option<Result<(f64, Vec<f32>), TensorError>>;

/// Shared state of both data-parallel engines.
#[derive(Debug)]
struct DpCore {
    replicas: Vec<GptModel>,
    state: AdamState,
    scaler: LossScaler,
    cfg: EngineConfig,
    step: u64,
    stats: StvStats,
}

impl DpCore {
    fn new(model: GptModel, ranks: usize, cfg: EngineConfig) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        let n = model.num_params();
        let replicas: Vec<GptModel> = (0..ranks).map(|_| model.clone()).collect();
        DpCore {
            replicas,
            state: AdamState::new(n),
            scaler: LossScaler::new(cfg.initial_loss_scale),
            cfg,
            step: 0,
            stats: StvStats::default(),
        }
    }

    /// Broadcasts replica 0's parameters to every other replica (the
    /// post-step all-gather).
    fn broadcast_params(&mut self) {
        let (canon, rest) = self.replicas.split_first_mut().expect("ranks >= 1");
        for replica in rest {
            replica.params_mut().copy_from_slice(canon.params());
        }
    }

    /// Steps shard `r` of replica 0's parameters with the shared Adam
    /// config — used by both engines so numerics are identical.
    fn step_shards(&mut self, grads: &[f32], step: u64) {
        let ranges = shard_ranges(grads.len(), self.replicas.len());
        let canon = self.replicas[0].params_mut();
        std::thread::scope(|scope| {
            let mut p_rest = canon;
            let mut m_rest = self.state.m.as_mut_slice();
            let mut v_rest = self.state.v.as_mut_slice();
            let mut taken = 0usize;
            for r in &ranges {
                let (p, pr) = p_rest.split_at_mut(r.end - taken);
                let (m, mr) = m_rest.split_at_mut(r.end - taken);
                let (v, vr) = v_rest.split_at_mut(r.end - taken);
                p_rest = pr;
                m_rest = mr;
                v_rest = vr;
                let g = &grads[r.clone()];
                let cfg = self.cfg.adam;
                taken = r.end;
                scope.spawn(move || {
                    let mut st = AdamState {
                        m: m.to_vec(),
                        v: v.to_vec(),
                    };
                    GraceAdam::new(4096, 1).step(&cfg, step, p, g, &mut st);
                    m.copy_from_slice(&st.m);
                    v.copy_from_slice(&st.v);
                });
            }
        });
    }
}

/// Synchronize-then-execute data-parallel reference engine.
#[derive(Debug)]
pub struct DpSyncEngine {
    core: DpCore,
}

impl DpSyncEngine {
    /// Creates `ranks` replicas of `model` under the STE discipline.
    pub fn new(model: GptModel, ranks: usize, cfg: EngineConfig) -> Self {
        DpSyncEngine {
            core: DpCore::new(model, ranks, cfg),
        }
    }

    /// Canonical (rank-0) model.
    pub fn model(&self) -> &GptModel {
        &self.core.replicas[0]
    }

    /// Run statistics.
    pub fn stats(&self) -> StvStats {
        self.core.stats
    }

    /// One synchronous data-parallel step over `batch` (length must divide
    /// by the rank count).
    ///
    /// # Errors
    /// Propagates [`TensorError`] from forward/backward.
    pub fn train_step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let scale = self.core.scaler.scale();
        let (loss, mut grads) = reduced_gradients(
            &mut self.core.replicas,
            batch,
            scale,
            self.core.cfg.precision,
        )?;

        let overflow = grads.iter().any(|g| !g.is_finite());
        if overflow {
            self.core.scaler.update_with(true);
            self.core.stats.skipped += 1;
            // Replicas stayed identical (no step); nothing to broadcast.
            return Ok(StepOutcome::Skipped { loss });
        }
        self.core.scaler.update_with(false);

        let inv = 1.0 / scale;
        for g in &mut grads {
            *g *= inv;
        }
        let ranges = shard_ranges(grads.len(), self.core.replicas.len());
        let partials: Vec<f64> = ranges
            .iter()
            .map(|r| sum_of_squares(&grads[r.clone()]))
            .collect();
        let norm = norm_from_partials(&partials);
        let factor = clip_factor(norm, self.core.cfg.max_grad_norm);
        apply_clip(&mut grads, factor);

        self.core.step += 1;
        let step = self.core.step;
        self.core.step_shards(&grads, step);
        self.core.broadcast_params();
        self.core.stats.steps += 1;
        if factor < 1.0 {
            self.core.stats.clip_rollbacks += 1;
            Ok(StepOutcome::Clipped {
                loss,
                grad_norm: norm,
            })
        } else {
            Ok(StepOutcome::Applied {
                loss,
                grad_norm: norm,
            })
        }
    }
}

/// Speculation-then-validation data-parallel engine.
#[derive(Debug)]
pub struct DpStvEngine {
    core: DpCore,
}

impl DpStvEngine {
    /// Creates `ranks` replicas of `model` under the STV discipline.
    pub fn new(model: GptModel, ranks: usize, cfg: EngineConfig) -> Self {
        DpStvEngine {
            core: DpCore::new(model, ranks, cfg),
        }
    }

    /// Canonical (rank-0) model.
    pub fn model(&self) -> &GptModel {
        &self.core.replicas[0]
    }

    /// All replicas (for replica-consistency assertions).
    pub fn replicas(&self) -> &[GptModel] {
        &self.core.replicas
    }

    /// Run statistics.
    pub fn stats(&self) -> StvStats {
        self.core.stats
    }

    /// One speculative data-parallel step: every rank's shard steps before
    /// validation completes; violations roll all shards back.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from forward/backward.
    pub fn train_step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let scale = self.core.scaler.scale();
        let (loss, mut grads) = reduced_gradients(
            &mut self.core.replicas,
            batch,
            scale,
            self.core.cfg.precision,
        )?;
        let n = grads.len();
        let ranges = shard_ranges(n, self.core.replicas.len());
        let speculative_step = self.core.step + 1;

        // Guards for every shard, then unscale (same elementwise op as STE).
        let guards: Vec<RollbackGuard> = ranges
            .iter()
            .map(|r| {
                RollbackGuard::capture(
                    self.core.replicas[0].params(),
                    &self.core.state,
                    r.start,
                    r.len(),
                )
            })
            .collect();
        let inv = 1.0 / scale;
        for g in &mut grads {
            *g *= inv;
        }

        // Validator partials computed concurrently with the speculative
        // shard steps (scaled-domain overflow check + unscaled norms).
        let mut verdicts: Vec<(bool, f64)> = vec![(false, 0.0); ranges.len()];
        {
            let grads_ref: &[f32] = &grads;
            let ranges_ref = &ranges;
            let verdicts_ref = &mut verdicts;
            let core = &mut self.core;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for (v, r) in verdicts_ref.iter_mut().zip(ranges_ref) {
                        let bucket = &grads_ref[r.clone()];
                        let overflow = bucket.iter().any(|g| !g.is_finite());
                        *v = (overflow, sum_of_squares(bucket));
                    }
                });
                core.step_shards(grads_ref, speculative_step);
            });
        }

        let overflow = verdicts.iter().any(|&(o, _)| o);
        let partials: Vec<f64> = verdicts.iter().map(|&(_, s)| s).collect();
        let norm = norm_from_partials(&partials);

        if overflow {
            for g in &guards {
                g.restore(self.core.replicas[0].params_mut(), &mut self.core.state);
            }
            // Replicas were never touched (only rank 0's canonical copy is
            // stepped before broadcast), so no further repair is needed.
            self.core.scaler.update_with(true);
            self.core.stats.skipped += 1;
            return Ok(StepOutcome::Skipped { loss });
        }
        self.core.scaler.update_with(false);

        let factor = clip_factor(norm, self.core.cfg.max_grad_norm);
        if factor < 1.0 {
            for g in &guards {
                g.restore(self.core.replicas[0].params_mut(), &mut self.core.state);
            }
            apply_clip(&mut grads, factor);
            self.core.step_shards(&grads, speculative_step);
            self.core.step = speculative_step;
            self.core.broadcast_params();
            self.core.stats.steps += 1;
            self.core.stats.clip_rollbacks += 1;
            return Ok(StepOutcome::Clipped {
                loss,
                grad_norm: norm,
            });
        }

        self.core.step = speculative_step;
        self.core.broadcast_params();
        self.core.stats.steps += 1;
        Ok(StepOutcome::Applied {
            loss,
            grad_norm: norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::transformer::GptConfig;
    use llm_model::SyntheticPile;

    fn tiny() -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 41,
                hidden: 16,
                layers: 2,
                heads: 2,
                max_seq: 16,
            },
            77,
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            max_grad_norm: 2.0,
            buckets: 4,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn dp_stv_is_bit_identical_to_dp_sync() {
        for ranks in [1usize, 2, 4] {
            let mut stv = DpStvEngine::new(tiny(), ranks, cfg());
            let mut sync = DpSyncEngine::new(tiny(), ranks, cfg());
            let mut pile = SyntheticPile::new(41, 3);
            for it in 0..15 {
                let batch = pile.next_batch(4, 12);
                let a = stv.train_step(&batch).unwrap();
                let b = sync.train_step(&batch).unwrap();
                assert_eq!(a.rolled_back(), b.rolled_back(), "ranks {ranks} iter {it}");
                assert_eq!(
                    stv.model().params(),
                    sync.model().params(),
                    "ranks {ranks} iter {it}: divergence"
                );
            }
            assert!(stv.stats().steps > 0);
        }
    }

    #[test]
    fn replicas_stay_consistent_after_every_step() {
        let mut stv = DpStvEngine::new(tiny(), 3, cfg());
        let mut pile = SyntheticPile::new(41, 9);
        for _ in 0..10 {
            let batch = pile.next_batch(3, 12);
            stv.train_step(&batch).unwrap();
            let canon = stv.replicas()[0].params();
            for (r, replica) in stv.replicas().iter().enumerate() {
                assert_eq!(replica.params(), canon, "replica {r} diverged");
            }
        }
    }

    #[test]
    fn exact_through_dp_clipping_and_overflow() {
        let hard = EngineConfig {
            max_grad_norm: 0.05,
            initial_loss_scale: 1e9,
            ..EngineConfig::default()
        };
        let mut stv = DpStvEngine::new(tiny(), 2, hard);
        let mut sync = DpSyncEngine::new(tiny(), 2, hard);
        let mut pile = SyntheticPile::new(41, 21);
        for _ in 0..30 {
            let batch = pile.next_batch(2, 12);
            stv.train_step(&batch).unwrap();
            sync.train_step(&batch).unwrap();
            assert_eq!(stv.model().params(), sync.model().params());
        }
        assert!(stv.stats().skipped > 0, "overflow path not exercised");
        assert!(stv.stats().clip_rollbacks > 0, "clip path not exercised");
        assert_eq!(stv.stats(), sync.stats());
    }

    #[test]
    fn single_rank_matches_the_single_engine() {
        use crate::engine::StvEngine;
        // Clipping disabled: the two engines compute the global norm over
        // different partial trees (ranks vs buckets), so a triggered clip
        // factor could differ in the last ulp; everything else is identical.
        let no_clip = EngineConfig {
            max_grad_norm: 1e9,
            ..cfg()
        };
        let mut dp = DpStvEngine::new(tiny(), 1, no_clip);
        let mut single = StvEngine::new(tiny(), no_clip);
        let mut pile = SyntheticPile::new(41, 13);
        for _ in 0..10 {
            let batch = pile.next_batch(2, 12);
            dp.train_step(&batch).unwrap();
            single.train_step(&batch).unwrap();
            assert_eq!(dp.model().params(), single.model().params());
        }
    }

    #[test]
    fn dp_training_reduces_loss() {
        let mut dp = DpStvEngine::new(tiny(), 2, cfg());
        let mut pile = SyntheticPile::new(41, 5);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for it in 0..60 {
            let batch = pile.next_batch(4, 12);
            let out = dp.train_step(&batch).unwrap();
            if it == 0 {
                first = out.loss();
            }
            last = out.loss();
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "batch must divide")]
    fn indivisible_batch_rejected() {
        let mut dp = DpStvEngine::new(tiny(), 2, cfg());
        let mut pile = SyntheticPile::new(41, 1);
        let batch = pile.next_batch(3, 8);
        let _ = dp.train_step(&batch);
    }
}
