//! The schedule framework: a uniform interface over every training system.
//!
//! Each comparison system of the paper's evaluation (§5.1, Fig. 10–13) is a
//! schedule builder that turns a `(cluster, ranks, workload)` triple into a
//! task graph on the discrete-event simulator. This module captures what
//! they share so that adding a tenth system is a single-file change:
//!
//! - [`OffloadSystem`] — the trait every system implements: a name plus
//!   `simulate_traced`, returning either a feasible `(TrainReport, Trace)`
//!   or a structured [`Infeasible`] reason (instead of an opaque "OOM").
//! - [`Infeasible`] — the typed infeasibility taxonomy shared by every
//!   builder's capacity planner, batch splitter, and simulator run.
//! - [`SystemRegistry`] — name → boxed system, so experiment drivers
//!   iterate systems instead of hand-listing them.
//! - [`ScheduleCtx`] / [`IterationBuilder`] — the shared toolkit: standard
//!   resource registration, per-micro-step forward tasks, bucketized
//!   backward chunks with fractional timing, collective wrappers, iteration
//!   gates, and report finalization.
//! - [`Capacity`] and [`split_batch`] — the capacity checks and batch
//!   division every builder performs before constructing its graph.
//!
//! Constructing an infeasible [`TrainReport`] is confined to this module
//! (the blanket [`OffloadSystem::simulate`] adapter); schedule builders
//! themselves only ever return typed errors.

use std::fmt;

use llm_model::workload::{ExecutionPlan, Workload};
use superchip_sim::collective::CollectiveCost;
use superchip_sim::prelude::*;

use crate::bucket::BucketPlan;
use crate::report::{RunProfile, TrainReport};
use crate::schedule::{
    finalize_report, simulate_single_chip_profiled, simulate_single_chip_traced,
    SuperOffloadOptions, CPU_USABLE, GPU_USABLE,
};
use crate::zero_dp;

/// Why a workload cannot run on a system, in machine-readable form.
///
/// Every schedule builder reports its capacity-planning and simulation
/// failures through this enum, so experiment drivers (e.g. the Fig. 13
/// capacity table) can explain *why* a cell is infeasible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Infeasible {
    /// Resident GPU bytes exceed the usable GPU memory.
    GpuCapacity {
        /// Bytes the plan must keep GPU-resident.
        needed: u64,
        /// Usable GPU capacity in bytes.
        cap: u64,
    },
    /// Resident CPU bytes exceed the usable CPU (host) memory.
    CpuCapacity {
        /// Bytes the plan must keep CPU-resident.
        needed: u64,
        /// Usable CPU capacity in bytes.
        cap: u64,
    },
    /// Offloaded state exceeds the NVMe tier's capacity.
    NvmeCapacity {
        /// Bytes the plan must spill to NVMe.
        needed: u64,
        /// NVMe capacity in bytes.
        cap: u64,
    },
    /// The global batch does not divide across the data-parallel ranks.
    BatchNotDivisible {
        /// Global batch size requested.
        global_batch: u32,
        /// Data-parallel ranks it must divide across.
        ranks: u32,
    },
    /// No micro-batch/accumulation/checkpointing combination fits the
    /// activation budget.
    NoExecutionPlan {
        /// Activation budget (bytes) the planner had to work with.
        activation_budget: u64,
    },
    /// The requested parallelism degree is invalid for the cluster or model
    /// (e.g. more pipeline stages than layers).
    Parallelism(String),
    /// A collective must span more ranks than the inter-node fabric
    /// connects, so its traffic has no link to run over (reported by
    /// [`crate::fleet::NodeLease::collective`] instead of panicking in
    /// `ClusterSpec::collective_link`).
    FabricCapacity {
        /// Ranks the collective must span.
        ranks: u32,
        /// GPU endpoints the fleet's fabric actually connects.
        fleet_gpus: u32,
    },
    /// The task-graph simulation itself failed.
    Sim(SimError),
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        match self {
            Infeasible::GpuCapacity { needed, cap } => write!(
                f,
                "GPU capacity: needs {:.1} GiB resident, {:.1} GiB usable",
                gib(*needed),
                gib(*cap)
            ),
            Infeasible::CpuCapacity { needed, cap } => write!(
                f,
                "CPU capacity: needs {:.1} GiB resident, {:.1} GiB usable",
                gib(*needed),
                gib(*cap)
            ),
            Infeasible::NvmeCapacity { needed, cap } => write!(
                f,
                "NVMe capacity: needs {:.1} GiB, {:.1} GiB available",
                gib(*needed),
                gib(*cap)
            ),
            Infeasible::BatchNotDivisible {
                global_batch,
                ranks,
            } => write!(
                f,
                "global batch {global_batch} does not divide across {ranks} ranks"
            ),
            Infeasible::NoExecutionPlan { activation_budget } => write!(
                f,
                "no execution plan fits the {:.1} GiB activation budget",
                gib(*activation_budget)
            ),
            Infeasible::Parallelism(why) => write!(f, "invalid parallelism: {why}"),
            Infeasible::FabricCapacity { ranks, fleet_gpus } => write!(
                f,
                "collective spans {ranks} ranks but the fabric connects only \
                 {fleet_gpus} GPU endpoints"
            ),
            Infeasible::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl From<SimError> for Infeasible {
    fn from(e: SimError) -> Self {
        Infeasible::Sim(e)
    }
}

/// A training system that can be simulated on a cluster.
///
/// Implementations build a per-iteration task graph (usually via
/// [`ScheduleCtx`]) and report steady-state throughput. The blanket
/// [`simulate`](OffloadSystem::simulate) adapter collapses the typed error
/// into the legacy infeasible [`TrainReport`] for display-oriented callers.
pub trait OffloadSystem {
    /// Stable system name ("superoffload", "zero-offload", ...).
    fn name(&self) -> &str;

    /// Simulates `ranks` ranks of `cluster` training `workload`, returning
    /// the steady-state report and the execution trace, or a structured
    /// reason the workload cannot run.
    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible>;

    /// Like [`simulate_traced`](OffloadSystem::simulate_traced), but
    /// collapses any [`Infeasible`] into `TrainReport::oom` and drops the
    /// trace.
    fn simulate(&self, cluster: &ClusterSpec, ranks: u32, workload: &Workload) -> TrainReport {
        match self.simulate_traced(cluster, ranks, workload) {
            Ok((report, _trace)) => report,
            Err(_) => TrainReport::oom(self.name()),
        }
    }

    /// Simulates like [`simulate_traced`](OffloadSystem::simulate_traced)
    /// but returns the full [`RunProfile`]: report, trace, and telemetry.
    ///
    /// The default derives trace-level telemetry after the fact
    /// ([`RunProfile::from_trace`]); systems whose builders thread a
    /// recorder through the run (e.g. SuperOffload's single-chip schedule)
    /// override this to return the richer in-run metrics.
    fn simulate_profiled(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<RunProfile, Infeasible> {
        self.simulate_traced(cluster, ranks, workload)
            .map(|(report, trace)| RunProfile::from_trace(report, trace))
    }
}

/// Name-indexed collection of boxed [`OffloadSystem`]s, preserving
/// registration order (experiment tables print in this order).
#[derive(Default)]
pub struct SystemRegistry {
    systems: Vec<Box<dyn OffloadSystem>>,
}

impl fmt::Debug for SystemRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemRegistry")
            .field("systems", &self.names())
            .finish()
    }
}

impl SystemRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SystemRegistry::default()
    }

    /// Adds a system. Panics if the name is already registered (names are
    /// the lookup key).
    pub fn register(&mut self, system: impl OffloadSystem + 'static) {
        assert!(
            self.get(system.name()).is_none(),
            "system `{}` registered twice",
            system.name()
        );
        self.systems.push(Box::new(system));
    }

    /// Looks a system up by name.
    pub fn get(&self, name: &str) -> Option<&dyn OffloadSystem> {
        self.systems
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// Like [`get`](SystemRegistry::get), panicking with a helpful message
    /// when the name is unknown.
    pub fn expect(&self, name: &str) -> &dyn OffloadSystem {
        self.get(name).unwrap_or_else(|| {
            panic!(
                "system `{name}` not registered (have: {})",
                self.names().join(", ")
            )
        })
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.systems.iter().map(|s| s.name()).collect()
    }

    /// Iterates systems in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn OffloadSystem> {
        self.systems.iter().map(|s| s.as_ref())
    }

    /// Number of registered systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }
}

/// Usable memory capacities of one Superchip, after reserving the framework
/// and OS shares ([`GPU_USABLE`], [`CPU_USABLE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    /// Usable GPU bytes.
    pub gpu: u64,
    /// Usable CPU bytes.
    pub cpu: u64,
}

impl Capacity {
    /// Usable capacities of `chip`.
    pub fn of(chip: &ChipSpec) -> Self {
        Capacity {
            gpu: (chip.gpu.mem_bytes as f64 * GPU_USABLE) as u64,
            cpu: (chip.cpu.mem_bytes as f64 * CPU_USABLE) as u64,
        }
    }

    /// Checks that `needed` GPU-resident bytes fit.
    pub fn fit_gpu(&self, needed: u64) -> Result<(), Infeasible> {
        if needed > self.gpu {
            Err(Infeasible::GpuCapacity {
                needed,
                cap: self.gpu,
            })
        } else {
            Ok(())
        }
    }

    /// Checks that `needed` CPU-resident bytes fit.
    pub fn fit_cpu(&self, needed: u64) -> Result<(), Infeasible> {
        if needed > self.cpu {
            Err(Infeasible::CpuCapacity {
                needed,
                cap: self.cpu,
            })
        } else {
            Ok(())
        }
    }

    /// Picks the best execution plan for `workload` with `gpu_resident`
    /// bytes already committed on the GPU (the remainder is the activation
    /// budget).
    pub fn plan(
        &self,
        workload: &Workload,
        gpu_resident: u64,
    ) -> Result<ExecutionPlan, Infeasible> {
        self.fit_gpu(gpu_resident)?;
        let budget = self.gpu - gpu_resident;
        ExecutionPlan::best(workload, budget).ok_or(Infeasible::NoExecutionPlan {
            activation_budget: budget,
        })
    }
}

/// Collapses a traced result into the legacy report form, turning any
/// [`Infeasible`] into `TrainReport::oom(system)`.
///
/// This adapter (and [`OffloadSystem::simulate`]) are the only places an
/// infeasible report is constructed; schedule builders return typed errors.
pub fn collapse(result: Result<(TrainReport, Trace), Infeasible>, system: &str) -> TrainReport {
    match result {
        Ok((report, _trace)) => report,
        Err(_) => TrainReport::oom(system),
    }
}

/// Splits a global-batch workload evenly across `ranks` data-parallel
/// ranks, or reports [`Infeasible::BatchNotDivisible`].
pub fn split_batch(workload: &Workload, ranks: u32) -> Result<Workload, Infeasible> {
    if ranks == 0 || !workload.global_batch.is_multiple_of(ranks) {
        return Err(Infeasible::BatchNotDivisible {
            global_batch: workload.global_batch,
            ranks,
        });
    }
    Ok(Workload::new(
        workload.config.clone(),
        workload.global_batch / ranks,
        workload.seq,
    ))
}

/// Resource names every [`ScheduleCtx::standard`] context registers, in
/// registration (tid) order — pass to
/// [`superchip_sim::chrome_trace::to_chrome_trace`].
pub const STANDARD_RESOURCES: [&str; 5] = ["gpu", "cpu", "c2c-d2h", "c2c-h2d", "fabric"];

/// A memory pool registered for post-run occupancy replay.
#[derive(Debug)]
struct PlannedPool {
    name: String,
    capacity: u64,
    /// Statically-resident bytes, allocated at time zero.
    base: u64,
}

/// A dynamic allocation whose lifetime is bracketed by task completions.
#[derive(Debug)]
struct TrackedAlloc {
    pool: usize,
    bytes: u64,
    /// The allocation materializes when this task completes.
    alloc_after: TaskId,
    /// Freed when this task completes (`None` = held until the end).
    free_after: Option<TaskId>,
}

/// A transfer task annotated with the link and payload that shaped it.
#[derive(Debug)]
struct TrackedTransfer {
    task: TaskId,
    link: Link,
    bytes: u64,
}

/// A simulator pre-wired with the standard Superchip resources, plus the
/// shared task-graph motifs of the schedule builders.
#[derive(Debug)]
pub struct ScheduleCtx {
    /// The underlying simulator (builders add custom tasks directly).
    pub sim: Simulator,
    /// GPU compute stream.
    pub gpu: ResourceId,
    /// CPU optimizer stream.
    pub cpu: ResourceId,
    /// Device-to-host C2C channel.
    pub d2h: ResourceId,
    /// Host-to-device C2C channel.
    pub h2d: ResourceId,
    /// Inter-node fabric (collectives).
    pub net: ResourceId,
    pools: Vec<PlannedPool>,
    allocs: Vec<TrackedAlloc>,
    xfers: Vec<TrackedTransfer>,
}

impl ScheduleCtx {
    /// A fresh context with the five [`STANDARD_RESOURCES`] registered in
    /// node 0's (bare-name) namespace.
    pub fn standard() -> Self {
        ScheduleCtx::for_node(0)
    }

    /// A fresh context whose five [`STANDARD_RESOURCES`] live in node
    /// `node`'s namespace. Node 0 keeps the bare names, so single-node
    /// schedules produce byte-identical traces and reports to the
    /// pre-fleet layout; nodes 1+ get `node<N>/`-prefixed resources.
    pub fn for_node(node: u32) -> Self {
        let mut sim = Simulator::new();
        let gpu = sim.add_node_resource(node, STANDARD_RESOURCES[0]);
        let cpu = sim.add_node_resource(node, STANDARD_RESOURCES[1]);
        let d2h = sim.add_node_resource(node, STANDARD_RESOURCES[2]);
        let h2d = sim.add_node_resource(node, STANDARD_RESOURCES[3]);
        let net = sim.add_node_resource(node, STANDARD_RESOURCES[4]);
        ScheduleCtx {
            sim,
            gpu,
            cpu,
            d2h,
            h2d,
            net,
            pools: Vec::new(),
            allocs: Vec::new(),
            xfers: Vec::new(),
        }
    }

    /// Registers a memory pool for occupancy telemetry: `base` bytes are
    /// allocated at time zero, and [`track_alloc`](ScheduleCtx::track_alloc)
    /// adds dynamic allocations on top. Returns a handle for `track_alloc`.
    pub fn add_pool(&mut self, name: impl Into<String>, capacity: u64, base: u64) -> usize {
        self.pools.push(PlannedPool {
            name: name.into(),
            capacity,
            base,
        });
        self.pools.len() - 1
    }

    /// Registers the two standard pools of a Superchip — `hbm` (GPU) and
    /// `ddr` (CPU) — with the builder's planned resident bytes as base
    /// occupancy. Returns `(hbm, ddr)` handles.
    pub fn plan_residency(
        &mut self,
        chip: &ChipSpec,
        gpu_resident: u64,
        cpu_resident: u64,
    ) -> (usize, usize) {
        let hbm = self.add_pool("hbm", chip.gpu.mem_bytes, gpu_resident);
        let ddr = self.add_pool("ddr", chip.cpu.mem_bytes, cpu_resident);
        (hbm, ddr)
    }

    /// Tracks a dynamic allocation in `pool`: `bytes` materialize when
    /// `alloc_after` completes and are freed when `free_after` completes
    /// (or held until the end of the run when `None`).
    pub fn track_alloc(
        &mut self,
        pool: usize,
        bytes: u64,
        alloc_after: TaskId,
        free_after: Option<TaskId>,
    ) {
        self.allocs.push(TrackedAlloc {
            pool,
            bytes,
            alloc_after,
            free_after,
        });
    }

    /// Annotates transfer task `task` with the link it crosses and its
    /// payload, so [`finish_profiled`](ScheduleCtx::finish_profiled) can
    /// report per-transfer effective bandwidth.
    pub fn track_transfer(&mut self, task: TaskId, link: &Link, bytes: u64) {
        self.xfers.push(TrackedTransfer {
            task,
            link: *link,
            bytes,
        });
    }

    /// Registers an extra, system-specific resource (e.g. `nvme`,
    /// `cpu-validator`).
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.sim.add_resource(name)
    }

    /// Adds one micro-step's forward pass on the GPU.
    pub fn forward(
        &mut self,
        time: SimTime,
        deps: impl IntoIterator<Item = TaskId>,
    ) -> Result<TaskId, SimError> {
        self.sim.add_task(
            TaskSpec::compute(self.gpu, time)
                .with_label("fwd")
                .after_all(deps),
        )
    }

    /// Adds the bucketized backward pass of one micro-step: one GPU chunk
    /// per bucket, timed as the bucket's fraction of `bwd_per_micro` (plus
    /// `overhead`), chained after `start` (and `extra_dep`, if any).
    ///
    /// `on_chunk(ctx, bucket, elems, chunk)` runs after each chunk so the
    /// builder can attach gradient movement; the returned id is the last
    /// chunk (the end of this micro-step's backward).
    pub fn backward_chunks<F>(
        &mut self,
        buckets: &BucketPlan,
        bwd_per_micro: SimTime,
        overhead: SimTime,
        start: TaskId,
        extra_dep: Option<TaskId>,
        mut on_chunk: F,
    ) -> Result<TaskId, SimError>
    where
        F: FnMut(&mut Self, u32, u64, TaskId) -> Result<(), SimError>,
    {
        let total = buckets.total_elems;
        let mut prev = start;
        for bi in 0..buckets.num_buckets {
            let elems = buckets.bucket_elems(bi);
            let frac = elems as f64 / total as f64;
            let mut spec = TaskSpec::compute(self.gpu, bwd_per_micro * frac + overhead)
                .with_label(format!("bwd[{bi}]"))
                .after(prev);
            if let Some(d) = extra_dep {
                spec = spec.after(d);
            }
            let chunk = self.sim.add_task(spec)?;
            prev = chunk;
            on_chunk(self, bi, elems, chunk)?;
        }
        Ok(prev)
    }

    /// Adds a reduce-scatter collective on the fabric.
    pub fn reduce_scatter(
        &mut self,
        coll: &CollectiveCost,
        bytes: u64,
        overhead: SimTime,
        label: impl Into<String>,
        after: TaskId,
    ) -> Result<TaskId, SimError> {
        self.sim.add_task(
            TaskSpec::collective(self.net, coll.reduce_scatter(bytes) + overhead)
                .with_label(label)
                .after(after),
        )
    }

    /// Adds an all-gather collective on the fabric.
    pub fn all_gather(
        &mut self,
        coll: &CollectiveCost,
        bytes_per_rank: u64,
        overhead: SimTime,
        label: impl Into<String>,
        after: TaskId,
    ) -> Result<TaskId, SimError> {
        self.sim.add_task(
            TaskSpec::collective(self.net, coll.all_gather(bytes_per_rank) + overhead)
                .with_label(label)
                .after(after),
        )
    }

    /// Adds an all-reduce collective on the fabric.
    pub fn all_reduce(
        &mut self,
        coll: &CollectiveCost,
        bytes: u64,
        overhead: SimTime,
        label: impl Into<String>,
        after: TaskId,
    ) -> Result<TaskId, SimError> {
        self.sim.add_task(
            TaskSpec::collective(self.net, coll.all_reduce(bytes) + overhead)
                .with_label(label)
                .after(after),
        )
    }

    /// Runs the simulation and extracts the steady-state report between the
    /// first and last iteration gates (see
    /// [`finalize_report`](crate::schedule::finalize_report)).
    pub fn finish(
        self,
        system: &str,
        gates: &[TaskId],
        effective_flops: f64,
        chip: &ChipSpec,
        plan: ExecutionPlan,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        self.finish_profiled(system, gates, effective_flops, chip, plan)
            .map(|p| (p.report, p.trace))
    }

    /// Like [`finish`](ScheduleCtx::finish), but returns the full
    /// [`RunProfile`] with in-run telemetry:
    ///
    /// - scheduler counters and queue-wait samples from the instrumented
    ///   simulator run,
    /// - per-transfer effective bandwidth (`bw:`/`bytes:`/`transfers:`
    ///   tracks) for every [`track_transfer`](ScheduleCtx::track_transfer)ed
    ///   task,
    /// - memory occupancy timelines (`mem:`/`peak-bytes:` per pool) replayed
    ///   from [`track_alloc`](ScheduleCtx::track_alloc) against the executed
    ///   schedule, with the resulting high-water marks folded into
    ///   `report.peaks`.
    ///
    /// Allocations that would not fit their pool during replay are dropped
    /// and counted under `telemetry.dropped-allocs` rather than failing the
    /// run (the capacity planner, not telemetry, owns OOM decisions).
    pub fn finish_profiled(
        mut self,
        system: &str,
        gates: &[TaskId],
        effective_flops: f64,
        chip: &ChipSpec,
        plan: ExecutionPlan,
    ) -> Result<RunProfile, Infeasible> {
        let mut metrics = MetricsRecorder::new();
        let trace = self.sim.run_instrumented(&mut metrics)?;

        for t in &self.xfers {
            if let Some(iv) = trace.interval(t.task) {
                let track = trace.resource_names()[iv.resource.index()].clone();
                t.link
                    .record_transfer(&mut metrics, &track, iv.start, iv.end, t.bytes);
            }
        }

        let mut peaks: Vec<(String, u64)> = Vec::new();
        let mut dropped = 0u64;
        let mut applied = vec![false; self.allocs.len()];
        for (pi, planned) in self.pools.iter().enumerate() {
            let mut pool = MemoryPool::new(&planned.name, planned.capacity);
            if planned.base > 0 && pool.allocate_at(planned.base, SimTime::ZERO).is_err() {
                dropped += 1;
            }
            // Replay events in executed order; frees sort before allocs at
            // the same instant so back-to-back buffers don't double-count.
            let mut events: Vec<(SimTime, u8, usize)> = Vec::new();
            for (ai, a) in self.allocs.iter().enumerate() {
                if a.pool != pi {
                    continue;
                }
                let at = trace.end_time(a.alloc_after).unwrap_or(SimTime::ZERO);
                events.push((at, 1, ai));
                if let Some(f) = a.free_after {
                    let ft = trace.end_time(f).unwrap_or(at).max(at);
                    events.push((ft, 0, ai));
                }
            }
            events.sort_by_key(|&(ts, kind, ai)| (ts.as_micros_rounded(), kind, ai));
            for (ts, kind, ai) in events {
                let bytes = self.allocs[ai].bytes;
                if kind == 1 {
                    if pool.allocate_at(bytes, ts).is_ok() {
                        applied[ai] = true;
                    } else {
                        dropped += 1;
                    }
                } else if applied[ai] {
                    let _ = pool.free_at(bytes, ts);
                }
            }
            pool.record_into(&mut metrics);
            peaks.push((planned.name.clone(), pool.peak()));
        }
        if dropped > 0 {
            metrics.add("telemetry.dropped-allocs", dropped);
        }

        let report = finalize_report(
            system,
            &trace,
            gates,
            self.gpu,
            self.cpu,
            effective_flops,
            chip,
            plan,
            peaks,
        );
        Ok(RunProfile {
            report,
            trace,
            metrics,
            journal: None,
        })
    }
}

/// Tracks per-iteration sync gates: each iteration's tasks depend on the
/// previous gate, and the gate sequence delimits the steady-state window.
#[derive(Debug, Default)]
pub struct IterationBuilder {
    gates: Vec<TaskId>,
}

impl IterationBuilder {
    /// A builder with no iterations closed yet.
    pub fn new() -> Self {
        IterationBuilder::default()
    }

    /// The gate of the previously closed iteration, if any.
    pub fn prev_gate(&self) -> Option<TaskId> {
        self.gates.last().copied()
    }

    /// Dependencies the first task(s) of the next iteration should carry
    /// (empty for the first iteration, the previous gate afterwards).
    pub fn start_deps(&self) -> Vec<TaskId> {
        self.prev_gate().into_iter().collect()
    }

    /// Closes the current iteration with a sync gate on the GPU depending
    /// on `deps`.
    pub fn close(
        &mut self,
        ctx: &mut ScheduleCtx,
        deps: impl IntoIterator<Item = TaskId>,
    ) -> Result<TaskId, SimError> {
        let gate = ctx.sim.add_task(
            TaskSpec::sync(ctx.gpu)
                .with_label("iter-gate")
                .after_all(deps),
        )?;
        self.gates.push(gate);
        Ok(gate)
    }

    /// All gates closed so far, in order (pass to [`ScheduleCtx::finish`]).
    pub fn gates(&self) -> &[TaskId] {
        &self.gates
    }
}

/// SuperOffload as an [`OffloadSystem`]: dispatches to the single-chip
/// schedule for one rank and to the ZeRO-DP integration for more.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuperOffload {
    /// Schedule options (ablation toggles, bucket size, iterations).
    pub opts: SuperOffloadOptions,
}

impl SuperOffload {
    /// SuperOffload with explicit options.
    pub fn with_opts(opts: SuperOffloadOptions) -> Self {
        SuperOffload { opts }
    }
}

impl OffloadSystem for SuperOffload {
    fn name(&self) -> &str {
        "superoffload"
    }

    fn simulate_traced(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<(TrainReport, Trace), Infeasible> {
        if ranks <= 1 {
            simulate_single_chip_traced(&cluster.node.chip, workload, &self.opts)
        } else {
            zero_dp::simulate_cluster_traced(cluster, ranks, workload, &self.opts)
        }
    }

    fn simulate_profiled(
        &self,
        cluster: &ClusterSpec,
        ranks: u32,
        workload: &Workload,
    ) -> Result<RunProfile, Infeasible> {
        if ranks <= 1 {
            simulate_single_chip_profiled(&cluster.node.chip, workload, &self.opts)
        } else {
            zero_dp::simulate_cluster_traced(cluster, ranks, workload, &self.opts)
                .map(|(report, trace)| RunProfile::from_trace(report, trace))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn infeasible_displays_are_informative() {
        let g = Infeasible::GpuCapacity {
            needed: 100 << 30,
            cap: 90 << 30,
        };
        assert!(g.to_string().contains("100.0 GiB"));
        let b = Infeasible::BatchNotDivisible {
            global_batch: 7,
            ranks: 4,
        };
        assert!(b.to_string().contains("7"));
        assert!(b.to_string().contains("4 ranks"));
        let p = Infeasible::NoExecutionPlan {
            activation_budget: 1 << 30,
        };
        assert!(p.to_string().contains("activation budget"));
        let fc = Infeasible::FabricCapacity {
            ranks: 16,
            fleet_gpus: 4,
        };
        let msg = fc.to_string();
        assert!(msg.contains("16 ranks"), "got: {msg}");
        assert!(msg.contains("4 GPU endpoints"), "got: {msg}");
    }

    #[test]
    fn capacity_checks_produce_typed_errors() {
        let chip = presets::gh200_chip();
        let cap = Capacity::of(&chip);
        assert!(cap.fit_gpu(0).is_ok());
        assert!(matches!(
            cap.fit_gpu(u64::MAX),
            Err(Infeasible::GpuCapacity { .. })
        ));
        assert!(matches!(
            cap.fit_cpu(u64::MAX),
            Err(Infeasible::CpuCapacity { .. })
        ));
        assert!(matches!(
            cap.plan(&wl("5B", 8), u64::MAX - 1),
            Err(Infeasible::GpuCapacity { .. })
        ));
    }

    #[test]
    fn split_batch_divides_or_explains() {
        let w = wl("5B", 8);
        let per_rank = split_batch(&w, 4).unwrap();
        assert_eq!(per_rank.global_batch, 2);
        assert!(matches!(
            split_batch(&w, 3),
            Err(Infeasible::BatchNotDivisible {
                global_batch: 8,
                ranks: 3
            })
        ));
    }

    #[test]
    fn registry_lookup_and_order() {
        let mut reg = SystemRegistry::new();
        reg.register(SuperOffload::default());
        assert_eq!(reg.names(), vec!["superoffload"]);
        assert_eq!(reg.len(), 1);
        assert!(reg.get("superoffload").is_some());
        assert!(reg.get("nope").is_none());
        let cluster = superchip_sim::presets::gh200_nvl2_cluster(1);
        let r = reg
            .expect("superoffload")
            .simulate(&cluster, 1, &wl("5B", 8));
        assert!(r.feasible());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = SystemRegistry::new();
        reg.register(SuperOffload::default());
        reg.register(SuperOffload::default());
    }

    #[test]
    fn superoffload_system_matches_free_function() {
        let cluster = presets::gh200_nvl2_cluster(1);
        let w = wl("5B", 8);
        let via_trait = SuperOffload::default().simulate(&cluster, 1, &w);
        let direct = crate::schedule::simulate_single_chip(
            &cluster.node.chip,
            &w,
            &SuperOffloadOptions::default(),
        );
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn trait_errors_surface_structured_reasons() {
        let cluster = presets::gh200_nvl2_cluster(1);
        let err = SuperOffload::default()
            .simulate_traced(&cluster, 1, &wl("200B", 8))
            .unwrap_err();
        assert!(
            matches!(
                err,
                Infeasible::GpuCapacity { .. } | Infeasible::CpuCapacity { .. }
            ),
            "unexpected reason: {err}"
        );
    }
}
