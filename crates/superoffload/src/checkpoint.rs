//! Training-state checkpointing for the numeric engines.
//!
//! Serializes everything needed to resume bit-exactly — flat parameters,
//! Adam moments, step counter, and the loss-scaler state — in a simple
//! length-prefixed little-endian binary format (no external format
//! dependencies). Resuming from a checkpoint continues the *identical*
//! trajectory, which the tests assert against an uninterrupted run.

use std::io::{self, Read, Write};

/// Magic bytes identifying a checkpoint stream.
const MAGIC: &[u8; 8] = b"SOCKPT01";

/// A self-contained snapshot of training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// Adam first moments.
    pub m: Vec<f32>,
    /// Adam second moments.
    pub v: Vec<f32>,
    /// 1-based optimizer step counter.
    pub step: u64,
    /// Current dynamic loss scale.
    pub loss_scale: f32,
    /// Clean steps since the scaler last grew or backed off.
    pub scaler_good_steps: u32,
    /// Overflow events seen so far.
    pub overflow_count: u64,
}

/// Errors from checkpoint serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a checkpoint (bad magic or truncated).
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_vec(w: &mut impl Write, v: &[f32]) -> io::Result<()> {
    w.write_all(&(v.len() as u64).to_le_bytes())?;
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_vec(r: &mut impl Read) -> Result<Vec<f32>, CheckpointError> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8) as usize;
    // Defensive cap: a corrupted length should not trigger a huge allocation.
    if len > (1 << 33) {
        return Err(CheckpointError::Malformed("implausible vector length"));
    }
    let mut bytes = vec![0u8; len * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

impl Checkpoint {
    /// Writes the checkpoint to `w`.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] on write failure.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        w.write_all(MAGIC)?;
        w.write_all(&self.step.to_le_bytes())?;
        w.write_all(&self.loss_scale.to_le_bytes())?;
        w.write_all(&self.scaler_good_steps.to_le_bytes())?;
        w.write_all(&self.overflow_count.to_le_bytes())?;
        write_vec(w, &self.params)?;
        write_vec(w, &self.m)?;
        write_vec(w, &self.v)?;
        Ok(())
    }

    /// Reads a checkpoint from `r`.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Malformed`] on bad magic or inconsistent
    /// buffer lengths, [`CheckpointError::Io`] on truncated input.
    pub fn read_from(r: &mut impl Read) -> Result<Checkpoint, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::Malformed("bad magic"));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let step = u64::from_le_bytes(b8);
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let loss_scale = f32::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let scaler_good_steps = u32::from_le_bytes(b4);
        r.read_exact(&mut b8)?;
        let overflow_count = u64::from_le_bytes(b8);
        let params = read_vec(r)?;
        let m = read_vec(r)?;
        let v = read_vec(r)?;
        if m.len() != params.len() || v.len() != params.len() {
            return Err(CheckpointError::Malformed(
                "moment/parameter length mismatch",
            ));
        }
        Ok(Checkpoint {
            params,
            m,
            v,
            step,
            loss_scale,
            scaler_good_steps,
            overflow_count,
        })
    }

    /// Serializes to an in-memory buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + 12 * self.params.len());
        self.write_to(&mut buf)
            .expect("Vec<u8> writes are infallible");
        buf
    }

    /// Deserializes from an in-memory buffer.
    ///
    /// # Errors
    /// Same conditions as [`Checkpoint::read_from`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::read_from(&mut io::Cursor::new(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            params: vec![1.0, -2.5, 3.25],
            m: vec![0.1, 0.2, 0.3],
            v: vec![0.01, 0.02, 0.03],
            step: 42,
            loss_scale: 1024.0,
            scaler_good_steps: 17,
            overflow_count: 3,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed("bad magic"))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [4usize, 12, bytes.len() - 3] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let bad = Checkpoint {
            m: vec![0.0; 2],
            ..sample()
        };
        let bytes = bad.to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn special_floats_survive() {
        let ckpt = Checkpoint {
            params: vec![f32::INFINITY, f32::MIN_POSITIVE, -0.0],
            m: vec![0.0; 3],
            v: vec![0.0; 3],
            ..sample()
        };
        let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back.params[0], f32::INFINITY);
        assert_eq!(back.params[2].to_bits(), (-0.0f32).to_bits());
    }
}
