//! SuperOffload: a Superchip-centric offloading system for LLM training.
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! has two halves that share the same policy code:
//!
//! - **Performance plane** — schedule builders that express SuperOffload
//!   (and its ablations) as task graphs on the [`superchip_sim`] simulator:
//!   [`schedule`] (single Superchip), [`zero_dp`] (multi-Superchip ZeRO-3
//!   integration), and [`ulysses`] (SuperOffload-Ulysses sequence
//!   parallelism). Builders acquire node resources (capacity, links,
//!   collectives, schedule contexts) through [`fleet`] leases rather than
//!   ambient globals. The paper's throughput, scale, and utilization
//!   results are regenerated from these.
//! - **Numeric plane** — [`engine`], a real multi-threaded
//!   speculation-then-validation training executor over the miniature GPT of
//!   [`llm_model`], demonstrating that STV is an *exact* optimization
//!   (bit-identical to synchronous training) while overlapping optimizer
//!   work with the next forward pass.
//!
//! The individual techniques of §4 each have a module:
//!
//! | Paper section | Module |
//! |---|---|
//! | §4.1 SA-DFG                        | [`sadfg`] |
//! | §4.2 adaptive weight offloading     | [`policy`] |
//! | §4.3 bucketization repartitioning   | [`bucket`] |
//! | §4.4 speculation-then-validation    | [`engine`] (real), [`schedule`] (modeled) |
//! | §4.5 Superchip-aware casting        | [`casting`] |
//! | §4.6 GraceAdam                      | [`costs`] (model), `grace_optim` (real) |
//! | §4.7 multi-Superchip schedule       | [`zero_dp`], [`ulysses`], [`numa`] |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucket;
pub mod casting;
pub mod checkpoint;
pub mod costs;
pub mod engine;
pub mod engine_dp;
pub mod fleet;
pub mod numa;
pub mod policy;
pub mod report;
pub mod sadfg;
pub mod schedule;
pub mod system;
pub mod trainer;
pub mod ulysses;
pub mod ulysses_numeric;
pub mod zero_dp;

pub use bucket::BucketPlan;
pub use casting::CastPlacement;
pub use checkpoint::Checkpoint;
pub use costs::OptimizerImpl;
pub use engine::{EngineSpans, SpanStats, StvEngine, StvStats, SyncEngine};
pub use engine_dp::{DpStvEngine, DpSyncEngine};
pub use fleet::{FleetCtx, NodeLease};
pub use policy::WeightPolicy;
pub use report::{RunProfile, TrainReport};
pub use schedule::{simulate_single_chip, simulate_single_chip_profiled, SuperOffloadOptions};
pub use system::{Infeasible, OffloadSystem, SuperOffload, SystemRegistry};
pub use trainer::{
    Discipline, JournalConfig, JournalSummary, StepJournal, StepRecord, StepTiming, Trainer,
    JOURNAL_SCHEMA,
};
