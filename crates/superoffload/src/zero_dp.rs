//! Multi-Superchip SuperOffload: ZeRO-DP integration (§4.7).
//!
//! Model states are partitioned before offloading: each rank offloads only
//! its own 1/N slice of gradients and optimizer state to its *local* Grace
//! CPU (NUMA-bound), so total GPU↔CPU volume stays constant while CPU
//! throughput scales with ranks. Weight placement is adaptive, like the
//! single-chip policy:
//!
//! - **Replicated weights** when the FP16 parameters fit on every GPU ("the
//!   partitioned weights, as well as the last few buckets from adaptive
//!   offloading, remain on the GPUs"): no per-pass all-gathers; gradients
//!   reduce-scatter per bucket overlapping backward, updated parameter
//!   slices all-gather per bucket overlapping the rest of backward, and the
//!   last buckets stay on the GPU entirely (all-reduced and stepped there).
//! - **ZeRO-3 sharding** for models too large to replicate: weights
//!   all-gather per pass, everything else as above.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use superchip_sim::prelude::*;

use crate::bucket::BucketPlan;
use crate::casting::CastPlacement;
use crate::costs::{gpu_optimizer_time, pipeline_step_time, ComputeTimes};
use crate::fleet::FleetCtx;
use crate::report::TrainReport;
use crate::schedule::SuperOffloadOptions;
use crate::system::{split_batch, Infeasible, IterationBuilder};

/// Simulates SuperOffload + ZeRO-DP across `ranks` Superchips of `cluster`.
///
/// `workload.global_batch` is the global batch; it is divided evenly across
/// ranks (must divide). The report is per-GPU (as in Fig. 11). Returns
/// [`TrainReport::oom`] on any infeasibility (including a `ranks` span the
/// fabric cannot connect); [`simulate_cluster_traced`] reports the
/// structured reason instead.
pub fn simulate_cluster(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> TrainReport {
    crate::system::collapse(
        simulate_cluster_traced(cluster, ranks, workload, opts),
        "superoffload",
    )
}

/// Like [`simulate_cluster`], additionally returning the execution trace,
/// or the structured [`Infeasible`] reason (capacity, fabric span, batch
/// divisibility, no execution plan) when the workload cannot run.
pub fn simulate_cluster_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> Result<(TrainReport, Trace), Infeasible> {
    let system = "superoffload";
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let shard_elems = params / ranks as u64;

    // Per-rank workload.
    let rank_wl = split_batch(workload, ranks)?;
    let rank_batch = rank_wl.global_batch;

    // --- Memory planning (per rank) --------------------------------------
    let cap = lease.capacity();

    let cast = opts
        .cast
        .unwrap_or_else(|| CastPlacement::choose(chip, opts.bucket_bytes / 4));
    let retained = if opts.use_repartition {
        opts.retained_buckets.unwrap_or(2)
    } else {
        0
    };
    // Buckets partition the FULL parameter space (backward produces full
    // gradients on every rank); each rank owns a 1/ranks slice of every
    // bucket after the reduce-scatter.
    let buckets = BucketPlan::new(params, opts.bucket_bytes, retained);
    let slice = |elems: u64| (elems / ranks as u64).max(1);

    // Weight placement: replicate when FP16 parameters fit every GPU,
    // otherwise fall back to ZeRO-3 sharding with per-pass all-gathers.
    let staging = 4 * opts.bucket_bytes;
    let gather_window = (states.fp16_params / workload.config.layers.max(1) as u64) * 4;
    let min_act =
        llm_model::memory::ActivationMemory::checkpointed(&workload.config, 1, workload.seq).bytes;
    let replicated_resident = states.fp16_params + staging + buckets.retained_gpu_bytes() + min_act;
    let replicated = replicated_resident <= cap.gpu;
    let gpu_resident = if replicated {
        replicated_resident - min_act
    } else {
        states.fp16_params / ranks as u64
            + gather_window
            + staging
            + buckets.retained_gpu_bytes() / ranks as u64
    };
    cap.fit_gpu(gpu_resident)?;
    // CPU: FP32 master + moments for this rank's slice of the CPU buckets.
    let cpu_resident = 12 * (params - buckets.retained_elems()) / ranks as u64 + staging;
    cap.fit_cpu(cpu_resident)?;
    let plan = cap.plan(&rank_wl, gpu_resident)?;

    // --- Cost inputs (per rank) ------------------------------------------
    let flops = TrainingFlops::for_iteration(
        &workload.config,
        rank_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(opts.op_overhead_secs);

    // Sharded mode only: all-gather FP16 params for forward and backward.
    let allgather = coll.all_gather(states.fp16_params / ranks as u64);

    // --- Task graph (rank-0 perspective; ranks are symmetric) ------------
    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);

    let micro = plan.micro_steps();

    let mut iters = IterationBuilder::new();
    for _ in 0..opts.iterations {
        let mut iter_end: Vec<TaskId> = Vec::new();
        let mut last_task: Option<TaskId> = None;
        let mut arrivals: Vec<(u32, TaskId)> = Vec::new();

        for m in 0..micro {
            let mut deps: Vec<TaskId> = iters.start_deps();
            if let Some(t) = last_task {
                deps.push(t);
            }
            let fwd_dep = if replicated {
                deps
            } else {
                // Sharded mode: all-gather weights for the forward pass.
                vec![ctx.sim.add_task(
                    TaskSpec::collective(ctx.net, allgather + overhead)
                        .with_label("allgather-fwd")
                        .after_all(deps),
                )?]
            };
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, fwd_dep)?;
            let bwd_start = if replicated {
                fwd
            } else {
                // Sharded mode: gather again for backward.
                ctx.sim.add_task(
                    TaskSpec::collective(ctx.net, allgather + overhead)
                        .with_label("allgather-bwd")
                        .after(fwd),
                )?
            };

            let last = ctx.backward_chunks(
                &buckets,
                compute.bwd_per_micro,
                overhead,
                bwd_start,
                None,
                |ctx, bi, elems, chunk| {
                    // Reduce gradients across ranks: retained buckets are
                    // all-reduced in replicated mode (every rank steps them
                    // on the GPU); everything else reduce-scatters so each
                    // rank ends with its 1/ranks slice.
                    let rs = if replicated && buckets.is_retained(bi) && ranks > 1 {
                        ctx.all_reduce(
                            &coll,
                            2 * elems,
                            overhead,
                            format!("allreduce[{bi}]"),
                            chunk,
                        )?
                    } else if ranks > 1 {
                        ctx.reduce_scatter(
                            &coll,
                            2 * elems,
                            overhead,
                            format!("reduce-scatter[{bi}]"),
                            chunk,
                        )?
                    } else {
                        chunk
                    };

                    if m + 1 == micro {
                        if buckets.is_retained(bi) {
                            arrivals.push((bi, rs));
                        } else {
                            // Swap this rank's slice out to the local CPU.
                            let xfer = ctx.sim.add_task(
                                TaskSpec::transfer(
                                    ctx.d2h,
                                    cast.one_way_time(chip, slice(elems)) + overhead,
                                )
                                .with_label(format!("grad-out[{bi}]"))
                                .after(rs),
                            )?;
                            arrivals.push((bi, xfer));
                        }
                    } else {
                        iter_end.push(rs);
                    }
                    Ok(())
                },
            )?;
            last_task = Some(last);
        }

        // Optimizer phase on shard (STV: per-bucket, no global sync).
        let norm_sync = if opts.use_stv {
            None
        } else {
            let all: Vec<TaskId> = arrivals.iter().map(|&(_, t)| t).collect();
            Some(
                ctx.sim.add_task(
                    TaskSpec::compute(
                        ctx.cpu,
                        SimTime::from_secs((4 * shard_elems) as f64 / chip.cpu.mem_bandwidth)
                            + overhead,
                    )
                    .with_label("global-norm-sync")
                    .after_all(all),
                )?,
            )
        };
        for &(bi, arrival) in &arrivals {
            let full = buckets.bucket_elems(bi);
            let elems = slice(full);
            if buckets.is_retained(bi) {
                // Retained buckets: every rank steps the full bucket on
                // its GPU (all-reduced gradients when replicated; the
                // reduce-scatter result otherwise).
                let step_elems = if replicated { full } else { elems };
                let mut spec = TaskSpec::compute(
                    ctx.gpu,
                    gpu_optimizer_time(&chip.gpu, step_elems) + overhead,
                )
                .with_label(format!("step-gpu[{bi}]"))
                .tagged(TaskTag::OptimizerStep)
                .after(arrival);
                if let Some(ns) = norm_sync {
                    spec = spec.after(ns);
                }
                iter_end.push(ctx.sim.add_task(spec)?);
            } else {
                let mut spec = TaskSpec::compute(
                    ctx.cpu,
                    pipeline_step_time(opts.optimizer, &chip.cpu, elems)
                        + cast.fused_optimizer_overhead(chip, elems)
                        + overhead,
                )
                .with_label(format!("step-cpu[{bi}]"))
                .tagged(TaskTag::OptimizerStep)
                .after(arrival);
                if let Some(ns) = norm_sync {
                    spec = spec.after(ns);
                }
                let step = ctx.sim.add_task(spec)?;
                let ret = ctx.sim.add_task(
                    TaskSpec::transfer(ctx.h2d, cast.one_way_time(chip, elems) + overhead)
                        .with_label(format!("param-in[{bi}]"))
                        .after(step),
                )?;
                if replicated && ranks > 1 {
                    // All-gather the updated FP16 slices of this bucket
                    // back to every rank, overlapping later buckets.
                    let ag = ctx.all_gather(
                        &coll,
                        2 * full / ranks as u64,
                        overhead,
                        format!("param-allgather[{bi}]"),
                        ret,
                    )?;
                    iter_end.push(ag);
                } else {
                    iter_end.push(ret);
                }
            }
        }

        iters.close(&mut ctx, iter_end)?;
    }

    // Per-GPU effective FLOPs: this rank's share.
    let gates = iters.gates().to_vec();
    ctx.finish(system, &gates, flops.effective(), chip, plan)
}

/// Largest Appendix-A model SuperOffload can train on `ranks` Superchips
/// (used by Fig. 13). Scans the Appendix-A ladder from the top.
pub fn max_trainable_model(
    cluster: &ClusterSpec,
    ranks: u32,
    batch: u32,
    seq: u64,
    opts: &SuperOffloadOptions,
) -> Option<llm_model::ModelConfig> {
    let mut best = None;
    for cfg in llm_model::ModelConfig::appendix_a() {
        let wl = Workload::new(cfg.clone(), batch, seq);
        let report = if ranks == 1 {
            crate::schedule::simulate_single_chip(&cluster.node.chip, &wl, opts)
        } else {
            simulate_cluster(cluster, ranks, &wl, opts)
        };
        if report.feasible()
            && best
                .as_ref()
                .map(|b: &llm_model::ModelConfig| cfg.param_count() > b.param_count())
                .unwrap_or(true)
        {
            best = Some(cfg);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn cluster(nodes: u32) -> ClusterSpec {
        presets::gh200_nvl2_cluster(nodes)
    }

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn four_rank_10b_feasible() {
        let r = simulate_cluster(
            &cluster(2),
            4,
            &wl("10B", 16),
            &SuperOffloadOptions::default(),
        );
        assert!(r.feasible());
        assert!(r.tflops > 50.0, "tflops {}", r.tflops);
    }

    #[test]
    fn fifty_b_fits_on_four_ranks() {
        // §1: "SuperOffload enables LLM training with 50B parameters using
        // only four Superchips".
        let r = simulate_cluster(
            &cluster(2),
            4,
            &wl("50B", 16),
            &SuperOffloadOptions::default(),
        );
        assert!(r.feasible(), "50B should fit on 4 Superchips");
    }

    #[test]
    fn two_hundred_b_fits_on_sixteen_ranks() {
        // §5.2: "efficiently training 200B models on 16 GPUs".
        let r = simulate_cluster(
            &cluster(8),
            16,
            &wl("200B", 128),
            &SuperOffloadOptions::default(),
        );
        assert!(r.feasible(), "200B should fit on 16 Superchips");
    }

    #[test]
    fn more_ranks_enable_bigger_models() {
        let opts = SuperOffloadOptions::default();
        let m4 = max_trainable_model(&cluster(2), 4, 16, 2048, &opts).unwrap();
        let m16 = max_trainable_model(&cluster(8), 16, 128, 2048, &opts).unwrap();
        assert!(m16.param_count() >= m4.param_count());
        assert!(m4.param_count() >= ModelConfig::by_name("50B").unwrap().param_count());
    }

    #[test]
    fn batch_must_divide() {
        let err = simulate_cluster_traced(
            &cluster(2),
            4,
            &wl("10B", 7),
            &SuperOffloadOptions::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            Infeasible::BatchNotDivisible {
                global_batch: 7,
                ranks: 4
            }
        );
        // The legacy wrapper collapses the structured reason into OOM form.
        let report = simulate_cluster(
            &cluster(2),
            4,
            &wl("10B", 7),
            &SuperOffloadOptions::default(),
        );
        assert!(!report.feasible());
    }

    #[test]
    fn deterministic() {
        let a = simulate_cluster(
            &cluster(2),
            4,
            &wl("10B", 16),
            &SuperOffloadOptions::default(),
        );
        let b = simulate_cluster(
            &cluster(2),
            4,
            &wl("10B", 16),
            &SuperOffloadOptions::default(),
        );
        assert_eq!(a, b);
    }
}
