//! Fine-grained bucketization repartitioning (§4.3).
//!
//! Gradients and parameters are grouped into buckets before crossing the
//! C2C link; 64 MiB saturates the link (Fig. 7) while staying fine-grained
//! enough to overlap with backward compute. The *repartitioning* insight is
//! that the last buckets produced by the backward pass cannot overlap with
//! anything (the next forward needs their parameters first), so SuperOffload
//! keeps the optimizer state of the last `n` buckets on the GPU, sized by
//! the inequality of Eq. 4–5.

use superchip_sim::topology::ChipSpec;
use superchip_sim::{SimTime, MIB};

use crate::casting::CastPlacement;
use crate::costs::{gpu_optimizer_time, OptimizerImpl};

/// The default bucket size: 64 MiB, the C2C saturation knee from Fig. 7.
pub const DEFAULT_BUCKET_BYTES: u64 = 64 * MIB;

/// A partition of a model's parameters into transfer buckets.
///
/// Buckets are indexed in **backward-production order**: bucket 0 holds the
/// gradients produced first (the *last* layers), bucket `n-1` holds the
/// first layers' parameters — the ones the next forward pass needs first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketPlan {
    /// Parameters per full bucket.
    pub elems_per_bucket: u64,
    /// Total number of buckets (last one may be partial).
    pub num_buckets: u32,
    /// Total parameters covered.
    pub total_elems: u64,
    /// Number of trailing buckets (in production order) whose optimizer
    /// state stays on the GPU.
    pub retained_on_gpu: u32,
}

impl BucketPlan {
    /// Partitions `total_elems` parameters into buckets of `bucket_bytes`
    /// (FP32 gradient bytes), with `retained_on_gpu` trailing buckets kept
    /// on the GPU.
    ///
    /// # Panics
    /// Panics if `bucket_bytes < 4` or `total_elems == 0`.
    pub fn new(total_elems: u64, bucket_bytes: u64, retained_on_gpu: u32) -> Self {
        assert!(bucket_bytes >= 4, "bucket must hold at least one element");
        assert!(total_elems > 0, "cannot bucketize an empty model");
        let elems_per_bucket = bucket_bytes / 4;
        let num_buckets = total_elems.div_ceil(elems_per_bucket) as u32;
        BucketPlan {
            elems_per_bucket,
            num_buckets,
            total_elems,
            retained_on_gpu: retained_on_gpu.min(num_buckets),
        }
    }

    /// Elements in bucket `i` (the final bucket may be partial).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bucket_elems(&self, i: u32) -> u64 {
        assert!(i < self.num_buckets, "bucket {i} out of range");
        if i + 1 == self.num_buckets {
            self.total_elems - self.elems_per_bucket * (self.num_buckets as u64 - 1)
        } else {
            self.elems_per_bucket
        }
    }

    /// Whether bucket `i`'s optimizer state lives on the GPU.
    pub fn is_retained(&self, i: u32) -> bool {
        i >= self.num_buckets - self.retained_on_gpu
    }

    /// Buckets whose optimizer runs on the CPU.
    pub fn cpu_buckets(&self) -> u32 {
        self.num_buckets - self.retained_on_gpu
    }

    /// Total elements whose optimizer state is retained on the GPU.
    pub fn retained_elems(&self) -> u64 {
        (0..self.num_buckets)
            .filter(|&i| self.is_retained(i))
            .map(|i| self.bucket_elems(i))
            .sum()
    }

    /// Extra GPU bytes the retained buckets cost (FP32 master + moments +
    /// FP32 gradient staging = 16 bytes/elem).
    pub fn retained_gpu_bytes(&self) -> u64 {
        16 * self.retained_elems()
    }
}

/// Closed-form Eq. 4–5 check: with `n` retained buckets, can the last CPU
/// bucket's swap-out → step → swap-in pipeline hide behind the backward and
/// GPU-optimizer work of the retained buckets?
pub fn retention_inequality_holds(
    chip: &ChipSpec,
    plan: &BucketPlan,
    cast: CastPlacement,
    optimizer: OptimizerImpl,
    bwd_time_per_elem: SimTime,
) -> bool {
    if plan.retained_on_gpu == 0 {
        return plan.cpu_buckets() == 0;
    }
    let bucket = plan.elems_per_bucket;
    let lhs = cast.one_way_time(chip, bucket)
        + optimizer.step_time(&chip.cpu, bucket)
        + cast.one_way_time(chip, bucket);
    let retained = plan.retained_elems();
    let rhs = bwd_time_per_elem * retained as f64 + gpu_optimizer_time(&chip.gpu, retained);
    lhs <= rhs
}

/// Smallest `n` (retained buckets) satisfying Eq. 4–5, or `num_buckets` if
/// none does. This seeds the grid search the schedule runs (§4.3: "the
/// optimal number depends on model size and batch sizes, and SuperOffload
/// uses grid search").
pub fn min_retained(
    chip: &ChipSpec,
    total_elems: u64,
    bucket_bytes: u64,
    cast: CastPlacement,
    optimizer: OptimizerImpl,
    bwd_time_per_elem: SimTime,
) -> u32 {
    let max = BucketPlan::new(total_elems, bucket_bytes, 0).num_buckets;
    for n in 0..=max {
        let plan = BucketPlan::new(total_elems, bucket_bytes, n);
        if retention_inequality_holds(chip, &plan, cast, optimizer, bwd_time_per_elem) {
            return n;
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    #[test]
    fn bucket_partition_covers_everything() {
        let plan = BucketPlan::new(100_000_000, DEFAULT_BUCKET_BYTES, 2);
        let sum: u64 = (0..plan.num_buckets).map(|i| plan.bucket_elems(i)).sum();
        assert_eq!(sum, plan.total_elems);
        // 64 MiB of fp32 = 16 Mi elements per bucket.
        assert_eq!(plan.elems_per_bucket, 16 * 1024 * 1024);
        assert_eq!(plan.num_buckets, 6); // ceil(100e6 / 16.78e6)
    }

    #[test]
    fn last_bucket_is_partial() {
        let plan = BucketPlan::new(20_000_000, DEFAULT_BUCKET_BYTES, 0);
        assert_eq!(plan.num_buckets, 2);
        assert_eq!(plan.bucket_elems(0), 16 * 1024 * 1024);
        assert_eq!(plan.bucket_elems(1), 20_000_000 - 16 * 1024 * 1024);
    }

    #[test]
    fn retention_marks_trailing_buckets() {
        let plan = BucketPlan::new(100_000_000, DEFAULT_BUCKET_BYTES, 2);
        assert!(!plan.is_retained(0));
        assert!(!plan.is_retained(3));
        assert!(plan.is_retained(4));
        assert!(plan.is_retained(5));
        assert_eq!(plan.cpu_buckets(), 4);
    }

    #[test]
    fn retained_bytes_are_16_per_elem() {
        let plan = BucketPlan::new(64_000_000, DEFAULT_BUCKET_BYTES, 1);
        assert_eq!(plan.retained_gpu_bytes(), 16 * plan.retained_elems());
    }

    #[test]
    fn retention_clamped_to_bucket_count() {
        let plan = BucketPlan::new(1000, DEFAULT_BUCKET_BYTES, 99);
        assert_eq!(plan.num_buckets, 1);
        assert_eq!(plan.retained_on_gpu, 1);
        assert_eq!(plan.cpu_buckets(), 0);
    }

    #[test]
    fn min_retained_is_small_on_gh200() {
        // On GH200 with 64 MiB buckets, a handful of retained buckets should
        // hide the last CPU bucket's round trip for a 5B model.
        let chip = presets::gh200_chip();
        let cfg = llm_model::ModelConfig::appendix_a_5b();
        let params = cfg.param_count();
        // bwd time per element: 4·bsz·seq FLOPs per parameter.
        let flops_per_elem = 4.0 * 8.0 * 2048.0;
        let bwd_per_elem = chip.gpu.time_for_flops(flops_per_elem);
        let n = min_retained(
            &chip,
            params,
            DEFAULT_BUCKET_BYTES,
            CastPlacement::GpuCastMoveFp32,
            OptimizerImpl::GraceAdam,
            bwd_per_elem,
        );
        let total = BucketPlan::new(params, DEFAULT_BUCKET_BYTES, 0).num_buckets;
        assert!(n >= 1, "some retention should be needed");
        assert!(
            n <= total / 4,
            "retention should be a small fraction: {n}/{total}"
        );
    }

    #[test]
    fn slower_optimizer_needs_more_retention() {
        let chip = presets::gh200_chip();
        let params = llm_model::ModelConfig::appendix_a_5b().param_count();
        let bwd_per_elem = chip.gpu.time_for_flops(4.0 * 8.0 * 2048.0);
        let fast = min_retained(
            &chip,
            params,
            DEFAULT_BUCKET_BYTES,
            CastPlacement::GpuCastMoveFp32,
            OptimizerImpl::GraceAdam,
            bwd_per_elem,
        );
        let slow = min_retained(
            &chip,
            params,
            DEFAULT_BUCKET_BYTES,
            CastPlacement::GpuCastMoveFp32,
            OptimizerImpl::PtCpu,
            bwd_per_elem,
        );
        assert!(slow >= fast);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_index_bounds() {
        let plan = BucketPlan::new(1000, DEFAULT_BUCKET_BYTES, 0);
        let _ = plan.bucket_elems(5);
    }
}
