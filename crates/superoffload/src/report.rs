//! The common result type every schedule simulation produces.

use std::fmt;

use llm_model::workload::ExecutionPlan;
use superchip_sim::SimTime;

/// Outcome of simulating a training system on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// System name ("superoffload", "zero-offload", ...).
    pub system: String,
    /// The execution plan chosen by the system's planner, if feasible.
    pub plan: Option<ExecutionPlan>,
    /// Steady-state time per optimizer step.
    pub iter_time: SimTime,
    /// Effective throughput in TFLOPS per GPU (recomputation excluded).
    pub tflops: f64,
    /// Model FLOPs Utilization per GPU, in `[0, 1]`.
    pub mfu: f64,
    /// GPU busy fraction over the steady-state iteration.
    pub gpu_util: f64,
    /// CPU busy fraction over the steady-state iteration.
    pub cpu_util: f64,
}

impl TrainReport {
    /// An out-of-memory (infeasible) report.
    pub fn oom(system: impl Into<String>) -> Self {
        TrainReport {
            system: system.into(),
            plan: None,
            iter_time: SimTime::ZERO,
            tflops: 0.0,
            mfu: 0.0,
            gpu_util: 0.0,
            cpu_util: 0.0,
        }
    }

    /// Whether the workload fit.
    pub fn feasible(&self) -> bool {
        self.plan.is_some()
    }
}

impl fmt::Display for TrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.feasible() {
            return write!(f, "{}: OOM", self.system);
        }
        write!(
            f,
            "{}: {:.1} TFLOPS ({} per iter, MFU {:.1}%, gpu {:.0}% cpu {:.0}%)",
            self.system,
            self.tflops,
            self.iter_time,
            self.mfu * 100.0,
            self.gpu_util * 100.0,
            self.cpu_util * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_both_outcomes() {
        let oom = TrainReport::oom("ddp");
        assert_eq!(oom.to_string(), "ddp: OOM");
        let ok = TrainReport {
            system: "superoffload".into(),
            plan: Some(llm_model::workload::ExecutionPlan {
                micro_batch: 8,
                accum_steps: 1,
                checkpointing: false,
                activation_bytes: 0,
            }),
            iter_time: SimTime::from_secs(2.0),
            tflops: 242.6,
            mfu: 0.49,
            gpu_util: 1.0,
            cpu_util: 0.58,
        };
        let s = ok.to_string();
        assert!(s.contains("242.6") && s.contains("49.0%"));
    }

    #[test]
    fn oom_report_is_infeasible() {
        let r = TrainReport::oom("ddp");
        assert!(!r.feasible());
        assert_eq!(r.system, "ddp");
        assert_eq!(r.tflops, 0.0);
    }
}
