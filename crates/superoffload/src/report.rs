//! The common result type every schedule simulation produces, plus the
//! machine-readable run profile that bundles it with a trace and telemetry.

use std::fmt;

use llm_model::workload::ExecutionPlan;
use superchip_sim::analysis::{analyze, AnalysisReport};
use superchip_sim::chrome_trace::to_chrome_trace_with_counters;
use superchip_sim::telemetry::MetricsRecorder;
use superchip_sim::{SimTime, TaskKind, Trace};

use crate::engine::StvStats;
use crate::trainer::{JournalSummary, StepJournal};

/// Outcome of simulating a training system on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// System name ("superoffload", "zero-offload", ...).
    pub system: String,
    /// The execution plan chosen by the system's planner, if feasible.
    pub plan: Option<ExecutionPlan>,
    /// Steady-state time per optimizer step.
    pub iter_time: SimTime,
    /// Effective throughput in TFLOPS per GPU (recomputation excluded).
    pub tflops: f64,
    /// Model FLOPs Utilization per GPU, in `[0, 1]`.
    pub mfu: f64,
    /// GPU busy fraction over the steady-state iteration.
    pub gpu_util: f64,
    /// CPU busy fraction over the steady-state iteration.
    pub cpu_util: f64,
    /// Memory-pool high-water marks `(pool name, peak bytes)` observed over
    /// the run, in pool registration order (empty when the builder tracks no
    /// pools).
    pub peaks: Vec<(String, u64)>,
    /// Numeric-plane STV counters, when the report describes a real
    /// training run (folded in via [`crate::trainer::Trainer::fold_into`]).
    pub stv: Option<StvStats>,
}

impl TrainReport {
    /// An out-of-memory (infeasible) report.
    pub fn oom(system: impl Into<String>) -> Self {
        TrainReport {
            system: system.into(),
            plan: None,
            iter_time: SimTime::ZERO,
            tflops: 0.0,
            mfu: 0.0,
            gpu_util: 0.0,
            cpu_util: 0.0,
            peaks: Vec::new(),
            stv: None,
        }
    }

    /// Whether the workload fit.
    pub fn feasible(&self) -> bool {
        self.plan.is_some()
    }

    /// Peak bytes of the named memory pool, if it was tracked.
    pub fn peak_bytes(&self, pool: &str) -> Option<u64> {
        self.peaks
            .iter()
            .find(|(name, _)| name == pool)
            .map(|&(_, bytes)| bytes)
    }
}

impl fmt::Display for TrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.feasible() {
            return write!(f, "{}: OOM", self.system);
        }
        write!(
            f,
            "{}: {:.1} TFLOPS ({} per iter, MFU {:.1}%, gpu {:.0}% cpu {:.0}%)",
            self.system,
            self.tflops,
            self.iter_time,
            self.mfu * 100.0,
            self.gpu_util * 100.0,
            self.cpu_util * 100.0
        )
    }
}

/// Schema identifier stamped into [`RunProfile::snapshot_json`] output (as
/// the `kind` meta entry, alongside the recorder's own schema tag).
pub const PROFILE_KIND: &str = "run-profile/v1";

/// A feasible simulation run bundled with everything observability needs:
/// the report, the execution trace, and the telemetry recorded during it.
///
/// Produced by [`crate::system::ScheduleCtx::finish_profiled`] (full
/// instrumentation: memory-pool occupancy, per-transfer bandwidth, queueing
/// delay) or derived after the fact with [`RunProfile::from_trace`] (trace-
/// level telemetry only).
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// The steady-state report.
    pub report: TrainReport,
    /// The execution trace of the run.
    pub trace: Trace,
    /// Telemetry recorded during (or derived from) the run.
    pub metrics: MetricsRecorder,
    /// Numeric-plane step-journal aggregate, when a real training run was
    /// journaled alongside the simulation (attach via
    /// [`RunProfile::attach_journal`]). Joins the two planes in one
    /// snapshot.
    pub journal: Option<JournalSummary>,
}

impl RunProfile {
    /// Derives trace-level telemetry from a finished run: `tasks.<kind>`
    /// counters, `busy-us:`/`util:` gauges per resource, an `active:<name>`
    /// 0/1 counter track for every resource that carried transfers or
    /// collectives, and `peak-bytes:<pool>` gauges from the report's peaks.
    ///
    /// This is the fallback for systems whose builders do not thread a
    /// recorder through the simulation.
    pub fn from_trace(report: TrainReport, trace: Trace) -> Self {
        let mut metrics = MetricsRecorder::new();
        let names = trace.resource_names().to_vec();
        let mut busy = vec![SimTime::ZERO; names.len()];
        for iv in trace.intervals() {
            metrics.add(&format!("tasks.{}", iv.kind), 1);
            busy[iv.resource.index()] += iv.duration();
        }
        let makespan = trace.makespan();
        for (name, b) in names.iter().zip(&busy) {
            metrics.set_gauge(&format!("busy-us:{name}"), b.as_micros());
            let util = if makespan > SimTime::ZERO {
                *b / makespan
            } else {
                0.0
            };
            metrics.set_gauge(&format!("util:{name}"), util);
        }
        metrics.set_gauge("makespan-us", makespan.as_micros());
        for iv in trace.intervals() {
            if matches!(iv.kind, TaskKind::Transfer | TaskKind::Collective) {
                let track = format!("active:{}", names[iv.resource.index()]);
                metrics.sample(&track, "busy", iv.start, 1.0);
                metrics.sample(&track, "busy", iv.end, 0.0);
            }
        }
        for (pool, bytes) in &report.peaks {
            metrics.set_gauge(&format!("peak-bytes:{pool}"), *bytes as f64);
        }
        RunProfile {
            report,
            trace,
            metrics,
            journal: None,
        }
    }

    /// Attaches a numeric-plane step journal's deterministic aggregate and
    /// per-step loss/grad-norm tracks to this profile, so
    /// [`RunProfile::snapshot_json`] carries both planes.
    pub fn attach_journal(&mut self, journal: &StepJournal) {
        self.journal = Some(journal.summary());
        journal.record_into(&mut self.metrics);
    }

    /// The Perfetto-loadable Chrome trace of this run: `"ph":"X"` slices for
    /// every task plus `"ph":"C"` counter tracks for every telemetry track.
    pub fn chrome_trace_json(&self) -> String {
        let names: Vec<&str> = self
            .trace
            .resource_names()
            .iter()
            .map(String::as_str)
            .collect();
        to_chrome_trace_with_counters(&self.trace, &names, &self.metrics)
    }

    /// Runs the critical-path / stall-attribution analyzer over this run's
    /// trace (see [`superchip_sim::analysis`]).
    pub fn analyze(&self) -> AnalysisReport {
        analyze(&self.trace)
    }

    /// The versioned `superoffload.analysis/v1` JSON snapshot of
    /// [`RunProfile::analyze`], stamped with this run's system name and
    /// feasibility. Deterministic: simulated time only, never wall-clock.
    pub fn analysis_json(&self) -> String {
        self.analyze().to_json(&[
            ("system", self.report.system.clone()),
            ("feasible", self.report.feasible().to_string()),
        ])
    }

    /// The versioned, deterministic metrics snapshot of this run: the
    /// recorder's counters/gauges/tracks plus `report.*` summary gauges.
    ///
    /// Byte-identical across repeated identical runs — simulated time only,
    /// never wall-clock.
    pub fn snapshot_json(&self) -> String {
        let mut metrics = self.metrics.clone();
        metrics.set_gauge("report.iter-time-us", self.report.iter_time.as_micros());
        metrics.set_gauge("report.tflops", self.report.tflops);
        metrics.set_gauge("report.mfu", self.report.mfu);
        metrics.set_gauge("report.gpu-util", self.report.gpu_util);
        metrics.set_gauge("report.cpu-util", self.report.cpu_util);
        for (pool, bytes) in &self.report.peaks {
            metrics.set_gauge(&format!("peak-bytes:{pool}"), *bytes as f64);
        }
        if let Some(stv) = self.report.stv {
            metrics.add("stv.steps", stv.steps);
            metrics.add("stv.skipped", stv.skipped);
            metrics.add("stv.clip-rollbacks", stv.clip_rollbacks);
        }
        metrics.snapshot_json(&[
            ("kind", PROFILE_KIND.to_string()),
            ("system", self.report.system.clone()),
            ("feasible", self.report.feasible().to_string()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::telemetry::validate_json;
    use superchip_sim::{Simulator, TaskSpec};

    #[test]
    fn display_covers_both_outcomes() {
        let oom = TrainReport::oom("ddp");
        assert_eq!(oom.to_string(), "ddp: OOM");
        let ok = TrainReport {
            system: "superoffload".into(),
            plan: Some(llm_model::workload::ExecutionPlan {
                micro_batch: 8,
                accum_steps: 1,
                checkpointing: false,
                activation_bytes: 0,
            }),
            iter_time: SimTime::from_secs(2.0),
            tflops: 242.6,
            mfu: 0.49,
            gpu_util: 1.0,
            cpu_util: 0.58,
            peaks: vec![("hbm".to_string(), 7 << 30)],
            stv: None,
        };
        let s = ok.to_string();
        assert!(s.contains("242.6") && s.contains("49.0%"));
        assert_eq!(ok.peak_bytes("hbm"), Some(7 << 30));
        assert_eq!(ok.peak_bytes("ddr"), None);
    }

    #[test]
    fn oom_report_is_infeasible() {
        let r = TrainReport::oom("ddp");
        assert!(!r.feasible());
        assert_eq!(r.system, "ddp");
        assert_eq!(r.tflops, 0.0);
        assert!(r.peaks.is_empty());
    }

    fn tiny_trace() -> Trace {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let link = sim.add_resource("link");
        let a = sim
            .add_task(TaskSpec::compute(gpu, SimTime::from_millis(2.0)).with_label("bwd"))
            .unwrap();
        sim.add_task(
            TaskSpec::transfer(link, SimTime::from_millis(1.0))
                .with_label("swap")
                .after(a),
        )
        .unwrap();
        sim.run().unwrap()
    }

    #[test]
    fn from_trace_derives_counters_and_activity() {
        let mut report = TrainReport::oom("demo");
        report.peaks = vec![("hbm".to_string(), 42)];
        let profile = RunProfile::from_trace(report, tiny_trace());
        assert_eq!(profile.metrics.counter("tasks.compute"), 1);
        assert_eq!(profile.metrics.counter("tasks.transfer"), 1);
        assert_eq!(profile.metrics.gauge("busy-us:gpu"), Some(2000.0));
        assert_eq!(profile.metrics.gauge("peak-bytes:hbm"), Some(42.0));
        let active = profile.metrics.track("active:link").unwrap();
        assert_eq!(active.samples, vec![(2000, 1.0), (3000, 0.0)]);
    }

    #[test]
    fn profile_outputs_are_valid_json() {
        let profile = RunProfile::from_trace(TrainReport::oom("demo"), tiny_trace());
        let trace_json = profile.chrome_trace_json();
        let snap = profile.snapshot_json();
        validate_json(&trace_json).unwrap();
        validate_json(&snap).unwrap();
        assert!(trace_json.contains(r#""ph":"X""#));
        assert!(trace_json.contains(r#""ph":"C""#));
        assert!(snap.contains("run-profile/v1"));
        assert!(snap.contains("report.tflops"));
    }

    #[test]
    fn stv_counters_fold_into_snapshot() {
        let mut report = TrainReport::oom("trainer");
        report.stv = Some(StvStats {
            steps: 9,
            skipped: 2,
            clip_rollbacks: 1,
        });
        let profile = RunProfile::from_trace(report, tiny_trace());
        let snap = profile.snapshot_json();
        assert!(snap.contains("\"stv.steps\": 9"));
        assert!(snap.contains("\"stv.skipped\": 2"));
        assert!(snap.contains("\"stv.clip-rollbacks\": 1"));
    }
}
