//! SuperOffload-Ulysses: long-sequence training (§4.7, Fig. 12).
//!
//! Ulysses sequence parallelism partitions the input along the sequence
//! dimension across `ranks` GPUs and exchanges attention inputs/outputs with
//! all-to-all collectives. Its ceiling is GPU memory: model states are fixed
//! (2Ψ + 2Ψ + 12Ψ sharded or not), so activation space runs out as sequences
//! grow. SuperOffload-Ulysses applies the weight-flow policy — optimizer
//! state and most weights live in CPU memory — freeing the GPU for
//! activations and reaching ~8× longer sequences.

use llm_model::flops::TrainingFlops;
use llm_model::memory::ModelStateMemory;
use llm_model::workload::Workload;
use llm_model::ModelConfig;
use superchip_sim::prelude::*;

use crate::casting::CastPlacement;
use crate::costs::{pipeline_step_time, ComputeTimes, OptimizerImpl};
use crate::fleet::FleetCtx;
use crate::report::TrainReport;
use crate::schedule::SuperOffloadOptions;
use crate::system::{Infeasible, IterationBuilder};

/// Which long-sequence system to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceSystem {
    /// Vanilla DeepSpeed-Ulysses (model states on GPU, ZeRO-3 sharded).
    Ulysses,
    /// Ulysses + SuperOffload weight-flow offloading.
    SuperOffloadUlysses,
}

impl SequenceSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SequenceSystem::Ulysses => "ulysses",
            SequenceSystem::SuperOffloadUlysses => "superoffload-ulysses",
        }
    }
}

/// Simulates one training iteration of `system` on `ranks` Superchips with
/// total sequence length `seq` (micro-batch of one sequence, as in the
/// paper's long-context experiments).
///
/// Returns [`TrainReport::oom`] when the workload does not fit;
/// [`simulate_ulysses_traced`] reports the structured reason instead.
pub fn simulate_ulysses(
    cluster: &ClusterSpec,
    ranks: u32,
    config: &ModelConfig,
    seq: u64,
    system: SequenceSystem,
    opts: &SuperOffloadOptions,
) -> TrainReport {
    crate::system::collapse(
        simulate_ulysses_traced(cluster, ranks, config, seq, system, opts),
        system.name(),
    )
}

/// Like [`simulate_ulysses`], additionally returning the execution trace,
/// or the structured [`Infeasible`] reason when the sequence cannot run.
pub fn simulate_ulysses_traced(
    cluster: &ClusterSpec,
    ranks: u32,
    config: &ModelConfig,
    seq: u64,
    system: SequenceSystem,
    opts: &SuperOffloadOptions,
) -> Result<(TrainReport, Trace), Infeasible> {
    let lease = FleetCtx::new(cluster).lease(0)?;
    let chip = lease.chip();
    let coll = lease.collective(ranks)?;
    let params = config.param_count();
    let states = ModelStateMemory::for_params(params);

    // Each rank holds seq/ranks tokens.
    let local_seq = (seq / ranks as u64).max(1);
    let local_wl = Workload::new(config.clone(), 1, local_seq);

    // --- Memory ------------------------------------------------------------
    let cap = lease.capacity();
    let staging = 4 * opts.bucket_bytes;

    let (gpu_resident, cpu_resident) = match system {
        SequenceSystem::Ulysses => {
            // DeepSpeed-Ulysses runs with ZeRO-1/2: FP16 parameters and
            // gradients replicated on every GPU ("the fixed GPU memory
            // consumption of model states"), optimizer state sharded.
            let resident =
                states.fp16_params + states.fp16_grads + states.optimizer_states() / ranks as u64;
            (resident, 0u64)
        }
        SequenceSystem::SuperOffloadUlysses => {
            // Weight-flow: one layer-group of FP16 weights resident at a
            // time; everything else on the CPU.
            let window = (states.fp16_params / config.layers.max(1) as u64) * 4;
            let cpu = 12 * params / ranks as u64 + states.fp16_params + staging;
            (window + staging, cpu)
        }
    };
    cap.fit_gpu(gpu_resident)?;
    cap.fit_cpu(cpu_resident)?;
    let plan = cap.plan(&local_wl, gpu_resident)?;

    // --- Costs --------------------------------------------------------------
    // Per-rank compute: full model FLOPs over the local tokens, with the
    // attention term using the *global* sequence (each token attends to the
    // whole prefix).
    let flops_global = TrainingFlops::for_iteration(config, 1, seq, plan.checkpointing);
    let per_rank = TrainingFlops {
        forward: flops_global.forward / ranks as f64,
        backward: flops_global.backward / ranks as f64,
        recompute: flops_global.recompute / ranks as f64,
    };
    let compute = ComputeTimes::new(&chip.gpu, &per_rank, 1);
    let overhead = SimTime::from_secs(opts.op_overhead_secs);

    // Ulysses all-to-all: Q, K, V out and O back per layer, fwd and bwd:
    // 8 all-to-alls of local_seq · hidden · 2 bytes per layer.
    let a2a_bytes = 2 * local_seq * config.hidden as u64;
    let a2a_per_layer = coll.all_to_all(a2a_bytes) * 8.0;
    let comm_total = a2a_per_layer * config.layers as f64;

    // Weight streaming (SuperOffload-Ulysses): 2Ψ per pass, twice.
    let stream_bytes = match system {
        SequenceSystem::Ulysses => 0,
        SequenceSystem::SuperOffloadUlysses => states.fp16_params,
    };

    // Optimizer: Ulysses steps sharded states on GPU; SuperOffload-Ulysses
    // steps on the CPU (overlapped via STV).
    let shard = params / ranks as u64;

    // --- Graph ---------------------------------------------------------------
    let mut ctx = lease.ctx();
    ctx.plan_residency(chip, gpu_resident + plan.activation_bytes, cpu_resident);

    let mut iters = IterationBuilder::new();
    for _ in 0..opts.iterations {
        let deps: Vec<TaskId> = iters.start_deps();
        let mut fwd_deps = deps.clone();
        if stream_bytes > 0 {
            let fetch = ctx.sim.add_task(
                TaskSpec::transfer(ctx.h2d, chip.c2c.transfer_time(stream_bytes) + overhead)
                    .with_label("weight-fetch-fwd")
                    .tagged(TaskTag::Eviction)
                    .after_all(deps.iter().copied()),
            )?;
            fwd_deps.push(fetch);
        }
        // Attention all-to-alls overlap layer compute only partially;
        // model as alternating compute/comm halves: comm serializes on
        // the fabric, compute on the GPU, linked per layer pair.
        let half_layers = 2u32;
        let fwd_chunk = compute.fwd_per_micro / half_layers as f64;
        let comm_chunk = comm_total / (2.0 * half_layers as f64); // fwd half of comm
        let mut prev = None;
        for i in 0..half_layers {
            let mut spec = TaskSpec::compute(ctx.gpu, fwd_chunk + overhead)
                .with_label(format!("fwd[{i}]"))
                .after_all(fwd_deps.iter().copied());
            if let Some(p) = prev {
                spec = spec.after(p);
            }
            let c = ctx.sim.add_task(spec)?;
            let a2a = ctx.sim.add_task(
                TaskSpec::collective(ctx.net, comm_chunk + overhead)
                    .with_label(format!("all2all-fwd[{i}]"))
                    .after(c),
            )?;
            prev = Some(a2a);
        }
        let mut bwd_deps: Vec<TaskId> = prev.into_iter().collect();
        if stream_bytes > 0 {
            let fetch = ctx.sim.add_task(
                TaskSpec::transfer(ctx.h2d, chip.c2c.transfer_time(stream_bytes) + overhead)
                    .with_label("weight-fetch-bwd")
                    .tagged(TaskTag::Eviction)
                    .after_all(bwd_deps.iter().copied()),
            )?;
            bwd_deps.push(fetch);
        }
        let bwd_chunk = compute.bwd_per_micro / half_layers as f64;
        for i in 0..half_layers {
            let mut spec = TaskSpec::compute(ctx.gpu, bwd_chunk + overhead)
                .with_label(format!("bwd[{i}]"))
                .after_all(bwd_deps.iter().copied());
            if let Some(p) = prev {
                spec = spec.after(p);
            }
            let c = ctx.sim.add_task(spec)?;
            let a2a = ctx.sim.add_task(
                TaskSpec::collective(ctx.net, comm_chunk + overhead)
                    .with_label(format!("all2all-bwd[{i}]"))
                    .after(c),
            )?;
            prev = Some(a2a);
        }
        let bwd_done = prev.expect("at least one layer half");

        // Gradient reduce-scatter across the SP group (gradients are
        // summed over sequence shards).
        let rs = ctx.reduce_scatter(
            &coll,
            states.fp16_grads,
            overhead,
            "grad-reduce-scatter",
            bwd_done,
        )?;

        let gate_dep = match system {
            SequenceSystem::Ulysses => {
                // GPU-resident sharded optimizer step.
                ctx.sim.add_task(
                    TaskSpec::compute(
                        ctx.gpu,
                        crate::costs::gpu_optimizer_time(&chip.gpu, shard) + overhead,
                    )
                    .with_label("step-gpu")
                    .tagged(TaskTag::OptimizerStep)
                    .after(rs),
                )?
            }
            SequenceSystem::SuperOffloadUlysses => {
                let out = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.d2h,
                        CastPlacement::GpuCastMoveFp32.one_way_time(chip, shard) + overhead,
                    )
                    .with_label("grad-out")
                    .after(rs),
                )?;
                let step = ctx.sim.add_task(
                    TaskSpec::compute(
                        ctx.cpu,
                        pipeline_step_time(OptimizerImpl::GraceAdam, &chip.cpu, shard) + overhead,
                    )
                    .with_label("step-cpu")
                    .tagged(TaskTag::OptimizerStep)
                    .after(out),
                )?;
                ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        CastPlacement::GpuCastMoveFp32.one_way_time(chip, shard) + overhead,
                    )
                    .with_label("param-in")
                    .after(step),
                )?
            }
        };

        iters.close(&mut ctx, [gate_dep])?;
    }

    let gates = iters.gates().to_vec();
    ctx.finish(system.name(), &gates, per_rank.effective(), chip, plan)
}

/// Largest power-of-two sequence length (in multiples of 1024) `system` can
/// train, up to `ceiling` tokens.
pub fn max_sequence_length(
    cluster: &ClusterSpec,
    ranks: u32,
    config: &ModelConfig,
    system: SequenceSystem,
    ceiling: u64,
    opts: &SuperOffloadOptions,
) -> Option<u64> {
    let mut best = None;
    let mut seq = 1024u64;
    while seq <= ceiling {
        let r = simulate_ulysses(cluster, ranks, config, seq, system, opts);
        if r.feasible() {
            best = Some(seq);
        }
        seq *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    fn cfg_13b() -> ModelConfig {
        let mut c = ModelConfig::by_name("13B").unwrap();
        c.max_seq = 1 << 21; // allow long positions
        c
    }

    fn cluster() -> ClusterSpec {
        presets::gh200_nvl2_cluster(4)
    }

    #[test]
    fn superoffload_ulysses_reaches_much_longer_sequences() {
        // Fig. 12: SuperOffload-Ulysses trains ~8× longer sequences.
        let opts = SuperOffloadOptions::default();
        let c = cluster();
        let cfg = cfg_13b();
        let vanilla =
            max_sequence_length(&c, 8, &cfg, SequenceSystem::Ulysses, 1 << 21, &opts).unwrap();
        let ours = max_sequence_length(
            &c,
            8,
            &cfg,
            SequenceSystem::SuperOffloadUlysses,
            1 << 21,
            &opts,
        )
        .unwrap();
        let ratio = ours as f64 / vanilla as f64;
        assert!(ratio >= 4.0, "only {ratio}× longer ({vanilla} -> {ours})");
    }

    #[test]
    fn million_tokens_on_eight_chips() {
        // Fig. 12 headline: 13B at 1M tokens on 8 GH200.
        let r = simulate_ulysses(
            &cluster(),
            8,
            &cfg_13b(),
            1 << 20,
            SequenceSystem::SuperOffloadUlysses,
            &SuperOffloadOptions::default(),
        );
        assert!(r.feasible(), "13B @ 1M tokens should fit on 8 chips");
        assert!(r.mfu > 0.3, "MFU {}", r.mfu);
    }

    #[test]
    fn mfu_advantage_at_shared_lengths() {
        // Where vanilla Ulysses still fits, SuperOffload-Ulysses matches or
        // beats its MFU (it avoids activation checkpointing longer).
        let opts = SuperOffloadOptions::default();
        let c = cluster();
        let cfg = cfg_13b();
        let seq = 32 * 1024;
        let vanilla = simulate_ulysses(&c, 8, &cfg, seq, SequenceSystem::Ulysses, &opts);
        let ours = simulate_ulysses(&c, 8, &cfg, seq, SequenceSystem::SuperOffloadUlysses, &opts);
        assert!(vanilla.feasible() && ours.feasible());
        assert!(
            ours.mfu >= vanilla.mfu * 0.9,
            "ours {} vs vanilla {}",
            ours.mfu,
            vanilla.mfu
        );
    }

    #[test]
    fn more_ranks_extend_reach() {
        let opts = SuperOffloadOptions::default();
        let c = cluster();
        let cfg = cfg_13b();
        let four = max_sequence_length(
            &c,
            4,
            &cfg,
            SequenceSystem::SuperOffloadUlysses,
            1 << 21,
            &opts,
        );
        let eight = max_sequence_length(
            &c,
            8,
            &cfg,
            SequenceSystem::SuperOffloadUlysses,
            1 << 21,
            &opts,
        );
        assert!(eight.unwrap_or(0) >= four.unwrap_or(0));
    }

    #[test]
    fn system_names() {
        assert_eq!(SequenceSystem::Ulysses.name(), "ulysses");
        assert_eq!(
            SequenceSystem::SuperOffloadUlysses.name(),
            "superoffload-ulysses"
        );
    }
}
