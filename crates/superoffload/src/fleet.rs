//! Fleet-level resource leasing: per-node views over a multi-Superchip
//! cluster.
//!
//! Schedule builders used to reach for ambient globals — `Capacity::of`
//! (which bakes in `GPU_USABLE`/`CPU_USABLE`), `ClusterSpec::collective_link`
//! (which panics on oversized spans), and `ScheduleCtx::standard()` (which
//! registers bare resource names with no notion of which node owns them).
//! That coupling is what ROADMAP item 5 calls the "one schedule, one node"
//! assumption.
//!
//! This module replaces the globals with an explicit lease protocol:
//!
//! 1. [`FleetCtx::new`] wraps a [`ClusterSpec`] and knows the fleet shape
//!    (node count, GPU endpoints on the fabric).
//! 2. [`FleetCtx::lease`] hands out a [`NodeLease`] for one node — the only
//!    door to that node's chip spec, usable-memory [`Capacity`], collective
//!    handles over the fabric, and a node-namespaced [`ScheduleCtx`].
//! 3. Builders construct their task graph against the lease. A collective
//!    that cannot fit the fabric surfaces as
//!    [`Infeasible::FabricCapacity`] instead of a panic.
//!
//! Node 0's lease yields a [`ScheduleCtx`] with exactly the bare
//! [`crate::system::STANDARD_RESOURCES`] names, which keeps every
//! single-node artifact (report, trace, JSON) byte-identical to the
//! pre-fleet layout — the guardrail test in `bench` pins this.

use superchip_sim::collective::CollectiveCost;
use superchip_sim::prelude::*;

use crate::system::{Capacity, Infeasible, ScheduleCtx};

/// Fleet-level context over a cluster: the factory for [`NodeLease`]s.
#[derive(Debug, Clone, Copy)]
pub struct FleetCtx<'a> {
    cluster: &'a ClusterSpec,
}

impl<'a> FleetCtx<'a> {
    /// Wraps `cluster` as a leasable fleet.
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        FleetCtx { cluster }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// Number of nodes in the fleet.
    pub fn node_count(&self) -> u32 {
        self.cluster.node_count
    }

    /// GPU endpoints the fabric connects (= Superchips across the fleet).
    pub fn total_gpus(&self) -> u32 {
        self.cluster.total_gpus()
    }

    /// Leases node `node`'s resources: its chip, memory capacities, link
    /// endpoints, and a node-namespaced schedule context.
    ///
    /// # Errors
    /// [`Infeasible::Parallelism`] when `node` is outside the fleet.
    pub fn lease(&self, node: u32) -> Result<NodeLease<'a>, Infeasible> {
        if node >= self.cluster.node_count {
            return Err(Infeasible::Parallelism(format!(
                "node {node} leased but fleet has {} nodes",
                self.cluster.node_count
            )));
        }
        Ok(NodeLease {
            node,
            chip: &self.cluster.node.chip,
            cluster: Some(self.cluster),
        })
    }
}

/// A lease on one node's resources: the handle schedule builders construct
/// their task graphs against instead of ambient globals.
///
/// Obtained from [`FleetCtx::lease`], or [`NodeLease::solo`] for the
/// degenerate single-Superchip case (no fabric beyond the chip itself).
#[derive(Debug, Clone, Copy)]
pub struct NodeLease<'a> {
    node: u32,
    chip: &'a ChipSpec,
    /// `None` for a solo lease: one chip, no inter-node fabric.
    cluster: Option<&'a ClusterSpec>,
}

impl<'a> NodeLease<'a> {
    /// A lease over a lone Superchip outside any cluster — what the
    /// single-chip SuperOffload schedule uses. Collectives beyond one rank
    /// are a [`Infeasible::FabricCapacity`] because there is no fabric.
    pub fn solo(chip: &'a ChipSpec) -> Self {
        NodeLease {
            node: 0,
            chip,
            cluster: None,
        }
    }

    /// The node index this lease covers.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The leased node's Superchip.
    pub fn chip(&self) -> &'a ChipSpec {
        self.chip
    }

    /// GPU endpoints reachable over this lease's fabric (1 for a solo
    /// lease).
    pub fn fleet_gpus(&self) -> u32 {
        self.cluster.map_or(1, |c| c.total_gpus())
    }

    /// Usable HBM/DDR capacities of the leased node, after the framework
    /// and OS reservations.
    pub fn capacity(&self) -> Capacity {
        Capacity::of(self.chip)
    }

    /// Checks that a collective spanning `ranks` GPUs fits the fabric.
    ///
    /// # Errors
    /// [`Infeasible::FabricCapacity`] when `ranks` is zero or exceeds the
    /// fabric's GPU endpoints.
    pub fn check_span(&self, ranks: u32) -> Result<(), Infeasible> {
        if ranks == 0 || ranks > self.fleet_gpus() {
            return Err(Infeasible::FabricCapacity {
                ranks,
                fleet_gpus: self.fleet_gpus(),
            });
        }
        Ok(())
    }

    /// A collective cost handle for `ranks` GPUs over the narrowest link
    /// the collective must cross (intra-node if the span fits in one node,
    /// the inter-node fabric otherwise).
    ///
    /// # Errors
    /// [`Infeasible::FabricCapacity`] when the span does not fit the
    /// fabric (see [`check_span`](NodeLease::check_span)).
    pub fn collective(&self, ranks: u32) -> Result<CollectiveCost, Infeasible> {
        self.collective_spanning(ranks, ranks)
    }

    /// A collective cost handle for `participants` ranks whose traffic
    /// must cross the narrowest link of a `span`-GPU placement — e.g.
    /// Megatron's data-parallel all-reduce, where `ranks / mp`
    /// participants are spread across all `ranks` GPUs so the collective
    /// crosses whatever link the full placement spans.
    ///
    /// # Errors
    /// [`Infeasible::FabricCapacity`] when `span` does not fit the fabric
    /// or `participants` is zero or exceeds `span`.
    pub fn collective_spanning(
        &self,
        span: u32,
        participants: u32,
    ) -> Result<CollectiveCost, Infeasible> {
        self.check_span(span)?;
        if participants == 0 || participants > span {
            return Err(Infeasible::FabricCapacity {
                ranks: participants,
                fleet_gpus: self.fleet_gpus(),
            });
        }
        let link = match self.cluster {
            Some(cluster) => {
                *cluster
                    .try_collective_link(span)
                    .ok_or(Infeasible::FabricCapacity {
                        ranks: span,
                        fleet_gpus: self.fleet_gpus(),
                    })?
            }
            // Solo lease: only span == 1 passes check_span, and a
            // one-rank collective is free regardless of link, so the
            // chip's remote link is a placeholder that never prices in.
            None => self.chip.remote_link,
        };
        Ok(CollectiveCost::new(link, participants))
    }

    /// A schedule context whose standard resources live in this node's
    /// namespace (bare names for node 0, `node<N>/`-prefixed otherwise).
    pub fn ctx(&self) -> ScheduleCtx {
        ScheduleCtx::for_node(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;

    #[test]
    fn lease_rejects_out_of_fleet_nodes() {
        let cluster = presets::gh200_superchip_fleet(4);
        let fleet = FleetCtx::new(&cluster);
        assert_eq!(fleet.node_count(), 4);
        assert!(fleet.lease(3).is_ok());
        assert!(matches!(fleet.lease(4), Err(Infeasible::Parallelism(_))));
    }

    #[test]
    fn collective_surfaces_fabric_capacity() {
        let cluster = presets::gh200_superchip_fleet(4);
        let fleet = FleetCtx::new(&cluster);
        let lease = fleet.lease(0).unwrap();
        assert!(lease.collective(4).is_ok());
        assert!(matches!(
            lease.collective(5),
            Err(Infeasible::FabricCapacity {
                ranks: 5,
                fleet_gpus: 4
            })
        ));
        assert!(matches!(
            lease.collective(0),
            Err(Infeasible::FabricCapacity { ranks: 0, .. })
        ));
    }

    #[test]
    fn collective_picks_fabric_link_across_nodes() {
        let cluster = presets::gh200_superchip_fleet(4);
        let lease = FleetCtx::new(&cluster).lease(0).unwrap();
        // Any multi-Superchip span crosses Slingshot in the fleet preset.
        let coll = lease.collective(4).unwrap();
        assert_eq!(coll.link().peak_bandwidth(), 25e9);
        assert_eq!(coll.ranks(), 4);
    }

    #[test]
    fn solo_lease_matches_legacy_capacity() {
        let chip = presets::gh200_chip();
        let lease = NodeLease::solo(&chip);
        assert_eq!(lease.capacity(), Capacity::of(&chip));
        assert_eq!(lease.fleet_gpus(), 1);
        // One-rank collectives are free; more have no fabric to run on.
        assert_eq!(
            lease.collective(1).unwrap().all_reduce(1 << 30),
            SimTime::ZERO
        );
        assert!(matches!(
            lease.collective(2),
            Err(Infeasible::FabricCapacity {
                ranks: 2,
                fleet_gpus: 1
            })
        ));
    }

    #[test]
    fn node_namespaced_ctx_prefixes_resources() {
        let cluster = presets::gh200_superchip_fleet(2);
        let fleet = FleetCtx::new(&cluster);
        let ctx0 = fleet.lease(0).unwrap().ctx();
        let ctx1 = fleet.lease(1).unwrap().ctx();
        assert_eq!(ctx0.sim.resource_name(ctx0.gpu), Some("gpu"));
        assert_eq!(ctx1.sim.resource_name(ctx1.gpu), Some("node1/gpu"));
    }
}
