//! The real numeric Speculation-then-Validation training engine (§4.4).
//!
//! Two engines over the miniature GPT of [`llm_model`]:
//!
//! - [`SyncEngine`] — the reference synchronize-then-execute loop: wait for
//!   all gradients, check NaN/Inf, compute the global norm, clip, then step.
//! - [`StvEngine`] — the paper's scheme: partition gradients into buckets;
//!   speculatively Adam-step each bucket on worker threads *while* a
//!   validator thread concurrently scans for NaN/Inf and accumulates the
//!   global norm; on a violation, roll the update back in place and either
//!   skip (overflow) or re-execute with clipped gradients.
//!
//! STV is an **exact** optimization: the test suite drives both engines on
//! identical streams — including forced overflow and clipping events — and
//! asserts bit-identical parameters after every step.

use crossbeam::channel;
use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, GraceAdam};
use grace_optim::clip::{apply_clip, clip_factor};
use grace_optim::mixed_precision::{LossScaler, ScaleEvent};
use grace_optim::rollback::RollbackGuard;
use llm_model::transformer::GptModel;
use tensorlite::cast::{
    bf16_to_f32_slice, f16_to_f32_slice, f32_to_bf16_slice, f32_to_f16_slice, sum_of_squares,
};
use tensorlite::TensorError;

/// The half-precision format gradients cross the link in.
///
/// FP16 has an 11-bit significand but overflows at ±65504 (loss scaling and
/// the STV overflow check exist because of it); BF16 keeps FP32's range with
/// an 8-bit significand, making overflow skips essentially disappear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// IEEE binary16.
    #[default]
    F16,
    /// bfloat16.
    Bf16,
}

impl Precision {
    /// Round-trips an `f32` slice through this format (the numeric effect
    /// of crossing the C2C link in half precision).
    pub fn roundtrip(self, values: &[f32]) -> Vec<f32> {
        match self {
            Precision::F16 => f16_to_f32_slice(&f32_to_f16_slice(values)),
            Precision::Bf16 => bf16_to_f32_slice(&f32_to_bf16_slice(values)),
        }
    }
}

/// Outcome of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The speculative update was committed unchanged.
    Applied {
        /// Mean loss over the batch.
        loss: f32,
        /// Global gradient norm (unclipped).
        grad_norm: f64,
    },
    /// Gradients exceeded the clipping threshold: rolled back and
    /// re-executed with clipped gradients.
    Clipped {
        /// Mean loss over the batch.
        loss: f32,
        /// Global gradient norm before clipping.
        grad_norm: f64,
    },
    /// NaN/Inf detected: update rolled back, iteration skipped, loss scale
    /// reduced.
    Skipped {
        /// Mean loss over the batch (may itself be non-finite).
        loss: f32,
    },
}

impl StepOutcome {
    /// The loss of this step.
    pub fn loss(&self) -> f32 {
        match *self {
            StepOutcome::Applied { loss, .. }
            | StepOutcome::Clipped { loss, .. }
            | StepOutcome::Skipped { loss } => loss,
        }
    }

    /// Whether a rollback occurred (clip or skip).
    pub fn rolled_back(&self) -> bool {
        !matches!(self, StepOutcome::Applied { .. })
    }
}

/// Counters accumulated over a training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StvStats {
    /// Optimizer steps applied (including clipped re-executions).
    pub steps: u64,
    /// Iterations skipped due to NaN/Inf.
    pub skipped: u64,
    /// Rollbacks triggered by gradient clipping.
    pub clip_rollbacks: u64,
}

impl StvStats {
    /// Total rollback events (skips + clip rollbacks).
    pub fn rollbacks(&self) -> u64 {
        self.skipped + self.clip_rollbacks
    }
}

/// Wall-clock accumulator for one instrumented phase of the training step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Times the phase executed.
    pub count: u64,
    /// Total wall-clock seconds across executions.
    pub total_secs: f64,
}

impl SpanStats {
    /// Records one execution that started at `from`.
    fn record(&mut self, from: std::time::Instant) {
        self.count += 1;
        self.total_secs += from.elapsed().as_secs_f64();
    }

    /// Counts an occurrence with no measurable work (e.g. a logical
    /// rollback the synchronous engine never had to materialize).
    fn bump(&mut self) {
        self.count += 1;
    }

    /// Mean seconds per execution (zero when the phase never ran).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// Wall-clock span totals for the phases of a training step, accumulated
/// across a run. These time the *real* numeric engine (host wall-clock, not
/// simulated time), so they are diagnostic output — they never enter the
/// deterministic run-profile snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineSpans {
    /// Speculative per-bucket optimizer execution (the concurrent
    /// speculate+validate window in STV; never runs in the sync engine).
    pub speculate: SpanStats,
    /// Overflow scan and global-norm reduction (verdict collection in STV;
    /// the post-wait check in the sync engine).
    pub validate: SpanStats,
    /// In-place state restoration after a failed validation. The count
    /// always equals [`StvStats::rollbacks`]; in the sync engine the time
    /// is zero because nothing was speculated.
    pub rollback: SpanStats,
    /// The committed optimizer step (the clipped re-execution in STV; the
    /// main Adam step in the sync engine).
    pub optimizer_step: SpanStats,
}

impl EngineSpans {
    /// Folds the span totals into a recorder: `span.<phase>.count` counters
    /// and `span.<phase>.total-secs` gauges.
    pub fn record_into(&self, rec: &mut superchip_sim::telemetry::MetricsRecorder) {
        for (name, span) in [
            ("speculate", &self.speculate),
            ("validate", &self.validate),
            ("rollback", &self.rollback),
            ("optimizer-step", &self.optimizer_step),
        ] {
            rec.add(&format!("span.{name}.count"), span.count);
            rec.set_gauge(&format!("span.{name}.total-secs"), span.total_secs);
        }
    }
}

/// Shared engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Global gradient-norm clipping threshold.
    pub max_grad_norm: f64,
    /// Initial dynamic loss scale.
    pub initial_loss_scale: f32,
    /// Gradient buckets for the STV pipeline.
    pub buckets: usize,
    /// Half-precision wire format for gradients.
    pub precision: Precision,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            adam: AdamConfig::default(),
            max_grad_norm: 1.0,
            initial_loss_scale: 64.0,
            buckets: 4,
            precision: Precision::default(),
        }
    }
}

/// One (input, target) sequence pair.
pub type Sample = (Vec<usize>, Vec<usize>);

/// Computes scaled-FP16-roundtripped gradients for a batch: the numeric
/// equivalent of producing FP16 gradients on the GPU and shipping them to
/// the CPU. Returns `(mean_loss, grads_fp32_after_roundtrip)` where the
/// gradients are still multiplied by the loss scale.
fn batch_gradients(
    model: &mut GptModel,
    batch: &[Sample],
    scale: f32,
    precision: Precision,
) -> Result<(f32, Vec<f32>), TensorError> {
    model.zero_grads();
    let mut loss_sum = 0.0f64;
    for (x, y) in batch {
        loss_sum += model.forward_backward(x, y)? as f64;
    }
    let mean_loss = (loss_sum / batch.len().max(1) as f64) as f32;
    let inv_b = 1.0 / batch.len().max(1) as f32;
    // Scale (emulating scaled loss) and round-trip through the half-precision
    // wire format — exactly what crossing the link does to the values.
    let scaled: Vec<f32> = model.grads().iter().map(|g| g * scale * inv_b).collect();
    Ok((mean_loss, precision.roundtrip(&scaled)))
}

/// Splits `n` elements into `buckets` contiguous ranges.
fn bucket_ranges(n: usize, buckets: usize) -> Vec<std::ops::Range<usize>> {
    let buckets = buckets.clamp(1, n.max(1));
    let per = n.div_ceil(buckets);
    (0..buckets)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Deterministic global norm from per-bucket partial sums (both engines use
/// this helper so their floating-point reduction order is identical).
fn norm_from_partials(partials: &[f64]) -> f64 {
    partials.iter().sum::<f64>().sqrt()
}

/// The synchronous reference engine (synchronize-then-execute).
#[derive(Debug)]
pub struct SyncEngine {
    model: GptModel,
    state: AdamState,
    scaler: LossScaler,
    cfg: EngineConfig,
    step: u64,
    stats: StvStats,
    spans: EngineSpans,
    last_scale_event: ScaleEvent,
}

impl SyncEngine {
    /// Wraps a model in a synchronous training loop.
    pub fn new(model: GptModel, cfg: EngineConfig) -> Self {
        let n = model.num_params();
        SyncEngine {
            model,
            state: AdamState::new(n),
            scaler: LossScaler::new(cfg.initial_loss_scale),
            cfg,
            step: 0,
            stats: StvStats::default(),
            spans: EngineSpans::default(),
            last_scale_event: ScaleEvent::default(),
        }
    }

    /// The current dynamic loss scale.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// What the most recent step did to the loss scale.
    pub fn last_scale_event(&self) -> ScaleEvent {
        self.last_scale_event
    }

    /// The wrapped model.
    pub fn model(&self) -> &GptModel {
        &self.model
    }

    /// Run statistics so far.
    pub fn stats(&self) -> StvStats {
        self.stats
    }

    /// Wall-clock span totals accumulated so far.
    pub fn spans(&self) -> EngineSpans {
        self.spans
    }

    /// Snapshots the full training state.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            params: self.model.params().to_vec(),
            m: self.state.m.clone(),
            v: self.state.v.clone(),
            step: self.step,
            loss_scale: self.scaler.scale(),
            scaler_good_steps: self.scaler.good_steps(),
            overflow_count: self.scaler.overflow_count(),
        }
    }

    /// Restores training state from a checkpoint; the continued trajectory
    /// is bit-identical to an uninterrupted run.
    ///
    /// # Panics
    /// Panics if the checkpoint's parameter count differs from the model's.
    pub fn restore(&mut self, ckpt: &crate::checkpoint::Checkpoint) {
        assert_eq!(
            ckpt.params.len(),
            self.model.num_params(),
            "checkpoint shape mismatch"
        );
        self.model.params_mut().copy_from_slice(&ckpt.params);
        self.state.m.copy_from_slice(&ckpt.m);
        self.state.v.copy_from_slice(&ckpt.v);
        self.step = ckpt.step;
        self.scaler =
            LossScaler::from_state(ckpt.loss_scale, ckpt.scaler_good_steps, ckpt.overflow_count);
    }

    /// Executes one synchronous training step.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward/backward pass.
    pub fn train_step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let scale = self.scaler.scale();
        let (loss, mut grads) = batch_gradients(&mut self.model, batch, scale, self.cfg.precision)?;

        // Wait-for-everything, then validate (the STE ordering). The
        // round-trip already baked any overflow into the values as ±inf.
        let validate_from = std::time::Instant::now();
        let overflow = grads.iter().any(|g| !g.is_finite());
        if overflow {
            self.spans.validate.record(validate_from);
            // Nothing was speculated, so the "rollback" is purely logical.
            self.spans.rollback.bump();
            self.last_scale_event = self.scaler.update_with(true);
            self.stats.skipped += 1;
            return Ok(StepOutcome::Skipped { loss });
        }
        self.last_scale_event = self.scaler.update_with(false);

        // Unscale, then global norm over the same bucket partials STV uses.
        let inv = 1.0 / scale;
        for g in &mut grads {
            *g *= inv;
        }
        let ranges = bucket_ranges(grads.len(), self.cfg.buckets);
        let partials: Vec<f64> = ranges
            .iter()
            .map(|r| sum_of_squares(&grads[r.clone()]))
            .collect();
        let norm = norm_from_partials(&partials);
        let factor = clip_factor(norm, self.cfg.max_grad_norm);
        apply_clip(&mut grads, factor);
        self.spans.validate.record(validate_from);

        let step_from = std::time::Instant::now();
        self.step += 1;
        GraceAdam::default().step(
            &self.cfg.adam,
            self.step,
            self.model.params_mut(),
            &grads,
            &mut self.state,
        );
        self.spans.optimizer_step.record(step_from);
        self.stats.steps += 1;
        if factor < 1.0 {
            self.spans.rollback.bump();
            self.stats.clip_rollbacks += 1; // counted as "would clip" events
            Ok(StepOutcome::Clipped {
                loss,
                grad_norm: norm,
            })
        } else {
            Ok(StepOutcome::Applied {
                loss,
                grad_norm: norm,
            })
        }
    }
}

/// The speculation-then-validation engine.
#[derive(Debug)]
pub struct StvEngine {
    model: GptModel,
    state: AdamState,
    scaler: LossScaler,
    cfg: EngineConfig,
    step: u64,
    stats: StvStats,
    spans: EngineSpans,
    last_scale_event: ScaleEvent,
}

/// Per-bucket validation result produced by the validator thread.
#[derive(Debug, Clone, Copy)]
struct BucketVerdict {
    index: usize,
    overflow: bool,
    sum_sq_unscaled: f64,
}

impl StvEngine {
    /// Wraps a model in an STV training loop.
    pub fn new(model: GptModel, cfg: EngineConfig) -> Self {
        let n = model.num_params();
        StvEngine {
            model,
            state: AdamState::new(n),
            scaler: LossScaler::new(cfg.initial_loss_scale),
            cfg,
            step: 0,
            stats: StvStats::default(),
            spans: EngineSpans::default(),
            last_scale_event: ScaleEvent::default(),
        }
    }

    /// The current dynamic loss scale.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// What the most recent step did to the loss scale.
    pub fn last_scale_event(&self) -> ScaleEvent {
        self.last_scale_event
    }

    /// The wrapped model.
    pub fn model(&self) -> &GptModel {
        &self.model
    }

    /// Run statistics so far.
    pub fn stats(&self) -> StvStats {
        self.stats
    }

    /// Wall-clock span totals accumulated so far.
    pub fn spans(&self) -> EngineSpans {
        self.spans
    }

    /// Snapshots the full training state.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            params: self.model.params().to_vec(),
            m: self.state.m.clone(),
            v: self.state.v.clone(),
            step: self.step,
            loss_scale: self.scaler.scale(),
            scaler_good_steps: self.scaler.good_steps(),
            overflow_count: self.scaler.overflow_count(),
        }
    }

    /// Restores training state from a checkpoint; the continued trajectory
    /// is bit-identical to an uninterrupted run.
    ///
    /// # Panics
    /// Panics if the checkpoint's parameter count differs from the model's.
    pub fn restore(&mut self, ckpt: &crate::checkpoint::Checkpoint) {
        assert_eq!(
            ckpt.params.len(),
            self.model.num_params(),
            "checkpoint shape mismatch"
        );
        self.model.params_mut().copy_from_slice(&ckpt.params);
        self.state.m.copy_from_slice(&ckpt.m);
        self.state.v.copy_from_slice(&ckpt.v);
        self.step = ckpt.step;
        self.scaler =
            LossScaler::from_state(ckpt.loss_scale, ckpt.scaler_good_steps, ckpt.overflow_count);
    }

    /// Executes one STV training step: speculative per-bucket optimizer
    /// updates race ahead of a concurrent validator; a failed validation
    /// rolls back in place.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward/backward pass.
    pub fn train_step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let scale = self.scaler.scale();
        let (loss, mut grads) = batch_gradients(&mut self.model, batch, scale, self.cfg.precision)?;
        let n = grads.len();
        let ranges = bucket_ranges(n, self.cfg.buckets);
        let speculative_step = self.step + 1;

        // Capture rollback guards before speculating.
        let guards: Vec<RollbackGuard> = ranges
            .iter()
            .map(|r| RollbackGuard::capture(self.model.params(), &self.state, r.start, r.len()))
            .collect();

        // Unscale in place (same elementwise op the sync engine performs).
        let inv = 1.0 / scale;
        for g in &mut grads {
            *g *= inv;
        }

        // --- Speculate and validate concurrently -------------------------
        let (verdict_tx, verdict_rx) = channel::unbounded::<BucketVerdict>();
        let adam = self.cfg.adam;
        let grads_ref: &[f32] = &grads;
        let ranges_ref: &[std::ops::Range<usize>] = &ranges;

        let speculate_from = std::time::Instant::now();
        {
            // Split params and moments into disjoint bucket slices.
            let mut param_slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
            let mut m_slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
            let mut v_slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
            let mut p_rest = self.model.params_mut();
            let mut taken = 0usize;
            for r in ranges_ref {
                let (head, tail) = p_rest.split_at_mut(r.end - taken);
                param_slices.push(head);
                p_rest = tail;
                taken = r.end;
            }
            let mut m_rest = self.state.m.as_mut_slice();
            let mut v_rest = self.state.v.as_mut_slice();
            taken = 0;
            for r in ranges_ref {
                let (mh, mt) = m_rest.split_at_mut(r.end - taken);
                let (vh, vt) = v_rest.split_at_mut(r.end - taken);
                m_slices.push(mh);
                v_slices.push(vh);
                m_rest = mt;
                v_rest = vt;
                taken = r.end;
            }

            std::thread::scope(|scope| {
                // Validator thread: scans buckets for overflow (in the FP16
                // domain, i.e. on the scaled values) and accumulates the
                // unscaled norm — concurrently with the speculative steps.
                scope.spawn(move || {
                    for (i, r) in ranges_ref.iter().enumerate() {
                        let bucket = &grads_ref[r.clone()];
                        // The wire round-trip baked any overflow into the
                        // values as ±inf/NaN; scan for non-finite entries.
                        let overflow = bucket.iter().any(|g| !g.is_finite());
                        let sum_sq = sum_of_squares(bucket);
                        let _ = verdict_tx.send(BucketVerdict {
                            index: i,
                            overflow,
                            sum_sq_unscaled: sum_sq,
                        });
                    }
                    drop(verdict_tx);
                });

                // Speculative workers: one scoped thread per bucket.
                for ((p, m), (v, r)) in param_slices
                    .into_iter()
                    .zip(m_slices)
                    .zip(v_slices.into_iter().zip(ranges_ref.iter().cloned()))
                {
                    let g = &grads_ref[r];
                    scope.spawn(move || {
                        let mut st = AdamState {
                            m: m.to_vec(),
                            v: v.to_vec(),
                        };
                        GraceAdam::new(4096, 1).step(&adam, speculative_step, p, g, &mut st);
                        m.copy_from_slice(&st.m);
                        v.copy_from_slice(&st.v);
                    });
                }
            });
        }

        self.spans.speculate.record(speculate_from);

        // --- Collect verdicts ---------------------------------------------
        let validate_from = std::time::Instant::now();
        let mut verdicts: Vec<BucketVerdict> = verdict_rx.iter().collect();
        verdicts.sort_by_key(|v| v.index);
        let overflow = verdicts.iter().any(|v| v.overflow);
        let partials: Vec<f64> = verdicts.iter().map(|v| v.sum_sq_unscaled).collect();
        let norm = norm_from_partials(&partials);
        self.spans.validate.record(validate_from);

        if overflow {
            // Rollback: restore every bucket, skip the iteration.
            let rollback_from = std::time::Instant::now();
            for g in &guards {
                g.restore(self.model.params_mut(), &mut self.state);
            }
            self.spans.rollback.record(rollback_from);
            self.last_scale_event = self.scaler.update_with(true);
            self.stats.skipped += 1;
            return Ok(StepOutcome::Skipped { loss });
        }
        self.last_scale_event = self.scaler.update_with(false);

        let factor = clip_factor(norm, self.cfg.max_grad_norm);
        if factor < 1.0 {
            // Rollback and re-execute with clipped gradients.
            let rollback_from = std::time::Instant::now();
            for g in &guards {
                g.restore(self.model.params_mut(), &mut self.state);
            }
            self.spans.rollback.record(rollback_from);
            let step_from = std::time::Instant::now();
            apply_clip(&mut grads, factor);
            GraceAdam::default().step(
                &self.cfg.adam,
                speculative_step,
                self.model.params_mut(),
                &grads,
                &mut self.state,
            );
            self.spans.optimizer_step.record(step_from);
            self.step = speculative_step;
            self.stats.steps += 1;
            self.stats.clip_rollbacks += 1;
            return Ok(StepOutcome::Clipped {
                loss,
                grad_norm: norm,
            });
        }

        // Commit the speculation.
        self.step = speculative_step;
        self.stats.steps += 1;
        Ok(StepOutcome::Applied {
            loss,
            grad_norm: norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::transformer::GptConfig;
    use llm_model::SyntheticPile;

    fn tiny() -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 37,
                hidden: 16,
                layers: 2,
                heads: 2,
                max_seq: 16,
            },
            321,
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            max_grad_norm: 0.8,
            buckets: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn stv_is_bit_identical_to_sync() {
        let mut sync = SyncEngine::new(tiny(), cfg());
        let mut stv = StvEngine::new(tiny(), cfg());
        let mut pile = SyntheticPile::new(37, 5);
        for it in 0..30 {
            let batch = pile.next_batch(2, 12);
            let a = sync.train_step(&batch).unwrap();
            let b = stv.train_step(&batch).unwrap();
            assert_eq!(
                a.rolled_back(),
                b.rolled_back(),
                "iteration {it} outcome divergence: {a:?} vs {b:?}"
            );
            assert_eq!(
                sync.model().params(),
                stv.model().params(),
                "iteration {it}: parameters diverged"
            );
        }
        assert!(sync.stats().steps > 0);
    }

    #[test]
    fn clipping_path_is_exercised_and_exact() {
        // A tight clip threshold forces frequent rollbacks; equivalence must
        // hold through them.
        let tight = EngineConfig {
            max_grad_norm: 0.05,
            buckets: 4,
            ..EngineConfig::default()
        };
        let mut sync = SyncEngine::new(tiny(), tight);
        let mut stv = StvEngine::new(tiny(), tight);
        let mut pile = SyntheticPile::new(37, 9);
        let mut clipped = 0;
        for _ in 0..15 {
            let batch = pile.next_batch(2, 12);
            let a = sync.train_step(&batch).unwrap();
            let b = stv.train_step(&batch).unwrap();
            if matches!(b, StepOutcome::Clipped { .. }) {
                clipped += 1;
            }
            assert_eq!(a.rolled_back(), b.rolled_back());
            assert_eq!(sync.model().params(), stv.model().params());
        }
        assert!(clipped > 0, "clip threshold never triggered");
        assert_eq!(stv.stats().clip_rollbacks as usize, clipped);
    }

    #[test]
    fn overflow_skips_and_matches() {
        // A huge loss scale overflows FP16 gradients, forcing skip+backoff.
        let overflow_cfg = EngineConfig {
            initial_loss_scale: 1e9,
            ..cfg()
        };
        let mut sync = SyncEngine::new(tiny(), overflow_cfg);
        let mut stv = StvEngine::new(tiny(), overflow_cfg);
        let mut pile = SyntheticPile::new(37, 11);
        let batch = pile.next_batch(2, 12);
        let a = sync.train_step(&batch).unwrap();
        let b = stv.train_step(&batch).unwrap();
        assert!(matches!(a, StepOutcome::Skipped { .. }), "{a:?}");
        assert!(matches!(b, StepOutcome::Skipped { .. }), "{b:?}");
        assert_eq!(sync.model().params(), stv.model().params());
        assert_eq!(stv.stats().skipped, 1);
        // After enough backoffs, training resumes and stays identical.
        for _ in 0..45 {
            let batch = pile.next_batch(2, 12);
            sync.train_step(&batch).unwrap();
            stv.train_step(&batch).unwrap();
            assert_eq!(sync.model().params(), stv.model().params());
        }
        assert!(stv.stats().steps > 0, "training never resumed");
    }

    #[test]
    fn loss_decreases_under_stv() {
        let lr_cfg = EngineConfig {
            adam: grace_optim::adam::AdamConfig {
                lr: 0.01,
                ..grace_optim::adam::AdamConfig::default()
            },
            max_grad_norm: 5.0,
            ..EngineConfig::default()
        };
        let mut stv = StvEngine::new(tiny(), lr_cfg);
        let mut pile = SyntheticPile::new(37, 7);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for it in 0..100 {
            let batch = pile.next_batch(4, 12);
            let out = stv.train_step(&batch).unwrap();
            if it == 0 {
                first = out.loss();
            }
            last = out.loss();
        }
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn bf16_never_overflows_where_f16_does() {
        // A scale that overflows FP16 instantly is harmless under BF16
        // (FP32 range), so BF16 training proceeds without a single skip.
        let scale_cfg = |precision| EngineConfig {
            initial_loss_scale: 1e7,
            precision,
            ..cfg()
        };
        let mut f16 = StvEngine::new(tiny(), scale_cfg(Precision::F16));
        let mut bf16 = StvEngine::new(tiny(), scale_cfg(Precision::Bf16));
        let mut pile = SyntheticPile::new(37, 77);
        for _ in 0..8 {
            let batch = pile.next_batch(2, 12);
            f16.train_step(&batch).unwrap();
            bf16.train_step(&batch).unwrap();
        }
        assert!(f16.stats().skipped > 0, "f16 should overflow at scale 1e7");
        assert_eq!(bf16.stats().skipped, 0, "bf16 must not overflow");
        assert!(bf16.stats().steps > 0);
    }

    #[test]
    fn stv_exactness_holds_under_bf16() {
        let bf_cfg = EngineConfig {
            precision: Precision::Bf16,
            ..cfg()
        };
        let mut sync = SyncEngine::new(tiny(), bf_cfg);
        let mut stv = StvEngine::new(tiny(), bf_cfg);
        let mut pile = SyntheticPile::new(37, 91);
        for _ in 0..15 {
            let batch = pile.next_batch(2, 12);
            sync.train_step(&batch).unwrap();
            stv.train_step(&batch).unwrap();
            assert_eq!(sync.model().params(), stv.model().params());
        }
    }

    #[test]
    fn precision_roundtrip_properties() {
        let vals = [0.1f32, -3.5, 70000.0, 1e-8];
        let f16 = Precision::F16.roundtrip(&vals);
        let bf16 = Precision::Bf16.roundtrip(&vals);
        assert!(f16[2].is_infinite(), "70000 overflows f16");
        assert!(bf16[2].is_finite(), "70000 fits bf16");
        // Both approximate small values; f16 has finer mantissa near 0.1.
        assert!((f16[0] - 0.1).abs() <= (bf16[0] - 0.1).abs());
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        // Train 8 steps, checkpoint, train 8 more; separately restore a
        // fresh engine from the checkpoint and train the same 8 — identical.
        let mut full = StvEngine::new(tiny(), cfg());
        let mut pile = SyntheticPile::new(37, 55);
        let mut batches = Vec::new();
        for _ in 0..16 {
            batches.push(pile.next_batch(2, 12));
        }
        for b in &batches[..8] {
            full.train_step(b).unwrap();
        }
        let bytes = full.checkpoint().to_bytes();
        for b in &batches[8..] {
            full.train_step(b).unwrap();
        }

        let ckpt = crate::checkpoint::Checkpoint::from_bytes(&bytes).unwrap();
        let mut resumed = StvEngine::new(tiny(), cfg());
        resumed.restore(&ckpt);
        for b in &batches[8..] {
            resumed.train_step(b).unwrap();
        }
        assert_eq!(full.model().params(), resumed.model().params());
    }

    #[test]
    fn outcome_accessors() {
        let a = StepOutcome::Applied {
            loss: 1.0,
            grad_norm: 0.5,
        };
        assert_eq!(a.loss(), 1.0);
        assert!(!a.rolled_back());
        let s = StepOutcome::Skipped { loss: 2.0 };
        assert!(s.rolled_back());
        let c = StepOutcome::Clipped {
            loss: 3.0,
            grad_norm: 9.0,
        };
        assert!(c.rolled_back());
        assert_eq!(c.loss(), 3.0);
    }

    #[test]
    fn stats_accumulate() {
        let s = StvStats {
            steps: 5,
            skipped: 2,
            clip_rollbacks: 3,
        };
        assert_eq!(s.rollbacks(), 5);
    }

    #[test]
    fn span_counters_agree_with_stats() {
        // Tight clipping plus an overflowing loss scale exercises every
        // phase; the rollback span count must equal the stats' rollback
        // total in both engines.
        let stress = EngineConfig {
            max_grad_norm: 0.05,
            initial_loss_scale: 1e9,
            buckets: 3,
            ..EngineConfig::default()
        };
        let mut sync = SyncEngine::new(tiny(), stress);
        let mut stv = StvEngine::new(tiny(), stress);
        let mut pile = SyntheticPile::new(37, 13);
        for _ in 0..25 {
            let batch = pile.next_batch(2, 12);
            sync.train_step(&batch).unwrap();
            stv.train_step(&batch).unwrap();
        }
        for (spans, stats) in [(sync.spans(), sync.stats()), (stv.spans(), stv.stats())] {
            assert_eq!(spans.rollback.count, stats.rollbacks());
            assert_eq!(spans.validate.count, stats.steps + stats.skipped);
            assert!(stats.skipped > 0 && stats.clip_rollbacks > 0);
        }
        // Speculation happens on every STV step, never in the sync engine.
        assert_eq!(
            stv.spans().speculate.count,
            stv.stats().steps + stv.stats().skipped
        );
        assert_eq!(sync.spans().speculate.count, 0);
        assert!(stv.spans().speculate.total_secs >= 0.0);
        assert!(stv.spans().speculate.mean_secs() >= 0.0);
        assert_eq!(sync.spans().speculate.mean_secs(), 0.0);
    }

    #[test]
    fn spans_fold_into_recorder() {
        let mut stv = StvEngine::new(tiny(), cfg());
        let mut pile = SyntheticPile::new(37, 5);
        for _ in 0..5 {
            let batch = pile.next_batch(2, 12);
            stv.train_step(&batch).unwrap();
        }
        let mut rec = superchip_sim::telemetry::MetricsRecorder::new();
        stv.spans().record_into(&mut rec);
        assert_eq!(
            rec.counter("span.speculate.count"),
            stv.spans().speculate.count
        );
        assert!(rec.gauge("span.optimizer-step.total-secs").is_some());
        assert!(rec.gauge("span.rollback.total-secs").is_some());
    }
}
