//! The Fig. 1 user-facing API: wrap a model, get a training loop.
//!
//! The paper's pitch is that SuperOffload needs "a few lines of change":
//!
//! ```text
//! model = BuildModel(config)          let model = GptModel::new(cfg, seed);
//! optimizer = Optimizer(model)        let mut t = Trainer::new(model)
//! model = SuperOffload.init(...)          .max_grad_norm(1.0)
//! for batch in batches:                   .build();
//!     loss = model(batch)             for _ in 0..steps {
//!     model.backward()                    t.step(&data.next_batch(b, s))?;
//!     model.step()                    }
//! ```
//!
//! [`Trainer`] drives the real STV engine underneath (falling back to the
//! synchronous engine on request), records the loss history and rollback
//! events, and supports periodic bit-exact checkpointing.

use llm_model::transformer::GptModel;
use tensorlite::{ParallelConfig, TensorError};

use crate::checkpoint::Checkpoint;
use crate::engine::{
    EngineConfig, EngineSpans, Precision, Sample, StepOutcome, StvEngine, StvStats, SyncEngine,
};
use crate::report::TrainReport;

/// Which execution discipline drives the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// Speculation-then-validation (SuperOffload, §4.4).
    #[default]
    Stv,
    /// Synchronize-then-execute (the conventional reference).
    Sync,
}

/// Builder for a [`Trainer`] (non-consuming terminal, per Rust API
/// conventions).
#[derive(Debug, Clone)]
pub struct TrainerBuilder {
    model: GptModel,
    cfg: EngineConfig,
    discipline: Discipline,
    checkpoint_every: Option<u64>,
    parallel: Option<ParallelConfig>,
}

impl TrainerBuilder {
    /// Sets the learning rate.
    pub fn learning_rate(&mut self, lr: f32) -> &mut Self {
        self.cfg.adam.lr = lr;
        self
    }

    /// Sets the global gradient-norm clip threshold.
    pub fn max_grad_norm(&mut self, max_norm: f64) -> &mut Self {
        self.cfg.max_grad_norm = max_norm;
        self
    }

    /// Sets the initial dynamic loss scale.
    pub fn initial_loss_scale(&mut self, scale: f32) -> &mut Self {
        self.cfg.initial_loss_scale = scale;
        self
    }

    /// Sets the gradient bucket count for the STV pipeline.
    pub fn buckets(&mut self, buckets: usize) -> &mut Self {
        self.cfg.buckets = buckets;
        self
    }

    /// Selects the half-precision wire format.
    pub fn precision(&mut self, precision: Precision) -> &mut Self {
        self.cfg.precision = precision;
        self
    }

    /// Selects the execution discipline (STV by default).
    pub fn discipline(&mut self, discipline: Discipline) -> &mut Self {
        self.discipline = discipline;
        self
    }

    /// Takes a checkpoint snapshot every `steps` optimizer steps, retrievable
    /// via [`Trainer::checkpoints`].
    pub fn checkpoint_every(&mut self, steps: u64) -> &mut Self {
        assert!(steps > 0, "checkpoint interval must be non-zero");
        self.checkpoint_every = Some(steps);
        self
    }

    /// Sets the numeric-plane parallelism (tensor kernels, attention heads,
    /// and the GraceAdam optimizer all draw from the same pool). Installed
    /// process-wide by [`TrainerBuilder::build`]; results are bit-identical
    /// at every thread count.
    pub fn parallel(&mut self, parallel: ParallelConfig) -> &mut Self {
        self.parallel = Some(parallel);
        self
    }

    /// Shorthand for [`TrainerBuilder::parallel`] with an explicit worker
    /// thread count (`0` = auto-detect).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.parallel(ParallelConfig::with_threads(threads))
    }

    /// Builds the trainer.
    pub fn build(&self) -> Trainer {
        if let Some(parallel) = &self.parallel {
            parallel.install();
        }
        let engine = match self.discipline {
            Discipline::Stv => Engine::Stv(StvEngine::new(self.model.clone(), self.cfg)),
            Discipline::Sync => Engine::Sync(SyncEngine::new(self.model.clone(), self.cfg)),
        };
        Trainer {
            engine,
            checkpoint_every: self.checkpoint_every,
            steps_taken: 0,
            losses: Vec::new(),
            rollback_steps: Vec::new(),
            checkpoints: Vec::new(),
        }
    }
}

#[derive(Debug)]
enum Engine {
    Stv(StvEngine),
    Sync(SyncEngine),
}

/// A training loop over the numeric plane with history, rollback tracking,
/// and periodic checkpoints.
#[derive(Debug)]
pub struct Trainer {
    engine: Engine,
    checkpoint_every: Option<u64>,
    steps_taken: u64,
    losses: Vec<(u64, f32)>,
    rollback_steps: Vec<u64>,
    checkpoints: Vec<(u64, Checkpoint)>,
}

impl Trainer {
    /// Starts configuring a trainer for `model` (STV, defaults matching
    /// [`EngineConfig::default`]). Returns the builder — mirroring the
    /// paper's `SuperOffload.init(model, ...)` entry point.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(model: GptModel) -> TrainerBuilder {
        TrainerBuilder {
            model,
            cfg: EngineConfig::default(),
            discipline: Discipline::default(),
            checkpoint_every: None,
            parallel: None,
        }
    }

    /// Runs one training step over `batch`.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward/backward pass.
    pub fn step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let out = match &mut self.engine {
            Engine::Stv(e) => e.train_step(batch)?,
            Engine::Sync(e) => e.train_step(batch)?,
        };
        self.steps_taken += 1;
        self.losses.push((self.steps_taken, out.loss()));
        if out.rolled_back() {
            self.rollback_steps.push(self.steps_taken);
        }
        if let Some(every) = self.checkpoint_every {
            if self.steps_taken.is_multiple_of(every) {
                self.checkpoints.push((self.steps_taken, self.snapshot()));
            }
        }
        Ok(out)
    }

    /// Runs `steps` training steps pulling batches from `next_batch`.
    ///
    /// # Errors
    /// Stops at and returns the first [`TensorError`].
    pub fn run(
        &mut self,
        steps: u64,
        mut next_batch: impl FnMut() -> Vec<Sample>,
    ) -> Result<(), TensorError> {
        for _ in 0..steps {
            let batch = next_batch();
            self.step(&batch)?;
        }
        Ok(())
    }

    /// The wrapped model.
    pub fn model(&self) -> &GptModel {
        match &self.engine {
            Engine::Stv(e) => e.model(),
            Engine::Sync(e) => e.model(),
        }
    }

    /// Engine statistics (steps, skips, clip rollbacks).
    pub fn stats(&self) -> StvStats {
        match &self.engine {
            Engine::Stv(e) => e.stats(),
            Engine::Sync(e) => e.stats(),
        }
    }

    /// Wall-clock span totals of the engine's step phases (speculate,
    /// validate, rollback, optimizer step).
    pub fn spans(&self) -> EngineSpans {
        match &self.engine {
            Engine::Stv(e) => e.spans(),
            Engine::Sync(e) => e.spans(),
        }
    }

    /// Folds this run's numeric-plane counters into a performance-plane
    /// report, bridging the two planes in one record ([`TrainReport::stv`]).
    pub fn fold_into(&self, report: &mut TrainReport) {
        report.stv = Some(self.stats());
    }

    /// `(step, loss)` history, one entry per call to [`Trainer::step`].
    pub fn losses(&self) -> &[(u64, f32)] {
        &self.losses
    }

    /// Steps at which a rollback (skip or clip) occurred.
    pub fn rollback_steps(&self) -> &[u64] {
        &self.rollback_steps
    }

    /// Periodic checkpoints collected so far (step, snapshot).
    pub fn checkpoints(&self) -> &[(u64, Checkpoint)] {
        &self.checkpoints
    }

    /// Takes an on-demand snapshot of the full training state.
    pub fn snapshot(&self) -> Checkpoint {
        match &self.engine {
            Engine::Stv(e) => e.checkpoint(),
            Engine::Sync(e) => e.checkpoint(),
        }
    }

    /// Restores training state from a snapshot; the continued trajectory is
    /// bit-identical to an uninterrupted run.
    ///
    /// # Panics
    /// Panics on a parameter-count mismatch.
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        match &mut self.engine {
            Engine::Stv(e) => e.restore(ckpt),
            Engine::Sync(e) => e.restore(ckpt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::transformer::GptConfig;
    use llm_model::SyntheticPile;

    fn model() -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 43,
                hidden: 16,
                layers: 2,
                heads: 2,
                max_seq: 16,
            },
            808,
        )
    }

    #[test]
    fn builder_one_liner_trains() {
        let mut trainer = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 1);
        trainer.run(20, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.losses().len(), 20);
        assert!(trainer.stats().steps > 0);
        let first = trainer.losses()[0].1;
        let last = trainer.losses().last().unwrap().1;
        assert!(last <= first, "loss {first} -> {last}");
    }

    #[test]
    fn builder_complex_configuration() {
        let mut b = Trainer::new(model());
        b.learning_rate(5e-3)
            .max_grad_norm(2.5)
            .initial_loss_scale(128.0)
            .buckets(6)
            .precision(Precision::Bf16)
            .discipline(Discipline::Sync)
            .checkpoint_every(5);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 2);
        trainer.run(11, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.checkpoints().len(), 2); // at steps 5 and 10
        assert_eq!(trainer.checkpoints()[0].0, 5);
    }

    #[test]
    fn stv_and_sync_disciplines_agree() {
        let mut a = Trainer::new(model()).build();
        let mut b_builder = Trainer::new(model());
        b_builder.discipline(Discipline::Sync);
        let mut b = b_builder.build();
        let mut pile_a = SyntheticPile::new(43, 3);
        let mut pile_b = SyntheticPile::new(43, 3);
        a.run(10, || pile_a.next_batch(2, 12)).unwrap();
        b.run(10, || pile_b.next_batch(2, 12)).unwrap();
        assert_eq!(a.model().params(), b.model().params());
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut full = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 4);
        let batches: Vec<Vec<Sample>> = (0..12).map(|_| pile.next_batch(2, 12)).collect();
        for b in &batches[..6] {
            full.step(b).unwrap();
        }
        let snap = full.snapshot();
        for b in &batches[6..] {
            full.step(b).unwrap();
        }

        let mut resumed = Trainer::new(model()).build();
        resumed.restore(&snap);
        for b in &batches[6..] {
            resumed.step(b).unwrap();
        }
        assert_eq!(full.model().params(), resumed.model().params());
    }

    #[test]
    fn rollbacks_are_recorded() {
        let mut b = Trainer::new(model());
        b.initial_loss_scale(1e9);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 5);
        trainer.run(8, || pile.next_batch(2, 12)).unwrap();
        assert!(!trainer.rollback_steps().is_empty());
        assert_eq!(
            trainer.rollback_steps().len() as u64,
            trainer.stats().rollbacks()
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_checkpoint_interval_rejected() {
        Trainer::new(model()).checkpoint_every(0);
    }

    #[test]
    fn parallel_and_serial_training_bit_identical() {
        // The whole stack — kernels, attention heads, GraceAdam — must
        // produce the same trajectory at every worker count.
        let run = |threads: usize| {
            tensorlite::pool::with_threads(threads, || {
                let mut trainer = Trainer::new(model()).build();
                let mut pile = SyntheticPile::new(43, 9);
                trainer.run(8, || pile.next_batch(2, 12)).unwrap();
                trainer.model().params().to_vec()
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(7), serial);
    }

    #[test]
    fn builder_accepts_parallel_config() {
        let mut b = Trainer::new(model());
        b.parallel(ParallelConfig::serial()).threads(0);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 10);
        trainer.run(2, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.losses().len(), 2);
    }

    #[test]
    fn spans_and_fold_into_bridge_the_planes() {
        let mut trainer = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 6);
        trainer.run(10, || pile.next_batch(2, 12)).unwrap();
        let spans = trainer.spans();
        assert_eq!(spans.speculate.count, 10);
        assert_eq!(spans.rollback.count, trainer.stats().rollbacks());

        let mut report = TrainReport::oom("superoffload");
        trainer.fold_into(&mut report);
        assert_eq!(report.stv, Some(trainer.stats()));
        assert!(report.stv.unwrap().steps > 0);
    }
}
