//! The Fig. 1 user-facing API: wrap a model, get a training loop.
//!
//! The paper's pitch is that SuperOffload needs "a few lines of change":
//!
//! ```text
//! model = BuildModel(config)          let model = GptModel::new(cfg, seed);
//! optimizer = Optimizer(model)        let mut t = Trainer::new(model)
//! model = SuperOffload.init(...)          .max_grad_norm(1.0)
//! for batch in batches:                   .build();
//!     loss = model(batch)             for _ in 0..steps {
//!     model.backward()                    t.step(&data.next_batch(b, s))?;
//!     model.step()                    }
//! ```
//!
//! [`Trainer`] drives the real STV engine underneath (falling back to the
//! synchronous engine on request), records the loss history and rollback
//! events, and supports periodic bit-exact checkpointing.

use std::fmt::Write as _;
use std::time::Instant;

use grace_optim::ScaleEvent;
use llm_model::transformer::GptModel;
use superchip_sim::telemetry::MetricsRecorder;
use tensorlite::{counters, CounterSnapshot, OpKind, ParallelConfig, TensorError};

use crate::checkpoint::Checkpoint;
use crate::engine::{
    EngineConfig, EngineSpans, Precision, Sample, StepOutcome, StvEngine, StvStats, SyncEngine,
};
use crate::report::TrainReport;

/// Schema identifier for step-journal JSONL records and snapshots.
pub const JOURNAL_SCHEMA: &str = "superoffload.journal/v1";

/// Which execution discipline drives the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// Speculation-then-validation (SuperOffload, §4.4).
    #[default]
    Stv,
    /// Synchronize-then-execute (the conventional reference).
    Sync,
}

/// Configuration for the step journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalConfig {
    /// Assumed accelerator peak FLOP/s for *measured* MFU
    /// (`counted FLOPs / (wall-secs · peak_flops)`). The default, 1 TFLOP/s,
    /// is deliberately modest — the numeric plane is a miniature CPU stack,
    /// and MFU must land in `(0, 1]` for the sanity gate.
    pub peak_flops: f64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { peak_flops: 1e12 }
    }
}

/// One step's deterministic journal record. Every field is a pure function
/// of the model, seed, and batch sequence — byte-identical across reruns
/// and worker-thread counts (the serializer omits the two
/// thread-count-dependent counter fields; see `tensorlite::counters`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// 1-based step index.
    pub step: u64,
    /// `"applied"`, `"clipped"`, or `"skipped"` (matching [`StepOutcome`]).
    pub outcome: &'static str,
    /// Mean loss over the batch (may be non-finite on skipped steps).
    pub loss: f32,
    /// Global gradient norm before clipping; `None` on skipped steps.
    pub grad_norm: Option<f64>,
    /// Loss scale *after* this step's update.
    pub loss_scale: f32,
    /// What the dynamic loss scaler did this step.
    pub scale_event: ScaleEvent,
    /// Input tokens consumed by this step.
    pub tokens: u64,
    /// Op-counter delta across this step (calls/elems/FLOPs per kind,
    /// bytes allocated/freed, live-byte change, pool regions).
    pub counters: CounterSnapshot,
}

/// One step's wall-clock sidecar. Diagnostic only: these values never enter
/// the deterministic JSONL or versioned snapshots (repo invariant since the
/// telemetry layer: wall-clock stays out of byte-stable artifacts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTiming {
    /// 1-based step index (joins with [`StepRecord::step`]).
    pub step: u64,
    /// End-to-end wall time of the step.
    pub wall_secs: f64,
    /// Wall time inside the speculate phase.
    pub speculate_secs: f64,
    /// Wall time inside the validate phase.
    pub validate_secs: f64,
    /// Wall time inside rollback re-execution.
    pub rollback_secs: f64,
    /// Wall time inside a standalone optimizer step. Under the STV
    /// discipline this is nonzero only on clip re-execution: an applied
    /// speculative step hides the optimizer inside `speculate_secs`,
    /// which is exactly the overlap the paper's STV design buys.
    pub optimizer_secs: f64,
    /// Measured throughput: `tokens / wall_secs`.
    pub tokens_per_sec: f64,
    /// Measured MFU: counted FLOPs over `wall_secs ·`
    /// [`JournalConfig::peak_flops`].
    pub mfu: f64,
}

/// Deterministic aggregate of a journal, folded into
/// [`crate::report::RunProfile`] snapshots to join the numeric plane with
/// the simulator plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalSummary {
    /// Steps recorded.
    pub steps: u64,
    /// Steps whose update was committed unchanged.
    pub applied: u64,
    /// Steps rolled back and re-executed with clipped gradients.
    pub clipped: u64,
    /// Steps skipped on overflow.
    pub skipped: u64,
    /// Loss-scale backoff events.
    pub scale_backoffs: u64,
    /// Loss-scale growth events.
    pub scale_growths: u64,
    /// Total input tokens consumed.
    pub tokens: u64,
    /// Total counted FLOPs.
    pub flops: u64,
    /// Total bytes that became tensor storage.
    pub allocated_bytes: u64,
    /// Total bytes of tensor storage released.
    pub freed_bytes: u64,
    /// Total pool kernel regions entered.
    pub pool_regions: u64,
}

fn json_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl StepRecord {
    /// Serializes this record as one JSONL line (no trailing newline).
    /// Deterministic: only thread-count-invariant counter fields appear
    /// (`peak_bytes` and `pool_parallel_regions` are deliberately omitted),
    /// non-finite floats become `null`, and op kinds with zero calls are
    /// skipped.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"step\":{},\"outcome\":\"{}\",\"loss\":{},\"grad-norm\":{},\
             \"loss-scale\":{},\"scale-event\":\"{}\",\"tokens\":{},\
             \"flops\":{},\"alloc-bytes\":{},\"freed-bytes\":{},\
             \"live-bytes\":{},\"pool-regions\":{},\"ops\":{{",
            self.step,
            self.outcome,
            json_f32(self.loss),
            self.grad_norm.map_or("null".to_string(), json_f64),
            json_f32(self.loss_scale),
            self.scale_event.name(),
            self.tokens,
            self.counters.total_flops(),
            self.counters.allocated_bytes,
            self.counters.freed_bytes,
            self.counters.live_bytes,
            self.counters.pool_regions,
        );
        let mut first = true;
        for kind in OpKind::ALL {
            if self.counters.calls(kind) == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\"{}\":[{},{},{}]",
                kind.name(),
                self.counters.calls(kind),
                self.counters.elems(kind),
                self.counters.flops(kind),
            );
        }
        s.push_str("}}");
        s
    }
}

/// Per-step training journal: one deterministic [`StepRecord`] plus one
/// wall-clock [`StepTiming`] per optimizer step. Enabled via
/// [`TrainerBuilder::journal`]; rendered by `repro -- journal`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepJournal {
    cfg: JournalConfig,
    records: Vec<StepRecord>,
    timings: Vec<StepTiming>,
}

impl StepJournal {
    /// Creates an empty journal.
    pub fn new(cfg: JournalConfig) -> Self {
        StepJournal {
            cfg,
            records: Vec::new(),
            timings: Vec::new(),
        }
    }

    /// The configuration this journal measures MFU against.
    pub fn config(&self) -> JournalConfig {
        self.cfg
    }

    /// Deterministic per-step records.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Wall-clock per-step sidecar, index-aligned with
    /// [`StepJournal::records`].
    pub fn timings(&self) -> &[StepTiming] {
        &self.timings
    }

    /// Serializes the journal as JSONL: a schema header line followed by
    /// one [`StepRecord`] line per step. Byte-identical across reruns and
    /// worker-thread counts.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{JOURNAL_SCHEMA}\",\"steps\":{},\"peak-flops\":{}}}",
            self.records.len(),
            json_f64(self.cfg.peak_flops),
        );
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Serializes the wall-clock sidecar as a single JSON object. Explicitly
    /// *not* deterministic — it exists for dashboards and diagnosis, and is
    /// never compared byte-for-byte.
    pub fn timing_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{JOURNAL_SCHEMA}\",\"section\":\"timing\",\
             \"note\":\"wall-clock diagnostic; not byte-stable\",\"steps\":[",
        );
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"step\":{},\"wall-secs\":{},\"speculate-secs\":{},\
                 \"validate-secs\":{},\"rollback-secs\":{},\
                 \"optimizer-secs\":{},\"tokens-per-sec\":{},\"mfu\":{}}}",
                t.step,
                json_f64(t.wall_secs),
                json_f64(t.speculate_secs),
                json_f64(t.validate_secs),
                json_f64(t.rollback_secs),
                json_f64(t.optimizer_secs),
                json_f64(t.tokens_per_sec),
                json_f64(t.mfu),
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Deterministic aggregate over all records.
    pub fn summary(&self) -> JournalSummary {
        let mut s = JournalSummary::default();
        for r in &self.records {
            s.steps += 1;
            match r.outcome {
                "applied" => s.applied += 1,
                "clipped" => s.clipped += 1,
                _ => s.skipped += 1,
            }
            match r.scale_event {
                ScaleEvent::BackedOff => s.scale_backoffs += 1,
                ScaleEvent::Grew => s.scale_growths += 1,
                ScaleEvent::Stable => {}
            }
            s.tokens += r.tokens;
            s.flops += r.counters.total_flops();
            s.allocated_bytes += r.counters.allocated_bytes;
            s.freed_bytes += r.counters.freed_bytes;
            s.pool_regions += r.counters.pool_regions;
        }
        s
    }

    /// Mean measured MFU across steps (total FLOPs over total wall time).
    pub fn mean_mfu(&self) -> f64 {
        let wall: f64 = self.timings.iter().map(|t| t.wall_secs).sum();
        if wall > 0.0 {
            self.summary().flops as f64 / (wall * self.cfg.peak_flops)
        } else {
            0.0
        }
    }

    /// Mean measured throughput in tokens/sec.
    pub fn mean_tokens_per_sec(&self) -> f64 {
        let wall: f64 = self.timings.iter().map(|t| t.wall_secs).sum();
        if wall > 0.0 {
            self.summary().tokens as f64 / wall
        } else {
            0.0
        }
    }

    /// Folds the journal's deterministic aggregates into a telemetry
    /// recorder: `journal.*` counters, final-state gauges, and per-step
    /// loss / grad-norm tracks keyed by step index.
    pub fn record_into(&self, rec: &mut MetricsRecorder) {
        let s = self.summary();
        rec.add("journal.steps", s.steps);
        rec.add("journal.applied", s.applied);
        rec.add("journal.clipped", s.clipped);
        rec.add("journal.skipped", s.skipped);
        rec.add("journal.scale-backoffs", s.scale_backoffs);
        rec.add("journal.scale-growths", s.scale_growths);
        rec.add("journal.tokens", s.tokens);
        rec.add("journal.flops", s.flops);
        rec.add("journal.alloc-bytes", s.allocated_bytes);
        rec.add("journal.freed-bytes", s.freed_bytes);
        rec.add("journal.pool-regions", s.pool_regions);
        for kind in OpKind::ALL {
            let calls: u64 = self.records.iter().map(|r| r.counters.calls(kind)).sum();
            if calls == 0 {
                continue;
            }
            let flops: u64 = self.records.iter().map(|r| r.counters.flops(kind)).sum();
            rec.add(&format!("journal.op.{}.calls", kind.name()), calls);
            rec.add(&format!("journal.op.{}.flops", kind.name()), flops);
        }
        for r in &self.records {
            rec.sample_us("journal.loss", "nats", r.step, f64::from(r.loss));
            if let Some(g) = r.grad_norm {
                rec.sample_us("journal.grad-norm", "l2", r.step, g);
            }
        }
        if let Some(last) = self.records.last() {
            rec.set_gauge("journal.final-loss", f64::from(last.loss));
            rec.set_gauge("journal.final-loss-scale", f64::from(last.loss_scale));
        }
    }

    /// Serializes the journal as a versioned
    /// [`superoffload.journal/v1`](JOURNAL_SCHEMA) snapshot via the
    /// telemetry JSON writer. `meta` entries are appended after the `kind`
    /// key. Deterministic.
    pub fn snapshot_json(&self, meta: &[(&str, String)]) -> String {
        let mut rec = MetricsRecorder::new();
        self.record_into(&mut rec);
        let mut m: Vec<(&str, String)> = vec![("kind", JOURNAL_SCHEMA.to_string())];
        m.extend(meta.iter().map(|(k, v)| (*k, v.clone())));
        rec.snapshot_json(&m)
    }
}

/// Builder for a [`Trainer`] (non-consuming terminal, per Rust API
/// conventions).
#[derive(Debug, Clone)]
pub struct TrainerBuilder {
    model: GptModel,
    cfg: EngineConfig,
    discipline: Discipline,
    checkpoint_every: Option<u64>,
    parallel: Option<ParallelConfig>,
    journal: Option<JournalConfig>,
}

impl TrainerBuilder {
    /// Sets the learning rate.
    pub fn learning_rate(&mut self, lr: f32) -> &mut Self {
        self.cfg.adam.lr = lr;
        self
    }

    /// Sets the global gradient-norm clip threshold.
    pub fn max_grad_norm(&mut self, max_norm: f64) -> &mut Self {
        self.cfg.max_grad_norm = max_norm;
        self
    }

    /// Sets the initial dynamic loss scale.
    pub fn initial_loss_scale(&mut self, scale: f32) -> &mut Self {
        self.cfg.initial_loss_scale = scale;
        self
    }

    /// Sets the gradient bucket count for the STV pipeline.
    pub fn buckets(&mut self, buckets: usize) -> &mut Self {
        self.cfg.buckets = buckets;
        self
    }

    /// Selects the half-precision wire format.
    pub fn precision(&mut self, precision: Precision) -> &mut Self {
        self.cfg.precision = precision;
        self
    }

    /// Selects the execution discipline (STV by default).
    pub fn discipline(&mut self, discipline: Discipline) -> &mut Self {
        self.discipline = discipline;
        self
    }

    /// Takes a checkpoint snapshot every `steps` optimizer steps, retrievable
    /// via [`Trainer::checkpoints`].
    pub fn checkpoint_every(&mut self, steps: u64) -> &mut Self {
        assert!(steps > 0, "checkpoint interval must be non-zero");
        self.checkpoint_every = Some(steps);
        self
    }

    /// Sets the numeric-plane parallelism (tensor kernels, attention heads,
    /// and the GraceAdam optimizer all draw from the same pool). Installed
    /// process-wide by [`TrainerBuilder::build`]; results are bit-identical
    /// at every thread count.
    pub fn parallel(&mut self, parallel: ParallelConfig) -> &mut Self {
        self.parallel = Some(parallel);
        self
    }

    /// Shorthand for [`TrainerBuilder::parallel`] with an explicit worker
    /// thread count (`0` = auto-detect).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.parallel(ParallelConfig::with_threads(threads))
    }

    /// Enables the step journal: [`TrainerBuilder::build`] resets and
    /// enables the process-wide `tensorlite` op counters (like
    /// [`TrainerBuilder::parallel`], a process-wide effect), and every
    /// [`Trainer::step`] appends one [`StepRecord`] + [`StepTiming`] pair,
    /// retrievable via [`Trainer::journal`].
    pub fn journal(&mut self, cfg: JournalConfig) -> &mut Self {
        self.journal = Some(cfg);
        self
    }

    /// Builds the trainer.
    pub fn build(&self) -> Trainer {
        if let Some(parallel) = &self.parallel {
            parallel.install();
        }
        let journal = self.journal.map(|cfg| {
            counters::reset();
            counters::enable();
            StepJournal::new(cfg)
        });
        let engine = match self.discipline {
            Discipline::Stv => Engine::Stv(StvEngine::new(self.model.clone(), self.cfg)),
            Discipline::Sync => Engine::Sync(SyncEngine::new(self.model.clone(), self.cfg)),
        };
        Trainer {
            engine,
            checkpoint_every: self.checkpoint_every,
            steps_taken: 0,
            losses: Vec::new(),
            rollback_steps: Vec::new(),
            checkpoints: Vec::new(),
            journal,
        }
    }
}

#[derive(Debug)]
enum Engine {
    Stv(StvEngine),
    Sync(SyncEngine),
}

/// A training loop over the numeric plane with history, rollback tracking,
/// and periodic checkpoints.
#[derive(Debug)]
pub struct Trainer {
    engine: Engine,
    checkpoint_every: Option<u64>,
    steps_taken: u64,
    losses: Vec<(u64, f32)>,
    rollback_steps: Vec<u64>,
    checkpoints: Vec<(u64, Checkpoint)>,
    journal: Option<StepJournal>,
}

impl Trainer {
    /// Starts configuring a trainer for `model` (STV, defaults matching
    /// [`EngineConfig::default`]). Returns the builder — mirroring the
    /// paper's `SuperOffload.init(model, ...)` entry point.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(model: GptModel) -> TrainerBuilder {
        TrainerBuilder {
            model,
            cfg: EngineConfig::default(),
            discipline: Discipline::default(),
            checkpoint_every: None,
            parallel: None,
            journal: None,
        }
    }

    /// Runs one training step over `batch`.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward/backward pass.
    pub fn step(&mut self, batch: &[Sample]) -> Result<StepOutcome, TensorError> {
        let pre = self
            .journal
            .is_some()
            .then(|| (counters::snapshot(), self.spans(), Instant::now()));
        let out = match &mut self.engine {
            Engine::Stv(e) => e.train_step(batch)?,
            Engine::Sync(e) => e.train_step(batch)?,
        };
        self.steps_taken += 1;
        if let Some((ctr0, spans0, t0)) = pre {
            self.journal_step(&out, batch, ctr0, spans0, t0.elapsed().as_secs_f64());
        }
        self.losses.push((self.steps_taken, out.loss()));
        if out.rolled_back() {
            self.rollback_steps.push(self.steps_taken);
        }
        if let Some(every) = self.checkpoint_every {
            if self.steps_taken.is_multiple_of(every) {
                self.checkpoints.push((self.steps_taken, self.snapshot()));
            }
        }
        Ok(out)
    }

    /// Runs `steps` training steps pulling batches from `next_batch`.
    ///
    /// # Errors
    /// Stops at and returns the first [`TensorError`].
    pub fn run(
        &mut self,
        steps: u64,
        mut next_batch: impl FnMut() -> Vec<Sample>,
    ) -> Result<(), TensorError> {
        for _ in 0..steps {
            let batch = next_batch();
            self.step(&batch)?;
        }
        Ok(())
    }

    fn journal_step(
        &mut self,
        out: &StepOutcome,
        batch: &[Sample],
        ctr0: CounterSnapshot,
        spans0: EngineSpans,
        wall_secs: f64,
    ) {
        let delta = counters::snapshot().delta_since(&ctr0);
        let spans1 = self.spans();
        let (loss_scale, scale_event) = match &self.engine {
            Engine::Stv(e) => (e.loss_scale(), e.last_scale_event()),
            Engine::Sync(e) => (e.loss_scale(), e.last_scale_event()),
        };
        let tokens: u64 = batch.iter().map(|(x, _)| x.len() as u64).sum();
        let (outcome, grad_norm) = match *out {
            StepOutcome::Applied { grad_norm, .. } => ("applied", Some(grad_norm)),
            StepOutcome::Clipped { grad_norm, .. } => ("clipped", Some(grad_norm)),
            StepOutcome::Skipped { .. } => ("skipped", None),
        };
        let step = self.steps_taken;
        let journal = self.journal.as_mut().expect("journaling enabled");
        journal.records.push(StepRecord {
            step,
            outcome,
            loss: out.loss(),
            grad_norm,
            loss_scale,
            scale_event,
            tokens,
            counters: delta,
        });
        let phase = |a: f64, b: f64| (a - b).max(0.0);
        journal.timings.push(StepTiming {
            step,
            wall_secs,
            speculate_secs: phase(spans1.speculate.total_secs, spans0.speculate.total_secs),
            validate_secs: phase(spans1.validate.total_secs, spans0.validate.total_secs),
            rollback_secs: phase(spans1.rollback.total_secs, spans0.rollback.total_secs),
            optimizer_secs: phase(
                spans1.optimizer_step.total_secs,
                spans0.optimizer_step.total_secs,
            ),
            tokens_per_sec: if wall_secs > 0.0 {
                tokens as f64 / wall_secs
            } else {
                0.0
            },
            mfu: if wall_secs > 0.0 {
                delta.total_flops() as f64 / (wall_secs * journal.cfg.peak_flops)
            } else {
                0.0
            },
        });
    }

    /// The step journal, if enabled via [`TrainerBuilder::journal`].
    pub fn journal(&self) -> Option<&StepJournal> {
        self.journal.as_ref()
    }

    /// Current dynamic loss scale.
    pub fn loss_scale(&self) -> f32 {
        match &self.engine {
            Engine::Stv(e) => e.loss_scale(),
            Engine::Sync(e) => e.loss_scale(),
        }
    }

    /// What the loss scaler did on the most recent step.
    pub fn last_scale_event(&self) -> ScaleEvent {
        match &self.engine {
            Engine::Stv(e) => e.last_scale_event(),
            Engine::Sync(e) => e.last_scale_event(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &GptModel {
        match &self.engine {
            Engine::Stv(e) => e.model(),
            Engine::Sync(e) => e.model(),
        }
    }

    /// Engine statistics (steps, skips, clip rollbacks).
    pub fn stats(&self) -> StvStats {
        match &self.engine {
            Engine::Stv(e) => e.stats(),
            Engine::Sync(e) => e.stats(),
        }
    }

    /// Wall-clock span totals of the engine's step phases (speculate,
    /// validate, rollback, optimizer step).
    pub fn spans(&self) -> EngineSpans {
        match &self.engine {
            Engine::Stv(e) => e.spans(),
            Engine::Sync(e) => e.spans(),
        }
    }

    /// Folds this run's numeric-plane counters into a performance-plane
    /// report, bridging the two planes in one record ([`TrainReport::stv`]).
    pub fn fold_into(&self, report: &mut TrainReport) {
        report.stv = Some(self.stats());
    }

    /// `(step, loss)` history, one entry per call to [`Trainer::step`].
    pub fn losses(&self) -> &[(u64, f32)] {
        &self.losses
    }

    /// Steps at which a rollback (skip or clip) occurred.
    pub fn rollback_steps(&self) -> &[u64] {
        &self.rollback_steps
    }

    /// Periodic checkpoints collected so far (step, snapshot).
    pub fn checkpoints(&self) -> &[(u64, Checkpoint)] {
        &self.checkpoints
    }

    /// Takes an on-demand snapshot of the full training state.
    pub fn snapshot(&self) -> Checkpoint {
        match &self.engine {
            Engine::Stv(e) => e.checkpoint(),
            Engine::Sync(e) => e.checkpoint(),
        }
    }

    /// Restores training state from a snapshot; the continued trajectory is
    /// bit-identical to an uninterrupted run.
    ///
    /// # Panics
    /// Panics on a parameter-count mismatch.
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        match &mut self.engine {
            Engine::Stv(e) => e.restore(ckpt),
            Engine::Sync(e) => e.restore(ckpt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::transformer::GptConfig;
    use llm_model::SyntheticPile;

    fn model() -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 43,
                hidden: 16,
                layers: 2,
                heads: 2,
                max_seq: 16,
            },
            808,
        )
    }

    #[test]
    fn builder_one_liner_trains() {
        let mut trainer = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 1);
        trainer.run(20, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.losses().len(), 20);
        assert!(trainer.stats().steps > 0);
        let first = trainer.losses()[0].1;
        let last = trainer.losses().last().unwrap().1;
        assert!(last <= first, "loss {first} -> {last}");
    }

    #[test]
    fn builder_complex_configuration() {
        let mut b = Trainer::new(model());
        b.learning_rate(5e-3)
            .max_grad_norm(2.5)
            .initial_loss_scale(128.0)
            .buckets(6)
            .precision(Precision::Bf16)
            .discipline(Discipline::Sync)
            .checkpoint_every(5);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 2);
        trainer.run(11, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.checkpoints().len(), 2); // at steps 5 and 10
        assert_eq!(trainer.checkpoints()[0].0, 5);
    }

    #[test]
    fn stv_and_sync_disciplines_agree() {
        let mut a = Trainer::new(model()).build();
        let mut b_builder = Trainer::new(model());
        b_builder.discipline(Discipline::Sync);
        let mut b = b_builder.build();
        let mut pile_a = SyntheticPile::new(43, 3);
        let mut pile_b = SyntheticPile::new(43, 3);
        a.run(10, || pile_a.next_batch(2, 12)).unwrap();
        b.run(10, || pile_b.next_batch(2, 12)).unwrap();
        assert_eq!(a.model().params(), b.model().params());
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut full = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 4);
        let batches: Vec<Vec<Sample>> = (0..12).map(|_| pile.next_batch(2, 12)).collect();
        for b in &batches[..6] {
            full.step(b).unwrap();
        }
        let snap = full.snapshot();
        for b in &batches[6..] {
            full.step(b).unwrap();
        }

        let mut resumed = Trainer::new(model()).build();
        resumed.restore(&snap);
        for b in &batches[6..] {
            resumed.step(b).unwrap();
        }
        assert_eq!(full.model().params(), resumed.model().params());
    }

    #[test]
    fn rollbacks_are_recorded() {
        let mut b = Trainer::new(model());
        b.initial_loss_scale(1e9);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 5);
        trainer.run(8, || pile.next_batch(2, 12)).unwrap();
        assert!(!trainer.rollback_steps().is_empty());
        assert_eq!(
            trainer.rollback_steps().len() as u64,
            trainer.stats().rollbacks()
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_checkpoint_interval_rejected() {
        Trainer::new(model()).checkpoint_every(0);
    }

    #[test]
    fn parallel_and_serial_training_bit_identical() {
        // The whole stack — kernels, attention heads, GraceAdam — must
        // produce the same trajectory at every worker count.
        let run = |threads: usize| {
            tensorlite::pool::with_threads(threads, || {
                let mut trainer = Trainer::new(model()).build();
                let mut pile = SyntheticPile::new(43, 9);
                trainer.run(8, || pile.next_batch(2, 12)).unwrap();
                trainer.model().params().to_vec()
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(7), serial);
    }

    #[test]
    fn builder_accepts_parallel_config() {
        let mut b = Trainer::new(model());
        b.parallel(ParallelConfig::serial()).threads(0);
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 10);
        trainer.run(2, || pile.next_batch(2, 12)).unwrap();
        assert_eq!(trainer.losses().len(), 2);
    }

    #[test]
    fn journal_disabled_by_default() {
        let trainer = Trainer::new(model()).build();
        assert!(trainer.journal().is_none());
    }

    // Counter-VALUE assertions live in tests/journal.rs (own process): the
    // counters are process-wide, so concurrent unit tests would pollute
    // them. Here we only assert journal structure, which pollution cannot
    // affect.
    #[test]
    fn journal_records_structure_and_serializes() {
        let mut b = Trainer::new(model());
        b.journal(JournalConfig::default());
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 11);
        trainer.run(5, || pile.next_batch(2, 12)).unwrap();

        let j = trainer.journal().unwrap();
        assert_eq!(j.records().len(), 5);
        assert_eq!(j.timings().len(), 5);
        for (i, r) in j.records().iter().enumerate() {
            assert_eq!(r.step, i as u64 + 1);
            assert_eq!(r.tokens, 2 * 12);
            assert!(matches!(r.outcome, "applied" | "clipped" | "skipped"));
            assert_eq!(r.grad_norm.is_none(), r.outcome == "skipped");
        }
        let s = j.summary();
        assert_eq!(s.steps, 5);
        assert_eq!(s.applied + s.clipped + s.skipped, 5);
        assert_eq!(s.tokens, 5 * 24);

        let jsonl = j.to_jsonl();
        assert_eq!(jsonl.lines().count(), 6, "header + one line per step");
        for line in jsonl.lines() {
            superchip_sim::telemetry::validate_json(line).unwrap();
        }
        assert!(jsonl.starts_with(&format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"")));
        superchip_sim::telemetry::validate_json(&j.timing_json()).unwrap();
        let snap = j.snapshot_json(&[("system", "trainer-test".to_string())]);
        superchip_sim::telemetry::validate_json(&snap).unwrap();
        assert!(snap.contains(JOURNAL_SCHEMA));
        assert!(snap.contains("journal.steps"));
    }

    #[test]
    fn journal_captures_overflow_scale_events() {
        let mut b = Trainer::new(model());
        b.initial_loss_scale(1e9).journal(JournalConfig::default());
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, 5);
        trainer.run(8, || pile.next_batch(2, 12)).unwrap();
        let j = trainer.journal().unwrap();
        assert!(
            j.records()
                .iter()
                .any(|r| r.scale_event == ScaleEvent::BackedOff && r.outcome == "skipped"),
            "1e9 initial scale must overflow at least once"
        );
        assert!(j.summary().scale_backoffs > 0);
        assert!(trainer.loss_scale() < 1e9);
    }

    #[test]
    fn spans_and_fold_into_bridge_the_planes() {
        let mut trainer = Trainer::new(model()).build();
        let mut pile = SyntheticPile::new(43, 6);
        trainer.run(10, || pile.next_batch(2, 12)).unwrap();
        let spans = trainer.spans();
        assert_eq!(spans.speculate.count, 10);
        assert_eq!(spans.rollback.count, trainer.stats().rollbacks());

        let mut report = TrainReport::oom("superoffload");
        trainer.fold_into(&mut report);
        assert_eq!(report.stv, Some(trainer.stats()));
        assert!(report.stv.unwrap().steps > 0);
    }
}
