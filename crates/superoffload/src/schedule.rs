//! The SuperOffload single-Superchip training schedule (§4.1–§4.6 combined).
//!
//! Builds the per-iteration task graph on the discrete-event simulator:
//! forward/backward on the GPU, bucketized gradient swap-out, CPU optimizer
//! steps (GraceAdam), parameter swap-in, with every §4 technique as a
//! toggle so the Table 2 ablation falls out of the same builder:
//!
//! - **STV** (§4.4): optimizer steps launch per-bucket as gradients arrive,
//!   overlapping the remaining backward; validation runs on spare cores off
//!   the critical path. Without it (STE), a global norm/NaN sync gates every
//!   step.
//! - **SAC** (§4.5): casts on the GPU and moves FP32 over the pinned path;
//!   without it, FP16 moves through a pageable staging buffer and casts on
//!   the CPU.
//! - **Bucketization repartitioning** (§4.3): the last `n` buckets' optimizer
//!   state stays on the GPU; without it everything steps on the CPU.
//! - **GraceAdam** (§4.6): the CPU step runs at GraceAdam speed; without it,
//!   at CPU-Adam speed.

use llm_model::flops::{tflops, TrainingFlops};
use llm_model::memory::ModelStateMemory;
use llm_model::workload::{ExecutionPlan, Workload};
use superchip_sim::prelude::*;

use crate::bucket::{min_retained, BucketPlan, DEFAULT_BUCKET_BYTES};
use crate::casting::CastPlacement;
use crate::costs::{
    gpu_optimizer_time, pipeline_step_time, ComputeTimes, OptimizerImpl, OP_OVERHEAD_TUNED,
};
use crate::fleet::NodeLease;
use crate::policy::{choose_policy, WeightPolicy};
use crate::report::{RunProfile, TrainReport};
use crate::system::{Infeasible, IterationBuilder};

/// Fraction of GPU memory usable for model data (the rest is CUDA context,
/// fragmentation, and framework workspace).
pub const GPU_USABLE: f64 = 0.92;

/// Fraction of CPU memory usable for offloaded state (the rest is OS,
/// runtime, and pinned staging pools).
pub const CPU_USABLE: f64 = 0.85;

/// Dense-math peak as a fraction of the headline (sparsity-assisted) FLOPS
/// figure; MFU is conventionally reported against the dense peak.
pub const DENSE_PEAK_FRACTION: f64 = 0.5;

/// Configuration of the SuperOffload schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperOffloadOptions {
    /// Transfer bucket size in bytes (FP32 gradient bytes). Default 64 MiB.
    pub bucket_bytes: u64,
    /// Buckets whose optimizer state stays on the GPU; `None` = automatic
    /// (closed-form seed + grid search).
    pub retained_buckets: Option<u32>,
    /// CPU optimizer implementation.
    pub optimizer: OptimizerImpl,
    /// Cast placement; `None` = automatic per-chip choice.
    pub cast: Option<CastPlacement>,
    /// Speculation-then-validation on (vs synchronize-then-execute).
    pub use_stv: bool,
    /// Bucketization repartitioning on (retained buckets allowed).
    pub use_repartition: bool,
    /// Weight placement; `None` = adaptive.
    pub weight_policy: Option<WeightPolicy>,
    /// Iterations to simulate (steady state needs ≥ 3).
    pub iterations: u32,
    /// Per-operation framework overhead in seconds.
    pub op_overhead_secs: f64,
}

impl Default for SuperOffloadOptions {
    fn default() -> Self {
        SuperOffloadOptions {
            bucket_bytes: DEFAULT_BUCKET_BYTES,
            retained_buckets: None,
            optimizer: OptimizerImpl::GraceAdam,
            cast: None,
            use_stv: true,
            use_repartition: true,
            weight_policy: None,
            iterations: 4,
            op_overhead_secs: OP_OVERHEAD_TUNED,
        }
    }
}

impl SuperOffloadOptions {
    /// The Table 2 ablation constructor: each flag enables one technique.
    pub fn ablation(grace_adam: bool, sac: bool, stv: bool, repartition: bool) -> Self {
        SuperOffloadOptions {
            optimizer: if grace_adam {
                OptimizerImpl::GraceAdam
            } else {
                OptimizerImpl::CpuAdam
            },
            cast: Some(if sac {
                CastPlacement::GpuCastMoveFp32
            } else {
                CastPlacement::CpuCastMoveFp16Pageable
            }),
            use_stv: stv,
            use_repartition: repartition,
            ..SuperOffloadOptions::default()
        }
    }
}

/// Simulates SuperOffload on a single Superchip.
///
/// Returns [`TrainReport::oom`] when the workload does not fit under any
/// execution plan; [`simulate_single_chip_traced`] reports the structured
/// reason instead.
pub fn simulate_single_chip(
    chip: &ChipSpec,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> TrainReport {
    crate::system::collapse(
        simulate_single_chip_traced(chip, workload, opts),
        "superoffload",
    )
}

/// Resource names of the single-chip schedule, in registration (tid) order —
/// pass to [`superchip_sim::chrome_trace::to_chrome_trace`].
pub const SINGLE_CHIP_RESOURCES: [&str; 6] = [
    "gpu",
    "cpu",
    "c2c-d2h",
    "c2c-h2d",
    "fabric",
    "cpu-validator",
];

/// Like [`simulate_single_chip`], additionally returning the execution
/// trace of the winning configuration for timeline inspection (ASCII Gantt
/// or Chrome-trace export), or the structured [`Infeasible`] reason when no
/// configuration fits.
pub fn simulate_single_chip_traced(
    chip: &ChipSpec,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> Result<(TrainReport, Trace), Infeasible> {
    simulate_single_chip_profiled(chip, workload, opts).map(|p| (p.report, p.trace))
}

/// Like [`simulate_single_chip_traced`], returning the full [`RunProfile`]
/// of the winning configuration: report, trace, and the telemetry recorded
/// during the run (memory-pool occupancy, per-transfer bandwidth, queueing
/// delay, scheduler counters).
pub fn simulate_single_chip_profiled(
    chip: &ChipSpec,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> Result<RunProfile, Infeasible> {
    match opts.retained_buckets {
        Some(_) => simulate_fixed(chip, workload, opts),
        None => {
            // Grid search around the closed-form seed (§4.3).
            let cast = opts
                .cast
                .unwrap_or_else(|| CastPlacement::choose(chip, opts.bucket_bytes / 4));
            let params = workload.config.param_count();
            let bwd_per_elem = chip
                .gpu
                .time_for_flops(4.0 * workload.global_batch as f64 * workload.seq as f64);
            let seed = if opts.use_repartition {
                min_retained(
                    chip,
                    params,
                    opts.bucket_bytes,
                    cast,
                    opts.optimizer,
                    bwd_per_elem,
                )
            } else {
                0
            };
            let max_buckets = BucketPlan::new(params, opts.bucket_bytes, 0).num_buckets;
            let mut candidates: Vec<u32> = if opts.use_repartition {
                // Closed-form seed, its neighbourhood, and coarse fractions
                // of the whole bucket count: grad-accumulation and pipeline
                // sweeps can push the CPU past the backward time, where far
                // more retention pays off than Eq. 4-5 alone suggests.
                vec![
                    0,
                    seed.saturating_sub(2),
                    seed.saturating_sub(1),
                    seed,
                    seed + 1,
                    seed + 2,
                    seed * 2,
                    max_buckets / 16,
                    max_buckets / 8,
                    max_buckets / 4,
                    3 * max_buckets / 8,
                    max_buckets / 2,
                ]
            } else {
                vec![0]
            };
            candidates.retain(|&n| n <= max_buckets);
            candidates.sort_unstable();
            candidates.dedup();

            let mut best: Option<RunProfile> = None;
            let mut first_err: Option<Infeasible> = None;
            for n in candidates {
                let fixed = SuperOffloadOptions {
                    retained_buckets: Some(n),
                    cast: Some(cast),
                    ..*opts
                };
                match simulate_fixed(chip, workload, &fixed) {
                    Ok(result) => {
                        let better = match &best {
                            None => true,
                            Some(b) => result.report.tflops > b.report.tflops,
                        };
                        if better {
                            best = Some(result);
                        }
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            // The candidate list is never empty (it always contains 0), so
            // an empty `best` implies a recorded error.
            best.ok_or_else(|| first_err.expect("infeasible grid records an error"))
        }
    }
}

fn simulate_fixed(
    chip: &ChipSpec,
    workload: &Workload,
    opts: &SuperOffloadOptions,
) -> Result<RunProfile, Infeasible> {
    let system = "superoffload";
    let params = workload.config.param_count();
    let states = ModelStateMemory::for_params(params);
    let cast = opts
        .cast
        .unwrap_or_else(|| CastPlacement::choose(chip, opts.bucket_bytes / 4));
    let retained = if opts.use_repartition {
        opts.retained_buckets.unwrap_or(0)
    } else {
        0
    };
    let plan_buckets = BucketPlan::new(params, opts.bucket_bytes, retained);

    // --- Memory planning -------------------------------------------------
    let lease = NodeLease::solo(chip);
    let cap = lease.capacity();

    // Staging: double-buffered gradient-out and param-in buckets (FP32).
    let staging = 4 * opts.bucket_bytes;
    let reserved = plan_buckets.retained_gpu_bytes() + staging;

    let weight_policy = opts
        .weight_policy
        .unwrap_or_else(|| choose_policy(chip, workload, reserved));
    let resident_weights = (states.fp16_params as f64 * weight_policy.resident_fraction()) as u64;

    let gpu_resident = resident_weights + reserved;
    cap.fit_gpu(gpu_resident)?;

    // CPU holds FP32 master + moments for CPU buckets, plus the streamed
    // FP16 weights when flowing, plus pinned transfer pools.
    let cpu_bucket_elems: u64 = params - plan_buckets.retained_elems();
    let streamed_weights = (states.fp16_params as f64 * weight_policy.streamed_fraction()) as u64;
    let cpu_resident = 12 * cpu_bucket_elems + streamed_weights + staging;
    cap.fit_cpu(cpu_resident)?;

    let plan = cap.plan(workload, gpu_resident)?;

    // --- Cost inputs ------------------------------------------------------
    let flops = TrainingFlops::for_iteration(
        &workload.config,
        workload.global_batch,
        workload.seq,
        plan.checkpointing,
    );
    let compute = ComputeTimes::new(&chip.gpu, &flops, plan.micro_steps());
    let overhead = SimTime::from_secs(opts.op_overhead_secs);

    // --- Task graph -------------------------------------------------------
    let mut ctx = lease.ctx();
    let cpu_val = ctx.add_resource(SINGLE_CHIP_RESOURCES[5]);
    let (hbm, ddr) = ctx.plan_residency(chip, gpu_resident, cpu_resident);

    let micro = plan.micro_steps();

    // Weight streaming per pass (flow policy): bytes over h2d per micro-step.
    let streamed_frac = weight_policy.streamed_fraction();
    let stream_bytes_per_pass = (states.fp16_params as f64 * streamed_frac) as u64;

    let mut iters = IterationBuilder::new();
    for _iter in 0..opts.iterations {
        let mut iter_end_deps: Vec<TaskId> = Vec::new();
        let mut last_bwd_chunk: Option<TaskId> = None;
        let mut grad_arrivals: Vec<(u32, TaskId)> = Vec::new();

        for m in 0..micro {
            // Forward (with optional weight streaming fetch).
            let mut fwd_dep: Vec<TaskId> = iters.start_deps();
            if let Some(prev) = last_bwd_chunk {
                fwd_dep.push(prev);
            }
            if stream_bytes_per_pass > 0 {
                let fetch = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        chip.c2c.transfer_time(stream_bytes_per_pass) + overhead,
                    )
                    .with_label("weight-fetch-fwd")
                    .tagged(TaskTag::Eviction)
                    .after_all(fwd_dep.iter().copied()),
                )?;
                ctx.track_transfer(fetch, &chip.c2c, stream_bytes_per_pass);
                fwd_dep.push(fetch);
            }
            let fwd = ctx.forward(compute.fwd_per_micro + overhead, fwd_dep)?;

            // Backward, chunked by bucket (grads appear bucket by bucket,
            // in reverse parameter order).
            let mut bwd_fetch: Option<TaskId> = None;
            if stream_bytes_per_pass > 0 {
                let fetch = ctx.sim.add_task(
                    TaskSpec::transfer(
                        ctx.h2d,
                        chip.c2c.transfer_time(stream_bytes_per_pass) + overhead,
                    )
                    .with_label("weight-fetch-bwd")
                    .tagged(TaskTag::Eviction)
                    .after(fwd),
                )?;
                ctx.track_transfer(fetch, &chip.c2c, stream_bytes_per_pass);
                bwd_fetch = Some(fetch);
            }
            let last = ctx.backward_chunks(
                &plan_buckets,
                compute.bwd_per_micro,
                overhead,
                fwd,
                bwd_fetch,
                |ctx, bi, elems, chunk| {
                    // Gradient swap-out for CPU buckets, every micro-step
                    // (accumulation happens CPU-side in FP32).
                    if !plan_buckets.is_retained(bi) {
                        let xfer_time = match cast {
                            CastPlacement::GpuCastMoveFp32 => {
                                // Cast on GPU, then pinned FP32 move.
                                let c = ctx.sim.add_task(
                                    TaskSpec::cast(
                                        ctx.gpu,
                                        SimTime::from_secs(
                                            (elems * 6) as f64 / chip.gpu.mem_bandwidth,
                                        ) + overhead,
                                    )
                                    .with_label(format!("cast-gpu[{bi}]"))
                                    .after(chunk),
                                )?;
                                (chip.c2c.transfer_time(4 * elems), c)
                            }
                            CastPlacement::CpuCastMoveFp16Pageable => {
                                (chip.c2c.transfer_time_pageable(2 * elems), chunk)
                            }
                            CastPlacement::CpuCastMoveFp16Fused => {
                                (chip.c2c.transfer_time(2 * elems), chunk)
                            }
                        };
                        let mut xfer = ctx.sim.add_task(
                            TaskSpec::transfer(ctx.d2h, xfer_time.0 + overhead)
                                .with_label(format!("grad-out[{bi}]"))
                                .after(xfer_time.1),
                        )?;
                        let grad_bytes = match cast {
                            CastPlacement::GpuCastMoveFp32 => 4 * elems,
                            _ => 2 * elems,
                        };
                        ctx.track_transfer(xfer, &chip.c2c, grad_bytes);
                        if cast == CastPlacement::CpuCastMoveFp16Pageable {
                            xfer = ctx.sim.add_task(
                                TaskSpec::cast(
                                    ctx.cpu,
                                    SimTime::from_secs((elems * 6) as f64 / chip.cpu.mem_bandwidth)
                                        + overhead,
                                )
                                .with_label(format!("cast-cpu[{bi}]"))
                                .after(xfer),
                            )?;
                        }
                        if m + 1 < micro {
                            // Accumulate into FP32 CPU gradients.
                            let acc = ctx.sim.add_task(
                                TaskSpec::compute(
                                    ctx.cpu,
                                    SimTime::from_secs(
                                        (elems * 12) as f64 / chip.cpu.mem_bandwidth,
                                    ) + overhead,
                                )
                                .with_label(format!("grad-accum[{bi}]"))
                                .after(xfer),
                            )?;
                            // FP32 staging buffer lives from arrival to accum.
                            ctx.track_alloc(ddr, 4 * elems, xfer, Some(acc));
                            iter_end_deps.push(acc);
                        } else {
                            grad_arrivals.push((bi, xfer));
                        }
                    } else if m + 1 == micro {
                        grad_arrivals.push((bi, chunk));
                    }
                    Ok(())
                },
            )?;
            // Activations of this micro-step occupy HBM from the end of
            // forward until the last backward chunk releases them.
            if plan.activation_bytes > 0 {
                ctx.track_alloc(hbm, plan.activation_bytes, fwd, Some(last));
            }
            last_bwd_chunk = Some(last);
        }

        // --- Optimizer phase -----------------------------------------
        // STE: a global norm/NaN synchronization gates every step.
        let norm_sync = if opts.use_stv {
            None
        } else {
            let all: Vec<TaskId> = grad_arrivals.iter().map(|&(_, t)| t).collect();
            Some(
                ctx.sim.add_task(
                    TaskSpec::compute(
                        ctx.cpu,
                        SimTime::from_secs((4 * params) as f64 / chip.cpu.mem_bandwidth) + overhead,
                    )
                    .with_label("global-norm-sync")
                    .after_all(all),
                )?,
            )
        };

        for &(bi, arrival) in &grad_arrivals {
            let elems = plan_buckets.bucket_elems(bi);
            if plan_buckets.is_retained(bi) {
                // GPU-resident optimizer step.
                let mut spec =
                    TaskSpec::compute(ctx.gpu, gpu_optimizer_time(&chip.gpu, elems) + overhead)
                        .with_label(format!("step-gpu[{bi}]"))
                        .tagged(TaskTag::OptimizerStep)
                        .after(arrival);
                if let Some(ns) = norm_sync {
                    spec = spec.after(ns);
                }
                let step = ctx.sim.add_task(spec)?;
                iter_end_deps.push(step);
            } else {
                // CPU optimizer step (+ fused cast overhead if any).
                let step_time = pipeline_step_time(opts.optimizer, &chip.cpu, elems)
                    + cast.fused_optimizer_overhead(chip, elems);
                let mut spec = TaskSpec::compute(ctx.cpu, step_time + overhead)
                    .with_label(format!("step-cpu[{bi}]"))
                    .tagged(TaskTag::OptimizerStep)
                    .after(arrival);
                if let Some(ns) = norm_sync {
                    spec = spec.after(ns);
                }
                let step = ctx.sim.add_task(spec)?;
                // FP32 gradient staging held until the optimizer consumes it.
                ctx.track_alloc(ddr, 4 * elems, arrival, Some(step));

                // STV: background validation on spare cores, off the
                // critical path (scans the bucket's gradients).
                if opts.use_stv {
                    ctx.sim.add_task(
                        TaskSpec::compute(
                            cpu_val,
                            SimTime::from_secs(
                                (4 * elems) as f64 / (chip.cpu.mem_bandwidth * 0.25),
                            ),
                        )
                        .with_label(format!("validate[{bi}]"))
                        .after(arrival),
                    )?;
                }

                // Parameter swap-in.
                let (ret_time, ret_dep) = match cast {
                    CastPlacement::GpuCastMoveFp32 => (chip.c2c.transfer_time(4 * elems), step),
                    CastPlacement::CpuCastMoveFp16Pageable => {
                        let c = ctx.sim.add_task(
                            TaskSpec::cast(
                                ctx.cpu,
                                SimTime::from_secs((elems * 6) as f64 / chip.cpu.mem_bandwidth)
                                    + overhead,
                            )
                            .with_label(format!("cast-param[{bi}]"))
                            .after(step),
                        )?;
                        (chip.c2c.transfer_time_pageable(2 * elems), c)
                    }
                    CastPlacement::CpuCastMoveFp16Fused => {
                        (chip.c2c.transfer_time(2 * elems), step)
                    }
                };
                let ret = ctx.sim.add_task(
                    TaskSpec::transfer(ctx.h2d, ret_time + overhead)
                        .with_label(format!("param-in[{bi}]"))
                        .after(ret_dep),
                )?;
                let param_bytes = match cast {
                    CastPlacement::GpuCastMoveFp32 => 4 * elems,
                    _ => 2 * elems,
                };
                ctx.track_transfer(ret, &chip.c2c, param_bytes);
                if cast == CastPlacement::GpuCastMoveFp32 {
                    let c = ctx.sim.add_task(
                        TaskSpec::cast(
                            ctx.gpu,
                            SimTime::from_secs((elems * 6) as f64 / chip.gpu.mem_bandwidth)
                                + overhead,
                        )
                        .with_label(format!("cast-param-gpu[{bi}]"))
                        .after(ret),
                    )?;
                    iter_end_deps.push(c);
                } else {
                    iter_end_deps.push(ret);
                }
            }
        }

        iters.close(&mut ctx, iter_end_deps)?;
    }

    ctx.finish_profiled(system, iters.gates(), flops.effective(), chip, plan)
}

/// Extracts a steady-state [`TrainReport`] from a multi-iteration trace
/// (shared with the multi-chip and baseline builders).
///
/// # Panics
/// Panics if fewer than two iteration gates are supplied (steady state
/// requires at least one full iteration delta).
#[allow(clippy::too_many_arguments)]
pub fn finalize_report(
    system: &str,
    trace: &Trace,
    gates: &[TaskId],
    gpu: superchip_sim::engine::ResourceId,
    cpu: superchip_sim::engine::ResourceId,
    effective_flops: f64,
    chip: &ChipSpec,
    plan: ExecutionPlan,
    peaks: Vec<(String, u64)>,
) -> TrainReport {
    assert!(gates.len() >= 2, "need >= 2 iterations for steady state");
    let first = trace.end_time(gates[0]).expect("gate executed");
    let last = trace
        .end_time(*gates.last().expect("nonempty"))
        .expect("gate executed");
    let span = last - first;
    let iters = (gates.len() - 1) as f64;
    let iter_time = span / iters;

    // Busy time inside the steady-state window.
    let busy_in_window = |r| -> SimTime {
        trace
            .intervals_on(r)
            .into_iter()
            .map(|iv| {
                let s = iv.start.max(first);
                let e = iv.end.min(last);
                e.saturating_sub(s)
            })
            .sum()
    };
    let gpu_busy = busy_in_window(gpu);
    let cpu_busy = busy_in_window(cpu);

    let t = tflops(effective_flops, iter_time.as_secs());
    TrainReport {
        system: system.to_string(),
        plan: Some(plan),
        iter_time,
        tflops: t,
        mfu: effective_flops / (iter_time.as_secs() * chip.gpu.peak_flops * DENSE_PEAK_FRACTION),
        gpu_util: if span > SimTime::ZERO {
            gpu_busy / span
        } else {
            0.0
        },
        cpu_util: if span > SimTime::ZERO {
            cpu_busy / span
        } else {
            0.0
        },
        peaks,
        stv: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelConfig;
    use superchip_sim::presets;

    fn wl(name: &str, batch: u32) -> Workload {
        Workload::new(ModelConfig::by_name(name).unwrap(), batch, 2048)
    }

    #[test]
    fn five_b_is_feasible_and_fast() {
        let chip = presets::gh200_chip();
        let r = simulate_single_chip(&chip, &wl("5B", 8), &SuperOffloadOptions::default());
        assert!(r.feasible());
        assert!(r.tflops > 100.0, "tflops {}", r.tflops);
        assert!(r.gpu_util > 0.7, "gpu util {}", r.gpu_util);
    }

    #[test]
    fn ablation_is_monotone() {
        // Table 2: each enabled technique should not hurt throughput.
        let chip = presets::gh200_chip();
        let w = wl("5B", 8);
        let rows = [
            SuperOffloadOptions::ablation(false, false, false, false),
            SuperOffloadOptions::ablation(true, false, false, false),
            SuperOffloadOptions::ablation(true, true, false, false),
            SuperOffloadOptions::ablation(true, true, true, false),
            SuperOffloadOptions::ablation(true, true, true, true),
        ];
        let mut prev = 0.0;
        for (i, opts) in rows.iter().enumerate() {
            let r = simulate_single_chip(&chip, &w, opts);
            assert!(r.feasible(), "row {i} OOM");
            assert!(
                r.tflops >= prev * 0.98,
                "row {i} regressed: {} < {prev}",
                r.tflops
            );
            prev = r.tflops;
        }
    }

    #[test]
    fn stv_is_the_largest_single_win() {
        let chip = presets::gh200_chip();
        let w = wl("5B", 8);
        let without = simulate_single_chip(
            &chip,
            &w,
            &SuperOffloadOptions::ablation(true, true, false, false),
        );
        let with = simulate_single_chip(
            &chip,
            &w,
            &SuperOffloadOptions::ablation(true, true, true, false),
        );
        let gain = with.tflops / without.tflops;
        assert!(gain > 1.2, "STV gain only {gain}");
    }

    #[test]
    fn large_model_uses_flow_and_fits() {
        let chip = presets::gh200_chip();
        let r = simulate_single_chip(&chip, &wl("25B", 8), &SuperOffloadOptions::default());
        assert!(
            r.feasible(),
            "25B should fit on one GH200 with SuperOffload"
        );
    }

    #[test]
    fn absurd_model_ooms() {
        let chip = presets::gh200_chip();
        let r = simulate_single_chip(&chip, &wl("200B", 8), &SuperOffloadOptions::default());
        assert!(!r.feasible());
    }

    #[test]
    fn gpu_utilization_near_full_with_all_techniques() {
        // Fig. 15: SuperOffload achieves near-complete GPU utilization.
        let chip = presets::gh200_chip();
        let r = simulate_single_chip(&chip, &wl("5B", 8), &SuperOffloadOptions::default());
        assert!(r.gpu_util > 0.85, "gpu util {}", r.gpu_util);
    }

    #[test]
    fn ste_leaves_gpu_idle() {
        // Fig. 4: without STV/repartitioning the GPU idles 40–50%.
        let chip = presets::gh200_chip();
        let r = simulate_single_chip(
            &chip,
            &wl("5B", 8),
            &SuperOffloadOptions::ablation(false, false, false, false),
        );
        assert!(
            r.gpu_util < 0.75,
            "STE should leave substantial idle, util {}",
            r.gpu_util
        );
    }

    #[test]
    fn repartitioning_pays_off_when_cpu_exceeds_backward() {
        // The §4.3 regime: with the slower CPU-Adam pipeline the CPU phase
        // outlasts backward, so retaining trailing buckets on the GPU trims
        // the exposed tail even under STV.
        let chip = presets::gh200_chip();
        let w = wl("5B", 8);
        let without = simulate_single_chip(
            &chip,
            &w,
            &SuperOffloadOptions::ablation(false, true, true, false),
        );
        let with = simulate_single_chip(
            &chip,
            &w,
            &SuperOffloadOptions::ablation(false, true, true, true),
        );
        assert!(without.feasible() && with.feasible());
        let gain = with.tflops / without.tflops;
        assert!(gain > 1.02, "repartitioning gain only {gain:.3}x");
    }

    #[test]
    fn tiny_bucket_hurts_throughput() {
        // Fig. 7 consequence: 1 MiB buckets underutilize the C2C link.
        let chip = presets::gh200_chip();
        let w = wl("5B", 8);
        let big = simulate_single_chip(&chip, &w, &SuperOffloadOptions::default());
        let small = simulate_single_chip(
            &chip,
            &w,
            &SuperOffloadOptions {
                bucket_bytes: superchip_sim::MIB,
                ..SuperOffloadOptions::default()
            },
        );
        assert!(
            small.tflops < big.tflops,
            "{} !< {}",
            small.tflops,
            big.tflops
        );
    }

    #[test]
    fn deterministic_reports() {
        let chip = presets::gh200_chip();
        let a = simulate_single_chip(&chip, &wl("5B", 8), &SuperOffloadOptions::default());
        let b = simulate_single_chip(&chip, &wl("5B", 8), &SuperOffloadOptions::default());
        assert_eq!(a, b);
    }
}
