//! Superchip-Aware Casting (SAC, §4.5).
//!
//! Mixed-precision offloading must cast between FP16 (GPU compute format)
//! and FP32 (CPU optimizer format) somewhere. Conventional systems minimize
//! *communication volume*: cast on the CPU and move FP16 (2 bytes/param).
//! On a Superchip this is wrong twice over: (1) the C2C link is fast enough
//! that halving volume buys little, and (2) the transfer-then-cast pipeline
//! stages through an **unpinned** temporary host buffer, falling off the DMA
//! fast path. SuperOffload casts on the GPU and moves FP32 over the pinned
//! path, which Fig. 9 measures as ~2× faster. This module models all three
//! strategies and picks per link.

use superchip_sim::topology::ChipSpec;
use superchip_sim::SimTime;

/// Bytes of device-memory traffic per element for an f16↔f32 cast
/// (read one format + write the other: 2 + 4).
pub const CAST_BYTES_PER_ELEM: u64 = 6;

/// Where the precision cast happens, and in which format the link is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CastPlacement {
    /// Cast on the GPU, move FP32 over the pinned DMA path (SuperOffload's
    /// choice on Superchips).
    GpuCastMoveFp32,
    /// Move FP16, cast on the CPU via an unpinned staging buffer (the
    /// default transfer-then-cast pipeline the paper measures in Fig. 9).
    CpuCastMoveFp16Pageable,
    /// Move FP16 into a pre-pinned buffer and fuse the cast into the CPU
    /// optimizer (the classic ZeRO-Offload design on PCIe machines).
    CpuCastMoveFp16Fused,
}

impl CastPlacement {
    /// One-way time to deliver `elems` parameters' gradients from GPU to CPU
    /// in FP32-usable form (cast included; for the fused variant the cast
    /// cost is charged to the optimizer instead and excluded here).
    pub fn one_way_time(self, chip: &ChipSpec, elems: u64) -> SimTime {
        match self {
            CastPlacement::GpuCastMoveFp32 => {
                let cast = SimTime::from_secs(
                    (elems * CAST_BYTES_PER_ELEM) as f64 / chip.gpu.mem_bandwidth,
                );
                cast + chip.c2c.transfer_time(4 * elems)
            }
            CastPlacement::CpuCastMoveFp16Pageable => {
                let cast = SimTime::from_secs(
                    (elems * CAST_BYTES_PER_ELEM) as f64 / chip.cpu.mem_bandwidth,
                );
                chip.c2c.transfer_time_pageable(2 * elems) + cast
            }
            CastPlacement::CpuCastMoveFp16Fused => chip.c2c.transfer_time(2 * elems),
        }
    }

    /// Round-trip time (gradients out, updated parameters back) for `elems`
    /// parameters — the quantity Fig. 9 compares.
    pub fn round_trip_time(self, chip: &ChipSpec, elems: u64) -> SimTime {
        self.one_way_time(chip, elems) * 2.0
    }

    /// Extra CPU-side cost this placement folds into the optimizer step
    /// (non-zero only for the fused variant).
    pub fn fused_optimizer_overhead(self, chip: &ChipSpec, elems: u64) -> SimTime {
        match self {
            CastPlacement::CpuCastMoveFp16Fused => {
                SimTime::from_secs((elems * CAST_BYTES_PER_ELEM) as f64 / chip.cpu.mem_bandwidth)
            }
            _ => SimTime::ZERO,
        }
    }

    /// Link bytes moved one way per element.
    pub fn wire_bytes_per_elem(self) -> u64 {
        match self {
            CastPlacement::GpuCastMoveFp32 => 4,
            _ => 2,
        }
    }

    /// Chooses the cheaper placement for `chip` at a representative bucket
    /// size — GPU-side casting on C2C-class links, fused CPU casting on
    /// PCIe-class links (reproducing both the paper's finding and the
    /// conventional wisdom it revisits).
    pub fn choose(chip: &ChipSpec, elems: u64) -> CastPlacement {
        let candidates = [
            CastPlacement::GpuCastMoveFp32,
            CastPlacement::CpuCastMoveFp16Pageable,
            CastPlacement::CpuCastMoveFp16Fused,
        ];
        // Compare total cost including any fused optimizer surcharge.
        candidates
            .into_iter()
            .min_by(|a, b| {
                let ta = a.round_trip_time(chip, elems) + a.fused_optimizer_overhead(chip, elems);
                let tb = b.round_trip_time(chip, elems) + b.fused_optimizer_overhead(chip, elems);
                ta.cmp(&tb)
            })
            .expect("non-empty candidate list")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::presets;
    use superchip_sim::MIB;

    #[test]
    fn gpu_cast_wins_on_gh200() {
        // Fig. 9: Cast_cpu↔Move_fp16 takes ~2× the time of
        // Cast_gpu↔Move_fp32 in the 256 MB–2 GB range.
        let chip = presets::gh200_chip();
        for mb in [256u64, 512, 1024, 2048] {
            let elems = mb * MIB / 4; // fp32 elements for an `mb`-MiB tensor
            let gpu = CastPlacement::GpuCastMoveFp32.round_trip_time(&chip, elems);
            let cpu = CastPlacement::CpuCastMoveFp16Pageable.round_trip_time(&chip, elems);
            let ratio = cpu / gpu;
            assert!(
                (1.5..3.5).contains(&ratio),
                "{mb} MiB: cpu/gpu ratio {ratio}"
            );
        }
    }

    #[test]
    fn choose_picks_gpu_cast_on_superchip() {
        let chip = presets::gh200_chip();
        assert_eq!(
            CastPlacement::choose(&chip, 16 * MIB),
            CastPlacement::GpuCastMoveFp32
        );
    }

    #[test]
    fn choose_picks_fused_cpu_cast_on_pcie() {
        // On DGX-class machines the link is the bottleneck: halving wire
        // volume wins — the conventional wisdom the paper revisits.
        for chip in [presets::dgx2_chip(), presets::dgx_a100_chip()] {
            assert_eq!(
                CastPlacement::choose(&chip, 16 * MIB),
                CastPlacement::CpuCastMoveFp16Fused,
                "on {}",
                chip.name
            );
        }
    }

    #[test]
    fn wire_bytes() {
        assert_eq!(CastPlacement::GpuCastMoveFp32.wire_bytes_per_elem(), 4);
        assert_eq!(
            CastPlacement::CpuCastMoveFp16Pageable.wire_bytes_per_elem(),
            2
        );
    }

    #[test]
    fn fused_overhead_only_for_fused() {
        let chip = presets::gh200_chip();
        assert_eq!(
            CastPlacement::GpuCastMoveFp32.fused_optimizer_overhead(&chip, 1000),
            SimTime::ZERO
        );
        assert!(
            CastPlacement::CpuCastMoveFp16Fused.fused_optimizer_overhead(&chip, 1 << 20)
                > SimTime::ZERO
        );
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let chip = presets::gh200_chip();
        let one = CastPlacement::GpuCastMoveFp32.one_way_time(&chip, 1 << 24);
        let rt = CastPlacement::GpuCastMoveFp32.round_trip_time(&chip, 1 << 24);
        assert!((rt.as_secs() - 2.0 * one.as_secs()).abs() < 1e-12);
    }
}
