//! Step-journal determinism and accounting tests.
//!
//! These live in their own integration-test binary (separate process) on
//! purpose: the tensorlite op counters are process-wide, and the crate's
//! unit tests run tensor kernels concurrently, which would pollute
//! counter-delta assertions. Within this binary, tests that enable the
//! counters serialize through [`guard`].

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::engine::Sample;
use superoffload::trainer::{JournalConfig, Trainer, JOURNAL_SCHEMA};
use tensorlite::OpKind;

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn model() -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 43,
            hidden: 16,
            layers: 2,
            heads: 2,
            max_seq: 16,
        },
        808,
    )
}

/// Runs a short journaled training loop at `threads` workers and returns
/// the deterministic JSONL.
fn journaled_jsonl(threads: usize, steps: u64, seed: u64) -> String {
    tensorlite::pool::with_threads(threads, || {
        let mut b = Trainer::new(model());
        b.journal(JournalConfig::default());
        let mut trainer = b.build();
        let mut pile = SyntheticPile::new(43, seed);
        trainer.run(steps, || pile.next_batch(2, 12)).unwrap();
        trainer.journal().unwrap().to_jsonl()
    })
}

#[test]
fn jsonl_is_byte_identical_across_reruns_and_thread_counts() {
    let _g = guard();
    let base = journaled_jsonl(1, 6, 42);
    assert_eq!(journaled_jsonl(1, 6, 42), base, "rerun must be identical");
    assert_eq!(journaled_jsonl(2, 6, 42), base, "threads=2 must match");
    assert_eq!(journaled_jsonl(7, 6, 42), base, "threads=7 must match");
    assert!(base.starts_with(&format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"")));
}

#[test]
fn per_step_counters_account_the_whole_stack() {
    let _g = guard();
    let mut b = Trainer::new(model());
    b.journal(JournalConfig::default());
    let mut trainer = b.build();
    let mut pile = SyntheticPile::new(43, 7);
    trainer.run(4, || pile.next_batch(2, 12)).unwrap();
    let j = trainer.journal().unwrap();
    for r in j.records() {
        let c = &r.counters;
        // Forward + backward of a 2-layer GPT must hit every kernel family.
        assert!(c.calls(OpKind::MatMul) > 0, "step {}", r.step);
        assert!(c.calls(OpKind::Softmax) > 0, "step {}", r.step);
        assert!(c.calls(OpKind::LayerNorm) > 0, "step {}", r.step);
        assert!(c.calls(OpKind::Gelu) > 0, "step {}", r.step);
        assert!(c.calls(OpKind::CrossEntropy) > 0, "step {}", r.step);
        assert!(c.total_flops() > 0, "step {}", r.step);
        assert!(c.allocated_bytes > 0, "step {}", r.step);
        // Applied/clipped steps run the optimizer over every parameter.
        if r.outcome != "skipped" {
            assert!(c.calls(OpKind::AdamStep) > 0, "step {}", r.step);
            assert!(
                c.elems(OpKind::AdamStep) >= trainer.model().num_params() as u64,
                "step {}",
                r.step
            );
        }
    }
}

#[test]
fn measured_mfu_is_sane() {
    let _g = guard();
    let mut b = Trainer::new(model());
    b.journal(JournalConfig::default());
    let mut trainer = b.build();
    let mut pile = SyntheticPile::new(43, 9);
    trainer.run(3, || pile.next_batch(2, 12)).unwrap();
    let j = trainer.journal().unwrap();
    let mfu = j.mean_mfu();
    assert!(mfu > 0.0, "measured MFU must be positive, got {mfu}");
    assert!(mfu <= 1.0, "measured MFU must not exceed 1, got {mfu}");
    for t in j.timings() {
        assert!(t.wall_secs > 0.0);
        assert!(t.tokens_per_sec > 0.0);
        assert!(
            t.mfu >= 0.0 && t.mfu <= 1.0,
            "step {} mfu {}",
            t.step,
            t.mfu
        );
    }
    assert!(j.mean_tokens_per_sec() > 0.0);
}

#[test]
fn journal_attaches_to_run_profile() {
    let _g = guard();
    use superoffload::report::{RunProfile, TrainReport};
    let mut b = Trainer::new(model());
    b.journal(JournalConfig::default());
    let mut trainer = b.build();
    let mut pile = SyntheticPile::new(43, 13);
    trainer.run(3, || pile.next_batch(2, 12)).unwrap();

    let mut report = TrainReport::oom("trainer");
    trainer.fold_into(&mut report);
    let trace = superchip_sim::Simulator::new().run().unwrap();
    let mut profile = RunProfile::from_trace(report, trace);
    profile.attach_journal(trainer.journal().unwrap());
    let summary = profile.journal.unwrap();
    assert_eq!(summary.steps, 3);
    let snap = profile.snapshot_json();
    superchip_sim::telemetry::validate_json(&snap).unwrap();
    assert!(snap.contains("journal.steps"));
    assert!(snap.contains("journal.flops"));
    assert!(snap.contains("journal.loss"));
}

#[test]
fn journaling_does_not_change_the_trajectory() {
    let _g = guard();
    let batches: Vec<Vec<Sample>> = {
        let mut pile = SyntheticPile::new(43, 21);
        (0..5).map(|_| pile.next_batch(2, 12)).collect()
    };
    let mut plain = Trainer::new(model()).build();
    for b in &batches {
        plain.step(b).unwrap();
    }
    let mut jb = Trainer::new(model());
    jb.journal(JournalConfig::default());
    let mut journaled = jb.build();
    for b in &batches {
        journaled.step(b).unwrap();
    }
    assert_eq!(plain.model().params(), journaled.model().params());
    assert_eq!(plain.losses(), journaled.losses());
}
