//! Property-based tests of the Ulysses all-to-all attention relayout.

use proptest::prelude::*;
use superoffload::ulysses_numeric::{
    all_to_all_to_heads, all_to_all_to_sequence, dense_attention, shard_sequence, ulysses_attention,
};
use tensorlite::{Tensor, XorShiftRng};

fn qkv(seq: usize, width: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = XorShiftRng::new(seed);
    (
        Tensor::randn(&[seq, width], 1.0, &mut rng),
        Tensor::randn(&[seq, width], 1.0, &mut rng),
        Tensor::randn(&[seq, width], 1.0, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property over random shapes: distributed == dense,
    /// bit for bit.
    #[test]
    fn ulysses_exactness_over_random_shapes(
        ranks_pow in 0u32..3,
        heads_mult in 1usize..3,
        seq_mult in 1usize..4,
        head_dim_pow in 1u32..4,
        seed in 0u64..1000,
    ) {
        let ranks = 1usize << ranks_pow;
        let heads = ranks * heads_mult;
        let head_dim = 1usize << head_dim_pow;
        let width = heads * head_dim;
        let seq = ranks * seq_mult * 2;
        let (q, k, v) = qkv(seq, width, seed);
        let dense = dense_attention(&q, &k, &v, heads).unwrap();
        let distributed = ulysses_attention(&q, &k, &v, heads, ranks).unwrap();
        prop_assert_eq!(dense.data(), distributed.data());
    }

    /// The two all-to-alls are inverse permutations for any divisible shape.
    #[test]
    fn all_to_alls_invert(
        ranks_pow in 0u32..3,
        seq_mult in 1usize..5,
        seed in 0u64..500,
    ) {
        let ranks = 1usize << ranks_pow;
        let heads = ranks * 2;
        let width = heads * 4;
        let seq = ranks * seq_mult;
        let (q, k, v) = qkv(seq, width, seed);
        let shards = shard_sequence(&q, &k, &v, ranks).unwrap();
        let by_heads = all_to_all_to_heads(&shards, heads).unwrap();
        for (orig, get) in [(q.data(), 0usize), (k.data(), 1), (v.data(), 2)] {
            let tensors: Vec<Tensor> = by_heads
                .iter()
                .map(|s| match get {
                    0 => s.q.clone(),
                    1 => s.k.clone(),
                    _ => s.v.clone(),
                })
                .collect();
            let back = all_to_all_to_sequence(&tensors, heads).unwrap();
            let mut flat = Vec::new();
            for t in &back {
                flat.extend_from_slice(t.data());
            }
            prop_assert_eq!(flat.as_slice(), orig);
        }
    }

    /// Sharding preserves every element exactly once.
    #[test]
    fn shards_partition_tokens(ranks_pow in 0u32..3, seq_mult in 1usize..5, seed in 0u64..500) {
        let ranks = 1usize << ranks_pow;
        let seq = ranks * seq_mult;
        let (q, k, v) = qkv(seq, 8, seed);
        let shards = shard_sequence(&q, &k, &v, ranks).unwrap();
        let total: usize = shards.iter().map(|s| s.q.len()).sum();
        prop_assert_eq!(total, q.len());
        let mut flat = Vec::new();
        for s in &shards {
            flat.extend_from_slice(s.q.data());
        }
        prop_assert_eq!(flat.as_slice(), q.data());
    }
}
