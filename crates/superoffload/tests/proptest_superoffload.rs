//! Property-based tests of SuperOffload's policy and planning invariants.

use llm_model::{ModelConfig, Workload};
use proptest::prelude::*;
use superchip_sim::presets;
use superchip_sim::SimTime;
use superoffload::bucket::{min_retained, BucketPlan};
use superoffload::casting::CastPlacement;
use superoffload::costs::{pipeline_step_time, OptimizerImpl};
use superoffload::policy::{choose_policy, flow_efficiency, WeightPolicy};
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

proptest! {
    /// Bucket plans always cover every element exactly once, with all full
    /// buckets except possibly the last.
    #[test]
    fn bucket_plans_partition(total in 1u64..10_000_000_000, bucket_kb in 1u64..262_144,
                              retained in 0u32..1000) {
        let plan = BucketPlan::new(total, bucket_kb * 1024, retained);
        let sum: u64 = (0..plan.num_buckets).map(|i| plan.bucket_elems(i)).sum();
        prop_assert_eq!(sum, total);
        for i in 0..plan.num_buckets.saturating_sub(1) {
            prop_assert_eq!(plan.bucket_elems(i), plan.elems_per_bucket);
        }
        prop_assert!(plan.retained_on_gpu <= plan.num_buckets);
        prop_assert_eq!(plan.cpu_buckets() + plan.retained_on_gpu, plan.num_buckets);
        // Retained flags are a suffix in production order.
        let mut seen_retained = false;
        for i in 0..plan.num_buckets {
            if plan.is_retained(i) {
                seen_retained = true;
            } else {
                prop_assert!(!seen_retained, "retention must be a trailing suffix");
            }
        }
    }

    /// Flow efficiency is monotone in batch, seq, and bandwidth, and always
    /// a valid fraction.
    #[test]
    fn flow_efficiency_monotone(b in 1u32..64, s in 128u64..1_000_000,
                                bw in 1e9f64..1e12, peak in 1e12f64..2e15) {
        let e = flow_efficiency(b, s, bw, peak);
        prop_assert!((0.0..1.0).contains(&e));
        prop_assert!(flow_efficiency(b + 1, s, bw, peak) >= e);
        prop_assert!(flow_efficiency(b, s * 2, bw, peak) >= e);
        prop_assert!(flow_efficiency(b, s, bw * 2.0, peak) >= e);
        prop_assert!(flow_efficiency(b, s, bw, peak * 2.0) <= e);
    }

    /// The weight policy always yields a residency fraction in [0, 1], and
    /// reserving more GPU memory never increases it.
    #[test]
    fn policy_residency_fraction_valid(layers in 10u32..80, hidden_pow in 11u32..14,
                                       reserved_gb in 0u64..64) {
        let chip = presets::gh200_chip();
        let cfg = ModelConfig::new("t", layers, 1 << hidden_pow);
        let wl = Workload::new(cfg, 8, 2048);
        let base = choose_policy(&chip, &wl, 0).resident_fraction();
        let tighter = choose_policy(&chip, &wl, reserved_gb << 30).resident_fraction();
        prop_assert!((0.0..=1.0).contains(&base));
        prop_assert!((0.0..=1.0).contains(&tighter));
        prop_assert!(tighter <= base + 1e-12);
    }

    /// Stationary policy implies the FP16 weights genuinely fit.
    #[test]
    fn stationary_implies_fit(layers in 5u32..100, hidden_pow in 11u32..14) {
        let chip = presets::gh200_chip();
        let cfg = ModelConfig::new("t", layers, 1 << hidden_pow);
        let wl = Workload::new(cfg.clone(), 8, 2048);
        if choose_policy(&chip, &wl, 0) == WeightPolicy::Stationary {
            prop_assert!(4 * cfg.param_count() <= chip.gpu.mem_bytes);
        }
    }

    /// min_retained is monotone in the backward speed: a slower backward
    /// (more time per element) needs at least as much retention... inverted:
    /// a FASTER backward (less overlap window) needs >= retention.
    #[test]
    fn min_retained_monotone_in_bwd_speed(params in 100_000_000u64..5_000_000_000) {
        let chip = presets::gh200_chip();
        let slow_bwd = chip.gpu.time_for_flops(4.0 * 64.0 * 2048.0);
        let fast_bwd = slow_bwd / 8.0;
        let n_slow = min_retained(&chip, params, 64 << 20,
            CastPlacement::GpuCastMoveFp32, OptimizerImpl::GraceAdam, slow_bwd);
        let n_fast = min_retained(&chip, params, 64 << 20,
            CastPlacement::GpuCastMoveFp32, OptimizerImpl::GraceAdam, fast_bwd);
        prop_assert!(n_fast >= n_slow, "fast bwd {n_fast} < slow bwd {n_slow}");
    }

    /// Pipeline step time is monotone in parameters and bounded below by the
    /// kernel time.
    #[test]
    fn pipeline_time_bounds(params in 1u64..10_000_000_000) {
        let cpu = presets::grace_cpu(480 * superchip_sim::GB);
        for opt in [OptimizerImpl::GraceAdam, OptimizerImpl::CpuAdam, OptimizerImpl::PtCpu] {
            let kernel = opt.step_time(&cpu, params);
            let pipeline = pipeline_step_time(opt, &cpu, params);
            prop_assert!(pipeline >= kernel);
            prop_assert!(pipeline_step_time(opt, &cpu, params * 2) >= pipeline);
        }
    }

    /// Cast round trips are positive and monotone in size for every strategy.
    #[test]
    fn cast_costs_monotone(elems in 1u64..1_000_000_000) {
        let chip = presets::gh200_chip();
        for strategy in [
            CastPlacement::GpuCastMoveFp32,
            CastPlacement::CpuCastMoveFp16Pageable,
            CastPlacement::CpuCastMoveFp16Fused,
        ] {
            let t1 = strategy.round_trip_time(&chip, elems);
            let t2 = strategy.round_trip_time(&chip, elems * 2);
            prop_assert!(t1 > SimTime::ZERO);
            prop_assert!(t2 >= t1);
        }
    }

    /// The single-chip schedule never reports nonsense: finite TFLOPS,
    /// utilizations in [0, 1], and OOM exactly when no plan exists.
    #[test]
    fn schedule_reports_are_sane(model_idx in 0usize..8, batch_pow in 0u32..4) {
        let names = ["1B", "3B", "5B", "8B", "10B", "13B", "20B", "25B"];
        let chip = presets::gh200_chip();
        let wl = Workload::new(
            ModelConfig::by_name(names[model_idx]).unwrap(),
            1 << batch_pow,
            2048,
        );
        let r = simulate_single_chip(&chip, &wl, &SuperOffloadOptions::default());
        if r.feasible() {
            prop_assert!(r.tflops.is_finite() && r.tflops > 0.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.gpu_util));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.cpu_util));
            prop_assert!(r.iter_time > SimTime::ZERO);
            prop_assert!((0.0..=0.55).contains(&r.mfu), "mfu {}", r.mfu);
        } else {
            prop_assert_eq!(r.tflops, 0.0);
        }
    }
}
