//! Dense row-major `f32` tensors.

use crate::counters::{self, OpKind};
use crate::error::TensorError;
use crate::pool::Pool;
use crate::rng::XorShiftRng;

/// Column width of a packed B panel. 64 f32s = 256 B per panel row: a
/// handful of cache lines that stay resident while the k loop streams over
/// them, and a multiple of every SIMD width the compiler may pick.
const GEMM_NC: usize = 64;
/// Rows of B (the k extent) per packed tile; `GEMM_KC × GEMM_NC` f32s =
/// 64 KiB, sized to sit in L1/L2 while every output row of a worker's
/// block is swept over it.
const GEMM_KC: usize = 256;
/// Square tile edge for the blocked transpose (32×32×4 B = 4 KiB per
/// operand tile, so one source and one destination tile fit in L1
/// together).
const TRANSPOSE_TILE: usize = 32;

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// Rank-2 tensors carry the matrix kernels the transformer needs; higher
/// ranks are supported for storage and element-wise math.
///
/// ```
/// use tensorlite::Tensor;
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(x.shape(), &[2, 3]);
/// assert_eq!(x.get2(1, 2)?, 6.0);
/// # Ok::<(), tensorlite::TensorError>(())
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::new_unchecked(self.data.clone(), self.shape.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        if !self.data.is_empty() {
            counters::record_free(self.data.len());
        }
    }
}

impl Tensor {
    /// The one construction funnel: every buffer that becomes tensor
    /// storage passes through here so the byte accounting in
    /// [`crate::counters`] sees it.
    fn new_unchecked(data: Vec<f32>, shape: Vec<usize>) -> Self {
        counters::record_alloc(data.len());
        Tensor { data, shape }
    }

    /// Creates a tensor from a flat vector and shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor::new_unchecked(data, shape.to_vec()))
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::new_unchecked(vec![0.0; shape.iter().product()], shape.to_vec())
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor::new_unchecked(vec![value; shape.iter().product()], shape.to_vec())
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Tensor of i.i.d. normal samples with the given std deviation.
    pub fn randn(shape: &[usize], std: f32, rng: &mut XorShiftRng) -> Self {
        let data = (0..shape.iter().product())
            .map(|_| rng.normal_scaled(0.0, std))
            .collect();
        Tensor::new_unchecked(data, shape.to_vec())
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Flat read-only view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat storage. The bytes leave
    /// tensor accounting here (counted as freed).
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        counters::record_free(data.len());
        data
    }

    /// Rank-2 element read.
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for bad indices.
    pub fn get2(&self, row: usize, col: usize) -> Result<f32, TensorError> {
        self.check_rank2("get2")?;
        let (r, c) = (self.shape[0], self.shape[1]);
        if row >= r {
            return Err(TensorError::IndexOutOfBounds { index: row, len: r });
        }
        if col >= c {
            return Err(TensorError::IndexOutOfBounds { index: col, len: c });
        }
        Ok(self.data[row * c + col])
    }

    /// Rank-2 element write.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::get2`].
    pub fn set2(&mut self, row: usize, col: usize, value: f32) -> Result<(), TensorError> {
        self.check_rank2("set2")?;
        let (r, c) = (self.shape[0], self.shape[1]);
        if row >= r {
            return Err(TensorError::IndexOutOfBounds { index: row, len: r });
        }
        if col >= c {
            return Err(TensorError::IndexOutOfBounds { index: col, len: c });
        }
        self.data[row * c + col] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the element count differs.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    fn check_rank2(&self, op: &'static str) -> Result<(), TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::BadRank {
                expected: 2,
                actual: self.rank(),
                op,
            });
        }
        Ok(())
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// Returns [`TensorError::IncompatibleShapes`] on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "add")?;
        counters::record_op(OpKind::Elementwise, self.len(), self.len() as u64);
        Ok(self.zip_map(other, |a, b| a + b))
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// Returns [`TensorError::IncompatibleShapes`] on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "sub")?;
        counters::record_op(OpKind::Elementwise, self.len(), self.len() as u64);
        Ok(self.zip_map(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`TensorError::IncompatibleShapes`] on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "mul")?;
        counters::record_op(OpKind::Elementwise, self.len(), self.len() as u64);
        Ok(self.zip_map(other, |a, b| a * b))
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    /// Returns [`TensorError::IncompatibleShapes`] on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        counters::record_op(OpKind::Elementwise, self.len(), 2 * self.len() as u64);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Tensor scaled by a constant.
    pub fn scale(&self, alpha: f32) -> Tensor {
        counters::record_op(OpKind::Elementwise, self.len(), self.len() as u64);
        self.map(|x| x * alpha)
    }

    /// Applies `f` element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::new_unchecked(
            self.data.iter().map(|&x| f(x)).collect(),
            self.shape.clone(),
        )
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Panics
    /// Panics if the shapes differ (callers validate first).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor::new_unchecked(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape.clone(),
        )
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// The kernel packs `other` into cache-sized column panels, tiles the
    /// inner dimension, and parallelizes over disjoint blocks of output
    /// rows on the shared worker pool ([`Pool`]). Every output element
    /// accumulates its `k` contributions in ascending order regardless of
    /// blocking or thread count, so results are bit-identical to the
    /// straightforward serial i-k-j loop.
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] for non-matrices or
    /// [`TensorError::IncompatibleShapes`] if inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_rank2("matmul")?;
        other.check_rank2("matmul")?;
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        let packed = pack_b_panels(&other.data, k, n);
        let pool = Pool::current().limit_for(m * n * k);
        pool.par_row_chunks(&mut out, n, |first_row, block| {
            let a_rows = &self.data[first_row * k..first_row * k + (block.len() / n) * k];
            gemm_packed_block(a_rows, k, &packed, n, block);
        });
        counters::record_op(OpKind::MatMul, m * n, gemm_flops(m, k, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// Fused `selfᵀ @ other` for rank-2 tensors (`self` is `[k, m]`,
    /// `other` is `[k, n]`, the result is `[m, n]`).
    ///
    /// Equivalent to `self.transpose()?.matmul(other)` — bit-identical,
    /// since both accumulate over `k` in ascending order — but without
    /// materializing the transposed operand: each worker packs only the
    /// column stripe of `self` its output rows need.
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] for non-matrices or
    /// [`TensorError::IncompatibleShapes`] if the leading dimensions
    /// differ.
    pub fn matmul_at(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_rank2("matmul_at")?;
        other.check_rank2("matmul_at")?;
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "matmul_at",
            });
        }
        let mut out = vec![0.0f32; m * n];
        let packed = pack_b_panels(&other.data, k, n);
        let pool = Pool::current().limit_for(m * n * k);
        pool.par_row_chunks(&mut out, n, |first_row, block| {
            // Pack the worker's stripe of selfᵀ: rows `first_row..` of the
            // transpose, i.e. columns of `self`. This is the only transpose
            // work done, it is local to the worker, and it reads each
            // source cache line once per k-row.
            let rows = block.len() / n;
            let mut at = vec![0.0f32; rows * k];
            for kk in 0..k {
                let src = &self.data[kk * m + first_row..kk * m + first_row + rows];
                for (r, &v) in src.iter().enumerate() {
                    at[r * k + kk] = v;
                }
            }
            gemm_packed_block(&at, k, &packed, n, block);
        });
        counters::record_op(OpKind::MatMulAt, m * n, gemm_flops(m, k, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// Fused `self @ otherᵀ` for rank-2 tensors (`self` is `[m, k]`,
    /// `other` is `[n, k]`, the result is `[m, n]`).
    ///
    /// Equivalent to `self.matmul(&other.transpose()?)` — bit-identical,
    /// since both accumulate over `k` in ascending order — but without
    /// materializing the transposed operand: every output element is a dot
    /// product of two contiguous rows.
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] for non-matrices or
    /// [`TensorError::IncompatibleShapes`] if the trailing dimensions
    /// differ.
    pub fn matmul_bt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_rank2("matmul_bt")?;
        other.check_rank2("matmul_bt")?;
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "matmul_bt",
            });
        }
        let mut out = vec![0.0f32; m * n];
        let pool = Pool::current().limit_for(m * n * k);
        pool.par_row_chunks(&mut out, n, |first_row, block| {
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let a_row = &self.data[(first_row + r) * k..(first_row + r + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    // Single sequential accumulator: the same ascending-k
                    // order as the composed transpose-then-matmul path.
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        counters::record_op(OpKind::MatMulBt, m * n, gemm_flops(m, k, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor (blocked into square cache tiles so
    /// both the source and destination are walked a cache-resident tile at
    /// a time, instead of striding the full destination per source row).
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        self.check_rank2("transpose")?;
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        let mut ii = 0;
        while ii < m {
            let i_hi = (ii + TRANSPOSE_TILE).min(m);
            let mut jj = 0;
            while jj < n {
                let j_hi = (jj + TRANSPOSE_TILE).min(n);
                for i in ii..i_hi {
                    for j in jj..j_hi {
                        out[j * m + i] = self.data[i * n + j];
                    }
                }
                jj = j_hi;
            }
            ii = i_hi;
        }
        counters::record_op(OpKind::Transpose, m * n, 0);
        Tensor::from_vec(out, &[n, m])
    }

    /// A read-only view of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::BadRank`] / [`TensorError::IndexOutOfBounds`].
    pub fn row(&self, i: usize) -> Result<&[f32], TensorError> {
        self.check_rank2("row")?;
        let (m, n) = (self.shape[0], self.shape[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds { index: i, len: m });
        }
        Ok(&self.data[i * n..(i + 1) * n])
    }

    /// Sum of all elements (f64 accumulation).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sum() / self.len() as f64
    }

    /// L2 norm of all elements (f64 accumulation).
    pub fn l2_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum element (NaN-propagating); `None` when empty.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Returns whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// The `2·m·k·n` GEMM FLOP convention shared with `llm-model/src/flops.rs`
/// (one multiply + one add per inner-loop step), in overflow-safe u64.
fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Packs a row-major `[k, n]` matrix into column panels of [`GEMM_NC`]
/// columns: panel-major, each panel holding its `k` rows contiguously.
/// The GEMM inner loop then streams a panel row (a few cache lines) per
/// `k` step instead of striding across the full matrix width, and the
/// packed panels are shared read-only by every worker.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = vec![0.0f32; k * n];
    let mut off = 0;
    let mut jj = 0;
    while jj < n {
        let ncw = GEMM_NC.min(n - jj);
        for kk in 0..k {
            let src = &b[kk * n + jj..kk * n + jj + ncw];
            packed[off..off + ncw].copy_from_slice(src);
            off += ncw;
        }
        jj += ncw;
    }
    packed
}

/// Multiplies a block of `A` rows (`[rows, k]`, contiguous) by a
/// panel-packed `B` (see [`pack_b_panels`]) into `out` (`[rows, n]`,
/// zero-initialized).
///
/// Loop order is panel → k-tile → row → k → j: every output element sees
/// its `k` contributions in ascending order (panels partition `j`, and the
/// k-tiles are visited in order), so the result is bit-identical to the
/// naive i-k-j loop while each `GEMM_KC × GEMM_NC` tile of `B` stays
/// cache-resident across all rows of the block.
fn gemm_packed_block(a_rows: &[f32], k: usize, packed_b: &[f32], n: usize, out: &mut [f32]) {
    let rows = out.len().checked_div(n).unwrap_or(0);
    debug_assert_eq!(a_rows.len(), rows * k);
    let mut panel_off = 0;
    let mut jj = 0;
    while jj < n {
        let ncw = GEMM_NC.min(n - jj);
        let panel = &packed_b[panel_off..panel_off + k * ncw];
        let mut kk = 0;
        while kk < k {
            let k_hi = (kk + GEMM_KC).min(k);
            for r in 0..rows {
                let a_row = &a_rows[r * k..(r + 1) * k];
                let out_row = &mut out[r * n + jj..r * n + jj + ncw];
                for kidx in kk..k_hi {
                    let aik = a_row[kidx];
                    let b_row = &panel[kidx * ncw..(kidx + 1) * ncw];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
            kk = k_hi;
        }
        panel_off += k * ncw;
        jj += ncw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn zeros_ones_full_eye() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
        let e = Tensor::eye(2);
        assert_eq!(e.data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_correctness() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_coefficients() {
        // Regression: the old kernel skipped k-iterations where a == 0.0,
        // silently dropping 0.0 × NaN/∞ contributions (IEEE: both are NaN)
        // and making throughput data-dependent.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN must poison the output");
        assert_eq!(c.data()[1], 4.0);

        let binf = Tensor::from_vec(vec![f32::INFINITY, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let cinf = a.matmul(&binf).unwrap();
        assert!(cinf.data()[0].is_nan(), "0·∞ is NaN");

        // The fused variants agree on the poisoned results.
        let at = a.transpose().unwrap();
        assert!(at.matmul_at(&b).unwrap().data()[0].is_nan());
        let bt = b.transpose().unwrap();
        assert!(a.matmul_bt(&bt).unwrap().data()[0].is_nan());
    }

    #[test]
    fn matmul_handles_large_blocked_shapes() {
        // Exercise shapes that span multiple GEMM panels and k-tiles, and
        // odd remainders, against a reference i-k-j loop.
        let mut rng = XorShiftRng::new(77);
        for (m, k, n) in [(3usize, 300usize, 70usize), (5, 65, 129), (1, 257, 1)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c = a.matmul(&b).unwrap();
            let mut expect = vec![0.0f32; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let av = a.data()[i * k + kk];
                    for j in 0..n {
                        expect[i * n + j] += av * b.data()[kk * n + j];
                    }
                }
            }
            assert_eq!(c.data(), &expect[..], "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn fused_variants_match_composed_transpose_bitwise() {
        let mut rng = XorShiftRng::new(88);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[7, 9], 1.0, &mut rng);
        let fused = a.matmul_at(&b).unwrap();
        let composed = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, composed);

        let c = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let d = Tensor::randn(&[11, 6], 1.0, &mut rng);
        let fused = c.matmul_bt(&d).unwrap();
        let composed = c.matmul(&d.transpose().unwrap()).unwrap();
        assert_eq!(fused, composed);
    }

    #[test]
    fn fused_variants_reject_bad_shapes() {
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[5, 6]);
        assert!(matches!(
            a.matmul_at(&b),
            Err(TensorError::IncompatibleShapes { .. })
        ));
        assert!(matches!(
            a.matmul_bt(&b),
            Err(TensorError::IncompatibleShapes { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul_at(&v), Err(TensorError::BadRank { .. })));
        assert!(matches!(a.matmul_bt(&v), Err(TensorError::BadRank { .. })));
    }

    #[test]
    fn blocked_transpose_matches_elementwise_on_tile_straddling_shapes() {
        let mut rng = XorShiftRng::new(99);
        for (m, n) in [(1usize, 1usize), (31, 33), (32, 32), (65, 3), (40, 100)] {
            let a = Tensor::randn(&[m, n], 1.0, &mut rng);
            let t = a.transpose().unwrap();
            assert_eq!(t.shape(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(a.get2(i, j).unwrap(), t.get2(j, i).unwrap());
                }
            }
        }
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::IncompatibleShapes { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::BadRank { .. })));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[5, 3]);
        assert_eq!(t.transpose().unwrap(), a);
        assert_eq!(a.get2(1, 4).unwrap(), t.get2(4, 1).unwrap());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(10.0, &b).unwrap();
        assert_eq!(c.data(), &[31.0, 52.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
        let mut c = a.clone();
        assert!(c.axpy(1.0, &b).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.max(), Some(4.0));
        assert!(Tensor::zeros(&[0]).max().is_none());
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn finiteness_check() {
        let mut a = Tensor::zeros(&[3]);
        assert!(a.all_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn get_set_and_bounds() {
        let mut a = Tensor::zeros(&[2, 2]);
        a.set2(0, 1, 9.0).unwrap();
        assert_eq!(a.get2(0, 1).unwrap(), 9.0);
        assert!(a.get2(2, 0).is_err());
        assert!(a.set2(0, 2, 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = a.reshape(&[4]).unwrap();
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(&[3]).is_err());
    }

    #[test]
    fn row_view() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn randn_std_controls_spread() {
        let mut rng = XorShiftRng::new(11);
        let t = Tensor::randn(&[10_000], 0.02, &mut rng);
        let std = (t.data().iter().map(|x| (x * x) as f64).sum::<f64>() / t.len() as f64).sqrt();
        assert!((std - 0.02).abs() < 0.002, "std was {std}");
    }
}
