//! Software half-precision floats.
//!
//! Implemented at the bit level (no external `half` dependency) with IEEE 754
//! round-to-nearest-even semantics for `f32 → f16`, so that mixed-precision
//! overflow/underflow behaviour in the training stack is faithful: gradients
//! exceeding ±65504 become infinities, which the validation pass (§4.4 of the
//! paper) must detect.

use std::fmt;

/// IEEE 754 binary16 value.
///
/// ```
/// use tensorlite::F16;
/// assert_eq!(F16::from_f32(1.0).to_f32(), 1.0);
/// assert!(F16::from_f32(1e6).is_infinite()); // overflows f16 range
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);

    /// Creates a value from raw bits.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether the value is finite (neither NaN nor ±∞).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Whether the value is subnormal (non-zero with zero exponent).
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// bfloat16 value (truncated-mantissa f32 with round-to-nearest-even).
///
/// Included because the adaptive-precision discussion in the paper applies
/// equally to bf16 pipelines; the reproduction's mixed-precision engine can
/// run in either format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Creates a value from raw bits.
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even on the dropped 16 bits.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve NaN, force a quiet mantissa bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lower = bits & 0x0000_FFFF;
        let mut upper = bits >> 16;
        // Round to nearest, ties to even.
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper += 1;
        }
        Bf16(upper as u16)
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Whether the value is finite.
    pub fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }
}

impl From<Bf16> for f32 {
    fn from(h: Bf16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts an `f32` bit pattern to `f16` bits, round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if frac != 0 {
            sign | 0x7E00 // quiet NaN
        } else {
            sign | 0x7C00
        };
    }

    // Re-bias exponent: f32 bias 127 -> f16 bias 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }

    if new_exp <= 0 {
        // Subnormal or zero.
        if new_exp < -10 {
            return sign; // too small: flush to zero
        }
        // Add the implicit leading one, then shift into subnormal position.
        let mant = frac | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let sub = mant >> shift;
        // Round-to-nearest-even on the dropped bits.
        let round_mask = 1u32 << (shift - 1);
        let dropped = mant & ((1 << shift) - 1);
        let mut out = sub as u16;
        if dropped > round_mask || (dropped == round_mask && (out & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }

    // Normal case: keep top 10 fraction bits with RNE.
    let mut out = (sign as u32) | ((new_exp as u32) << 10) | (frac >> 13);
    let dropped = frac & 0x1FFF;
    if dropped > 0x1000 || (dropped == 0x1000 && (out & 1) == 1) {
        out += 1; // may carry into exponent, which correctly rounds up
    }
    out as u16
}

/// Converts `f16` bits to an `f32` value, exactly.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if frac == 0 {
            sign // ±0
        } else {
            // Subnormal: normalize. frac * 2^-24 == 1.m * 2^(113 - 127 - s)
            // where s is the left-shift count that brings bit 10 up.
            let mut s = 0u32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                s += 1;
            }
            f &= 0x03FF;
            sign | ((113 - s) << 23) | (f << 13)
        }
    } else if exp == 0x1F {
        if frac == 0 {
            sign | 0x7F80_0000 // ±inf
        } else {
            sign | 0x7FC0_0000 | (frac << 13) // NaN
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "failed for {x}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn overflow_becomes_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e10).is_infinite());
        assert!(F16::from_f32(-1e10).is_infinite());
        assert_eq!(F16::from_f32(-1e10).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn max_finite_preserved() {
        // 65504 is the largest finite f16.
        assert_eq!(F16::from_f32(65504.0).to_f32(), 65504.0);
        assert!(F16::from_f32(65504.0).is_finite());
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(f32::NAN).is_infinite());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal f16 = 2^-24.
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert!(h.is_subnormal());
        assert_eq!(h.to_f32(), tiny);
        // Below half of that flushes to zero.
        assert_eq!(F16::from_f32(tiny / 4.0).to_bits(), 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly between 1.0 and the next f16 (1.0 + 2^-10):
        // must round to even mantissa, i.e. 1.0.
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is between (1+2^-10) and (1+2^-9): ties to even
        // rounds up to 1.0 + 2^-9 ... actually it's a tie against the odd
        // mantissa 1, so it rounds up to mantissa 2.
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip_through_f32() {
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            let f = h.to_f32();
            let back = F16::from_f32(f);
            if h.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(
                    back.to_bits(),
                    bits,
                    "bits {bits:#06x} ({f}) did not roundtrip"
                );
            }
        }
    }

    #[test]
    fn precision_within_one_ulp() {
        let vals = [0.1f32, 0.333, std::f32::consts::PI, 100.7, 1e-3, 1234.5];
        for &v in &vals {
            let err = (F16::from_f32(v).to_f32() - v).abs() / v.abs();
            assert!(err < 1e-3, "relative error {err} too large for {v}");
        }
    }

    #[test]
    fn bf16_roundtrip_and_rounding() {
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        // bf16 keeps f32 range: 1e38 stays finite.
        assert!(Bf16::from_f32(1e38).is_finite());
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        // RNE: 1.0 + 2^-9 is a tie between 1.0 and 1.0+2^-7... check simple monotonicity instead.
        let a = Bf16::from_f32(1.004).to_f32();
        assert!((a - 1.004).abs() < 0.01);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(F16::ONE.to_string(), "1");
        assert_eq!(Bf16::ONE.to_string(), "1");
    }

    #[test]
    fn constants_are_correct() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NAN.is_nan());
    }
}
