//! Bulk precision casting and non-finite detection.
//!
//! These are the numeric-plane counterparts of the cast operators the paper
//! places on either side of the C2C link (§4.5 Superchip-Aware Casting), and
//! of the NaN/Inf scan performed by the validation pass (§4.4).

use crate::f16::{Bf16, F16};

/// Casts an `f32` slice to `f16`, element-wise, round-to-nearest-even.
pub fn f32_to_f16_slice(src: &[f32]) -> Vec<F16> {
    src.iter().map(|&x| F16::from_f32(x)).collect()
}

/// Casts an `f16` slice back to `f32`, exactly.
pub fn f16_to_f32_slice(src: &[F16]) -> Vec<f32> {
    src.iter().map(|&h| h.to_f32()).collect()
}

/// Casts `f32` into a caller-provided `f16` buffer (no allocation).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn f32_to_f16_into(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "cast buffers must match in length");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F16::from_f32(s);
    }
}

/// Casts `f16` into a caller-provided `f32` buffer (no allocation).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn f16_to_f32_into(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "cast buffers must match in length");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Casts an `f32` slice to `bf16`, element-wise, round-to-nearest-even.
pub fn f32_to_bf16_slice(src: &[f32]) -> Vec<Bf16> {
    src.iter().map(|&x| Bf16::from_f32(x)).collect()
}

/// Casts a `bf16` slice back to `f32`, exactly.
pub fn bf16_to_f32_slice(src: &[Bf16]) -> Vec<f32> {
    src.iter().map(|&h| h.to_f32()).collect()
}

/// Returns `true` if any element is NaN or ±∞ — the global check mixed
/// precision training performs before an optimizer step.
pub fn has_nonfinite(values: &[f32]) -> bool {
    values.iter().any(|v| !v.is_finite())
}

/// Returns `true` if any `f16` element is NaN or ±∞.
pub fn has_nonfinite_f16(values: &[F16]) -> bool {
    values.iter().any(|v| !v.is_finite())
}

/// Sum of squares of a slice (partial gradient-norm accumulation), in `f64`
/// to avoid cancellation across large models.
pub fn sum_of_squares(values: &[f32]) -> f64 {
    values.iter().map(|&v| (v as f64) * (v as f64)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_roundtrip_is_lossless_for_representable() {
        let src: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let half = f32_to_f16_slice(&src);
        let back = f16_to_f32_slice(&half);
        assert_eq!(src, back);
    }

    #[test]
    fn in_place_casts_match_allocating_casts() {
        let src: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let mut dst = vec![F16::ZERO; 64];
        f32_to_f16_into(&src, &mut dst);
        assert_eq!(dst, f32_to_f16_slice(&src));
        let mut back = vec![0.0f32; 64];
        f16_to_f32_into(&dst, &mut back);
        assert_eq!(back, f16_to_f32_slice(&dst));
    }

    #[test]
    #[should_panic(expected = "must match in length")]
    fn mismatched_cast_buffers_panic() {
        let src = [1.0f32; 4];
        let mut dst = vec![F16::ZERO; 3];
        f32_to_f16_into(&src, &mut dst);
    }

    #[test]
    fn nonfinite_detection() {
        assert!(!has_nonfinite(&[1.0, -2.0, 0.0]));
        assert!(has_nonfinite(&[1.0, f32::NAN]));
        assert!(has_nonfinite(&[f32::INFINITY]));
        assert!(has_nonfinite(&[f32::NEG_INFINITY, 3.0]));
        assert!(!has_nonfinite(&[]));
    }

    #[test]
    fn f16_overflow_is_detected_after_cast() {
        // A gradient blow-up beyond f16 range must surface as non-finite
        // after the cast — this is what triggers an STV rollback.
        let grads = [70000.0f32, 1.0];
        let half = f32_to_f16_slice(&grads);
        assert!(has_nonfinite_f16(&half));
        assert!(!has_nonfinite(&grads));
    }

    #[test]
    fn bf16_slice_roundtrip_preserves_range() {
        // bf16 keeps f32 range: values that overflow f16 survive bf16.
        let src = vec![1.0f32, 70000.0, 3.0e38, -1.5e-30];
        let back = bf16_to_f32_slice(&f32_to_bf16_slice(&src));
        assert!(back.iter().all(|v| v.is_finite()));
        assert_eq!(back[0], 1.0);
        // Relative error bounded by bf16's 8-bit significand (~0.4%).
        for (a, b) in src.iter().zip(&back) {
            assert!(((a - b) / a).abs() < 0.005, "{a} -> {b}");
        }
    }

    #[test]
    fn sum_of_squares_accumulates_in_f64() {
        let v = vec![3.0f32, 4.0];
        assert_eq!(sum_of_squares(&v), 25.0);
        // Large vector of small values: f64 accumulation keeps precision.
        let v = vec![1e-4f32; 1_000_000];
        let s = sum_of_squares(&v);
        assert!((s - 1e-2).abs() < 1e-6);
    }
}
