//! Process-wide, thread-safe per-op accounting for the numeric plane.
//!
//! Every kernel in `tensor.rs` / `ops.rs` reports (op kind, output
//! elements, FLOPs) here, every tensor-storage allocation and free reports
//! its bytes, and the worker pool reports each parallel region it enters.
//! The counters feed the step journal (`superoffload::trainer`), which
//! turns per-step deltas into ground-truth measured work — the numeric-
//! plane analogue of the simulator plane's telemetry.
//!
//! # Cost model
//!
//! FLOP counts follow the same analytic conventions as
//! `llm-model/src/flops.rs`: a matmul of `[m,k] @ [k,n]` costs `2·m·k·n`
//! (one multiply + one add per inner step). Non-GEMM kernels use fixed
//! documented per-element costs (see [`OpKind`]); they are conventions,
//! not micro-architectural truth, chosen so totals reconcile with the
//! model-level formulas.
//!
//! Byte accounting covers *tensor storage only*: 4 bytes per `f32` element
//! counted when a buffer becomes a [`crate::Tensor`]'s storage and again
//! when that storage is dropped (or handed back via `into_vec`). Kernel
//! scratch (packed GEMM panels, per-worker transpose stripes) is
//! deliberately excluded — it is bounded and transient.
//!
//! # Determinism
//!
//! All counters are plain `Relaxed` atomics: additions commute, so the
//! totals read at a quiescent point (no kernel in flight) are identical
//! regardless of thread count or interleaving. Two fields are the
//! exception and must never enter a deterministic artifact:
//!
//! - `peak_bytes` — the live-bytes high-water mark depends on *when*
//!   concurrent workers allocate, so it varies run to run;
//! - `pool_parallel_regions` — whether a region went parallel depends on
//!   the configured thread count.
//!
//! Everything else (calls, elements, FLOPs, allocated/freed/live bytes,
//! total pool regions) is a pure function of the executed kernels.
//!
//! # Overhead when disabled
//!
//! Recording is gated on one `AtomicBool` loaded with `Relaxed` ordering;
//! when disabled every hook is a single predictable-branch load, so the
//! numeric plane pays no measurable cost (the realbench compare gate in CI
//! holds tokens/sec within 1% of the pre-counter baseline).
//!
//! # Enable/reset protocol
//!
//! Call [`reset`] + [`enable`] at a quiescent point (no live tensors you
//! intend to account for, no kernels in flight). Frees are only recorded
//! while enabled, so a tensor allocated before [`enable`] and dropped
//! after it would show up as an unmatched free; the conservation invariant
//! `allocated − freed = live` is maintained by construction for every
//! alloc/free observed while enabled.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// The op kinds the accounting core distinguishes, with their per-element
/// FLOP conventions (GEMM kinds use `2·m·k·n` instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    /// `[m,k] @ [k,n]` GEMM — `2·m·k·n` FLOPs.
    MatMul = 0,
    /// Fused `Aᵀ @ B` GEMM — `2·m·k·n` FLOPs.
    MatMulAt = 1,
    /// Fused `A @ Bᵀ` GEMM — `2·m·k·n` FLOPs.
    MatMulBt = 2,
    /// Blocked transpose — 0 FLOPs (pure data movement).
    Transpose = 3,
    /// Row-wise softmax — 5 FLOPs/element (sub, exp, add, mul, scale).
    Softmax = 4,
    /// Softmax backward — 4 FLOPs/element.
    SoftmaxBackward = 5,
    /// Layer norm forward — 8 FLOPs/element.
    LayerNorm = 6,
    /// Layer norm backward — 16 FLOPs/element.
    LayerNormBackward = 7,
    /// GELU (tanh approximation) — 10 FLOPs/element.
    Gelu = 8,
    /// GELU backward — 20 FLOPs/element.
    GeluBackward = 9,
    /// Cross-entropy on top of its internal softmax — 3 FLOPs/element.
    CrossEntropy = 10,
    /// Named element-wise tensor ops (`add`/`sub`/`mul`/`scale`: 1
    /// FLOP/element; `axpy`: 2).
    Elementwise = 11,
    /// One Adam parameter update — 12 FLOPs/element (see `grace-optim`).
    AdamStep = 12,
}

/// Number of distinct [`OpKind`]s.
pub const N_OP_KINDS: usize = 13;

impl OpKind {
    /// All kinds, in discriminant order.
    pub const ALL: [OpKind; N_OP_KINDS] = [
        OpKind::MatMul,
        OpKind::MatMulAt,
        OpKind::MatMulBt,
        OpKind::Transpose,
        OpKind::Softmax,
        OpKind::SoftmaxBackward,
        OpKind::LayerNorm,
        OpKind::LayerNormBackward,
        OpKind::Gelu,
        OpKind::GeluBackward,
        OpKind::CrossEntropy,
        OpKind::Elementwise,
        OpKind::AdamStep,
    ];

    /// Stable kebab-case name used in journal records and snapshots.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::MatMul => "matmul",
            OpKind::MatMulAt => "matmul-at",
            OpKind::MatMulBt => "matmul-bt",
            OpKind::Transpose => "transpose",
            OpKind::Softmax => "softmax",
            OpKind::SoftmaxBackward => "softmax-backward",
            OpKind::LayerNorm => "layer-norm",
            OpKind::LayerNormBackward => "layer-norm-backward",
            OpKind::Gelu => "gelu",
            OpKind::GeluBackward => "gelu-backward",
            OpKind::CrossEntropy => "cross-entropy",
            OpKind::Elementwise => "elementwise",
            OpKind::AdamStep => "adam-step",
        }
    }

    /// The array index of this kind.
    pub fn index(self) -> usize {
        self as usize
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: [AtomicU64; N_OP_KINDS] = [const { AtomicU64::new(0) }; N_OP_KINDS];
static ELEMS: [AtomicU64; N_OP_KINDS] = [const { AtomicU64::new(0) }; N_OP_KINDS];
static FLOPS: [AtomicU64; N_OP_KINDS] = [const { AtomicU64::new(0) }; N_OP_KINDS];
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);
static POOL_REGIONS: AtomicU64 = AtomicU64::new(0);
static POOL_PARALLEL_REGIONS: AtomicU64 = AtomicU64::new(0);

/// Turns op accounting on. Call at a quiescent point (see module docs).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns op accounting off. Hooks revert to a single relaxed load.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether accounting is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter. Call at a quiescent point.
pub fn reset() {
    for i in 0..N_OP_KINDS {
        CALLS[i].store(0, Ordering::Relaxed);
        ELEMS[i].store(0, Ordering::Relaxed);
        FLOPS[i].store(0, Ordering::Relaxed);
    }
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    FREED_BYTES.store(0, Ordering::Relaxed);
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    POOL_REGIONS.store(0, Ordering::Relaxed);
    POOL_PARALLEL_REGIONS.store(0, Ordering::Relaxed);
}

/// Records one kernel invocation. Public so sibling numeric-plane crates
/// (`grace-optim` records [`OpKind::AdamStep`]) can report ops executed
/// outside `tensorlite` itself.
#[inline]
pub fn record_op(kind: OpKind, elems: usize, flops: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let i = kind.index();
    CALLS[i].fetch_add(1, Ordering::Relaxed);
    ELEMS[i].fetch_add(elems as u64, Ordering::Relaxed);
    FLOPS[i].fetch_add(flops, Ordering::Relaxed);
}

/// Records `elems` f32s becoming tensor storage.
#[inline]
pub(crate) fn record_alloc(elems: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let bytes = (elems * 4) as u64;
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Records `elems` f32s of tensor storage being released.
#[inline]
pub(crate) fn record_free(elems: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let bytes = (elems * 4) as u64;
    FREED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Records the pool entering one kernel region (`parallel` = whether it
/// actually spawned workers; the total is thread-count-invariant, the
/// parallel split is not).
#[inline]
pub(crate) fn record_pool_region(parallel: bool) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    POOL_REGIONS.fetch_add(1, Ordering::Relaxed);
    if parallel {
        POOL_PARALLEL_REGIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter. Exact when taken at a quiescent
/// point (no kernel in flight); see the module docs for which fields are
/// deterministic across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Kernel invocations per [`OpKind`] (indexed by [`OpKind::index`]).
    pub calls: [u64; N_OP_KINDS],
    /// Output elements produced per [`OpKind`].
    pub elems: [u64; N_OP_KINDS],
    /// FLOPs executed per [`OpKind`] (conventions in [`OpKind`] docs).
    pub flops: [u64; N_OP_KINDS],
    /// Total bytes that became tensor storage.
    pub allocated_bytes: u64,
    /// Total bytes of tensor storage released.
    pub freed_bytes: u64,
    /// Currently-live tensor-storage bytes (`allocated − freed`; can go
    /// negative if [`enable`] was called with tensors already live).
    pub live_bytes: i64,
    /// High-water mark of `live_bytes`. Thread-timing-dependent — never
    /// put this in a deterministic artifact.
    pub peak_bytes: i64,
    /// Kernel regions entered on the worker pool (deterministic).
    pub pool_regions: u64,
    /// Regions that actually spawned workers (thread-count-dependent).
    pub pool_parallel_regions: u64,
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot {
            calls: [0; N_OP_KINDS],
            elems: [0; N_OP_KINDS],
            flops: [0; N_OP_KINDS],
            allocated_bytes: 0,
            freed_bytes: 0,
            live_bytes: 0,
            peak_bytes: 0,
            pool_regions: 0,
            pool_parallel_regions: 0,
        }
    }
}

impl CounterSnapshot {
    /// Invocation count for one kind.
    pub fn calls(&self, kind: OpKind) -> u64 {
        self.calls[kind.index()]
    }

    /// Output-element count for one kind.
    pub fn elems(&self, kind: OpKind) -> u64 {
        self.elems[kind.index()]
    }

    /// FLOP count for one kind.
    pub fn flops(&self, kind: OpKind) -> u64 {
        self.flops[kind.index()]
    }

    /// Total kernel invocations across all kinds.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Total FLOPs across all kinds.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// The change since `base` (an earlier snapshot): monotone counters
    /// subtract; `live_bytes` is the signed change; `peak_bytes` carries
    /// this (later) snapshot's running maximum unchanged, because a
    /// high-water mark has no meaningful delta.
    pub fn delta_since(&self, base: &CounterSnapshot) -> CounterSnapshot {
        let mut d = *self;
        for i in 0..N_OP_KINDS {
            d.calls[i] = self.calls[i].wrapping_sub(base.calls[i]);
            d.elems[i] = self.elems[i].wrapping_sub(base.elems[i]);
            d.flops[i] = self.flops[i].wrapping_sub(base.flops[i]);
        }
        d.allocated_bytes = self.allocated_bytes.wrapping_sub(base.allocated_bytes);
        d.freed_bytes = self.freed_bytes.wrapping_sub(base.freed_bytes);
        d.live_bytes = self.live_bytes - base.live_bytes;
        d.pool_regions = self.pool_regions.wrapping_sub(base.pool_regions);
        d.pool_parallel_regions = self
            .pool_parallel_regions
            .wrapping_sub(base.pool_parallel_regions);
        d
    }
}

/// Takes a snapshot of all counters. Exact at quiescent points.
pub fn snapshot() -> CounterSnapshot {
    let mut s = CounterSnapshot::default();
    for i in 0..N_OP_KINDS {
        s.calls[i] = CALLS[i].load(Ordering::Relaxed);
        s.elems[i] = ELEMS[i].load(Ordering::Relaxed);
        s.flops[i] = FLOPS[i].load(Ordering::Relaxed);
    }
    s.allocated_bytes = ALLOC_BYTES.load(Ordering::Relaxed);
    s.freed_bytes = FREED_BYTES.load(Ordering::Relaxed);
    s.live_bytes = LIVE_BYTES.load(Ordering::Relaxed);
    s.peak_bytes = PEAK_BYTES.load(Ordering::Relaxed);
    s.pool_regions = POOL_REGIONS.load(Ordering::Relaxed);
    s.pool_parallel_regions = POOL_PARALLEL_REGIONS.load(Ordering::Relaxed);
    s
}

/// Runs `f` with counters reset and enabled, restoring the previous
/// enabled state afterwards and returning `f`'s result alongside the
/// final snapshot. The serialized-access guard for tests and short
/// measurement regions: take it around a quiescent section.
pub fn with_counters<R>(f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
    let was = is_enabled();
    reset();
    enable();
    let r = f();
    let snap = snapshot();
    if !was {
        disable();
    }
    (r, snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use std::sync::{Mutex, OnceLock};

    /// Counters are process-wide; tests that enable them must not overlap.
    pub(crate) fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial_guard();
        disable();
        reset();
        let a = Tensor::zeros(&[8, 8]);
        let _ = a.matmul(&a).unwrap();
        let s = snapshot();
        assert_eq!(s, CounterSnapshot::default());
    }

    #[test]
    fn conservation_and_peak_invariants() {
        let _g = serial_guard();
        let ((), s) = with_counters(|| {
            let a = Tensor::zeros(&[16, 16]);
            let b = a.clone();
            let c = a.matmul(&b).unwrap();
            drop(b);
            let v = c.into_vec();
            assert_eq!(v.len(), 256);
            drop(a);
        });
        assert_eq!(
            s.allocated_bytes as i64 - s.freed_bytes as i64,
            s.live_bytes
        );
        assert_eq!(s.live_bytes, 0, "everything was dropped");
        assert!(s.peak_bytes >= s.live_bytes);
        // a + clone + matmul result all lived at once: 3 × 16×16×4 B.
        assert!(s.peak_bytes >= 3 * 16 * 16 * 4);
        assert_eq!(s.calls(OpKind::MatMul), 1);
        assert_eq!(s.elems(OpKind::MatMul), 256);
        assert_eq!(s.flops(OpKind::MatMul), 2 * 16 * 16 * 16);
    }

    #[test]
    fn op_totals_are_thread_count_invariant() {
        let _g = serial_guard();
        let mut rng = crate::rng::XorShiftRng::new(42);
        // Big enough to clear PAR_WORK_THRESHOLD so the pool really forks.
        let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
        let mut per_threads = Vec::new();
        for threads in [1usize, 2, 7] {
            let ((), s) = with_counters(|| {
                crate::pool::with_threads(threads, || {
                    let c = a.matmul(&b).unwrap();
                    let d = crate::ops::softmax_rows(&c).unwrap();
                    let _ = crate::ops::gelu(&d);
                })
            });
            per_threads.push((threads, s));
        }
        let (_, base) = per_threads[0];
        for (threads, s) in &per_threads[1..] {
            assert_eq!(s.calls, base.calls, "threads={threads}");
            assert_eq!(s.elems, base.elems, "threads={threads}");
            assert_eq!(s.flops, base.flops, "threads={threads}");
            assert_eq!(s.allocated_bytes, base.allocated_bytes, "t={threads}");
            assert_eq!(s.freed_bytes, base.freed_bytes, "t={threads}");
            assert_eq!(s.live_bytes, base.live_bytes, "t={threads}");
            assert_eq!(s.pool_regions, base.pool_regions, "t={threads}");
        }
    }

    #[test]
    fn delta_since_subtracts_monotone_counters() {
        let mut a = CounterSnapshot::default();
        a.calls[0] = 10;
        a.allocated_bytes = 100;
        a.freed_bytes = 40;
        a.live_bytes = 60;
        a.peak_bytes = 80;
        let mut b = a;
        b.calls[0] = 25;
        b.allocated_bytes = 300;
        b.freed_bytes = 240;
        b.live_bytes = 60;
        b.peak_bytes = 120;
        let d = b.delta_since(&a);
        assert_eq!(d.calls[0], 15);
        assert_eq!(d.allocated_bytes, 200);
        assert_eq!(d.freed_bytes, 200);
        assert_eq!(d.live_bytes, 0);
        assert_eq!(d.peak_bytes, 120, "peak carries the later running max");
    }

    #[test]
    fn kind_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_OP_KINDS);
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
