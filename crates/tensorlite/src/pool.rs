//! Scoped-thread worker pool shared by every parallel kernel in the
//! numeric plane.
//!
//! The pool uses the same `std::thread::scope` idiom as `GraceAdam` in
//! `grace-optim`: a parallel region spawns scoped worker threads over
//! *disjoint* partitions of the output and joins them before returning, so
//! no state outlives the call and no unsafe code is needed. Parallelism is
//! only ever applied across disjoint output rows / heads / shards, which
//! keeps per-element accumulation order unchanged — results are
//! bit-identical to the serial kernels at every thread count.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by tests
//!    and by pool workers themselves, which run nested kernels serially),
//! 2. the process-wide count set by [`set_threads`] /
//!    [`ParallelConfig::install`],
//! 3. the `SUPEROFFLOAD_THREADS` environment variable (read once),
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::counters;

/// Sentinel meaning "not configured" in the global thread-count cell.
const UNSET: usize = usize::MAX;

/// Below this many element-operations a kernel runs serially: spawning
/// threads costs tens of microseconds, which dwarfs the work itself on
/// small tensors. The threshold depends only on the operand shapes, so
/// the serial/parallel decision — and therefore the result — is
/// deterministic.
pub const PAR_WORK_THRESHOLD: usize = 32_768;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SUPEROFFLOAD_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn resolve(requested: usize) -> usize {
    if requested == 0 {
        hardware_threads()
    } else {
        requested
    }
}

/// Sets the process-wide worker thread count (`0` = auto-detect).
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker thread count for the calling thread.
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return resolve(n);
    }
    let g = GLOBAL_THREADS.load(Ordering::Relaxed);
    resolve(if g == UNSET { env_threads() } else { g })
}

/// Runs `f` with the calling thread's worker count overridden to `n`
/// (`0` = auto-detect). The override is thread-local and restored on exit,
/// so concurrent tests can pin different counts without racing.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Parallel-execution configuration threaded through `Trainer` and the
/// benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for the numeric plane (`0` = auto-detect).
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

impl ParallelConfig {
    /// Auto-detected parallelism (`available_parallelism`).
    pub fn auto() -> Self {
        ParallelConfig { threads: 0 }
    }

    /// Fully serial execution.
    pub fn serial() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// Explicit thread count (`0` = auto-detect).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// Reads `SUPEROFFLOAD_THREADS` (unset or `0` = auto-detect).
    pub fn from_env() -> Self {
        ParallelConfig {
            threads: env_threads(),
        }
    }

    /// Installs this configuration process-wide (see [`set_threads`]).
    pub fn install(&self) {
        set_threads(self.threads);
    }

    /// The thread count this configuration resolves to on this host.
    pub fn effective_threads(&self) -> usize {
        resolve(self.threads)
    }
}

/// A handle on the scoped worker pool with a resolved thread count.
///
/// `Pool` is a lightweight value: obtaining one costs an atomic load, and
/// parallel regions spawn scoped threads on demand (the `std::thread::scope`
/// idiom), so there is no persistent state to poison or shut down.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// The pool as configured for the calling thread.
    pub fn current() -> Pool {
        Pool { threads: threads() }
    }

    /// A pool with an explicit thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Pool {
        assert!(threads > 0, "pool thread count must be non-zero");
        Pool { threads }
    }

    /// The thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A copy of this pool limited to one thread when `work` (an estimate
    /// of element-operations) is below [`PAR_WORK_THRESHOLD`]. The decision
    /// depends only on `work`, keeping execution deterministic.
    pub fn limit_for(&self, work: usize) -> Pool {
        if work < PAR_WORK_THRESHOLD {
            Pool { threads: 1 }
        } else {
            *self
        }
    }

    /// Runs `f(index, part)` for every element of `parts`, each on its own
    /// scoped worker thread (serially when the pool has one thread or there
    /// is one part). Workers run nested kernels serially — parallelism is
    /// one level deep by construction.
    ///
    /// Callers size `parts` to roughly the thread count; every part is a
    /// disjoint unit of work, so execution order cannot affect results.
    pub fn run_parts<S: Send>(&self, parts: Vec<S>, f: impl Fn(usize, S) + Sync) {
        if self.threads <= 1 || parts.len() <= 1 {
            counters::record_pool_region(false);
            for (i, p) in parts.into_iter().enumerate() {
                f(i, p);
            }
            return;
        }
        counters::record_pool_region(true);
        std::thread::scope(|scope| {
            for (i, p) in parts.into_iter().enumerate() {
                let f = &f;
                scope.spawn(move || with_threads(1, || f(i, p)));
            }
        });
    }

    /// Runs `f(i)` for `i in 0..n`, returning the results in index order.
    /// Indices are partitioned into contiguous blocks, one per worker.
    pub fn run<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let t = self.threads.min(n).max(1);
        if t <= 1 {
            // One region per kernel invocation, matching the delegation to
            // `run_parts` on the parallel path: the total region count is
            // thread-count-invariant.
            counters::record_pool_region(false);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(f(i));
            }
        } else {
            let per = n.div_ceil(t);
            let mut parts: Vec<(usize, &mut [Option<R>])> = Vec::with_capacity(t);
            let mut rest = out.as_mut_slice();
            let mut start = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                parts.push((start, head));
                start += take;
                rest = tail;
            }
            self.run_parts(parts, |_, (first, slots)| {
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(first + j));
                }
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("worker filled its slot"))
            .collect()
    }

    /// Partitions `data` (a row-major `[rows, row_len]` buffer) into
    /// contiguous blocks of whole rows, one per worker, and calls
    /// `f(first_row, block)` for each. Blocks are disjoint, so per-element
    /// results are independent of the partition.
    ///
    /// # Panics
    /// Panics in debug builds if `data.len()` is not a multiple of
    /// `row_len`.
    pub fn par_row_chunks(
        &self,
        data: &mut [f32],
        row_len: usize,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        if data.is_empty() || row_len == 0 {
            return;
        }
        debug_assert_eq!(data.len() % row_len, 0, "buffer is not whole rows");
        let rows = data.len() / row_len;
        let t = self.threads.min(rows).max(1);
        if t <= 1 {
            counters::record_pool_region(false);
            f(0, data);
            return;
        }
        let rows_per = rows.div_ceil(t);
        let mut parts: Vec<(usize, &mut [f32])> = Vec::with_capacity(t);
        let mut rest = data;
        let mut start = 0;
        while !rest.is_empty() {
            let take = rows_per.min(rows - start);
            let (head, tail) = rest.split_at_mut(take * row_len);
            parts.push((start, head));
            start += take;
            rest = tail;
        }
        self.run_parts(parts, |_, (first, block)| f(first, block));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_order() {
        let pool = Pool::new(4);
        let out = pool.run(13, |i| i * i);
        assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        let serial = Pool::new(1).run(13, |i| i * i);
        assert_eq!(out, serial);
    }

    #[test]
    fn run_handles_empty_and_single() {
        let pool = Pool::new(3);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_row_chunks_covers_every_row_once() {
        for threads in [1usize, 2, 3, 7] {
            let pool = Pool::new(threads);
            let mut data = vec![0.0f32; 5 * 3];
            pool.par_row_chunks(&mut data, 3, |first, block| {
                for (j, row) in block.chunks_mut(3).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first + j) as f32 + 1.0;
                    }
                }
            });
            let expect: Vec<f32> = (0..5).flat_map(|r| [r as f32 + 1.0; 3]).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = threads();
        let inner = with_threads(7, threads);
        assert_eq!(inner, 7);
        assert_eq!(threads(), before);
        // Zero means auto-detect.
        assert!(with_threads(0, threads) >= 1);
    }

    #[test]
    fn workers_run_nested_kernels_serially() {
        let pool = Pool::new(4);
        let nested = pool.run(4, |_| threads());
        assert!(nested.iter().all(|&t| t == 1), "nested counts {nested:?}");
    }

    #[test]
    fn limit_for_small_work_is_serial() {
        let pool = Pool::new(8);
        assert_eq!(pool.limit_for(10).threads(), 1);
        assert_eq!(pool.limit_for(PAR_WORK_THRESHOLD).threads(), 8);
    }

    #[test]
    fn parallel_config_resolves() {
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
        assert!(ParallelConfig::auto().effective_threads() >= 1);
        assert_eq!(ParallelConfig::with_threads(5).effective_threads(), 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_thread_pool_rejected() {
        Pool::new(0);
    }
}
