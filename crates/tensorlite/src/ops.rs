//! Neural-network kernels with exact backward passes.
//!
//! Each forward kernel has a matching `*_backward` that computes the exact
//! analytic gradient, verified against finite differences in the test suite.
//! These kernels are composed by `llm-model` into a real GPT-style model.

use crate::counters::{self, OpKind};
use crate::error::TensorError;
use crate::pool::Pool;
use crate::tensor::Tensor;

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
///
/// Rows are independent, so the work is partitioned over disjoint blocks
/// of output rows on the shared worker pool; results are bit-identical to
/// serial execution at any thread count.
///
/// # Errors
/// Returns [`TensorError::BadRank`] for non-matrices.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    ensure_rank2(x, "softmax_rows")?;
    let (m, n) = (x.shape()[0], x.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    let pool = Pool::current().limit_for(m * n * 8);
    pool.par_row_chunks(&mut out, n, |first_row, block| {
        for (r, out_row) in block.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let row = &x.data()[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (o, &v) in out_row.iter_mut().zip(row) {
                let e = (v - max).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in out_row.iter_mut() {
                *o *= inv;
            }
        }
    });
    counters::record_op(OpKind::Softmax, m * n, 5 * (m * n) as u64);
    Tensor::from_vec(out, &[m, n])
}

/// Backward of row-wise softmax: given `y = softmax(x)` and upstream `dy`,
/// returns `dx = y ⊙ (dy − rowsum(dy ⊙ y))`.
///
/// # Errors
/// Returns [`TensorError`] on rank or shape mismatch.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    ensure_rank2(y, "softmax_rows_backward")?;
    ensure_same_shape(y, dy, "softmax_rows_backward")?;
    let (m, n) = (y.shape()[0], y.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    let pool = Pool::current().limit_for(m * n * 4);
    pool.par_row_chunks(&mut out, n, |first_row, block| {
        for (r, out_row) in block.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let yr = &y.data()[i * n..(i + 1) * n];
            let dyr = &dy.data()[i * n..(i + 1) * n];
            let dot: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = yr[j] * (dyr[j] - dot);
            }
        }
    });
    counters::record_op(OpKind::SoftmaxBackward, m * n, 4 * (m * n) as u64);
    Tensor::from_vec(out, &[m, n])
}

/// Per-row layer normalization with learned scale `gamma` and shift `beta`.
///
/// Returns `(output, mean, inv_std)` where the statistics are cached for the
/// backward pass.
///
/// # Errors
/// Returns [`TensorError`] on rank mismatch or parameter-length mismatch.
pub fn layer_norm(
    x: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<(Tensor, Vec<f32>, Vec<f32>), TensorError> {
    ensure_rank2(x, "layer_norm")?;
    let (m, n) = (x.shape()[0], x.shape()[1]);
    ensure_param_len(gamma, n, "layer_norm gamma")?;
    ensure_param_len(beta, n, "layer_norm beta")?;
    let mut out = vec![0.0f32; m * n];
    let mut means = vec![0.0f32; m];
    let mut inv_stds = vec![0.0f32; m];
    // Partition the rows (and the per-row statistic vectors alongside them)
    // into disjoint blocks, one per worker: bit-identical at any thread
    // count because rows are independent.
    let pool = Pool::current().limit_for(m * n * 6);
    let parts = split_row_parts(&mut out, &mut means, &mut inv_stds, n, pool.threads());
    pool.run_parts(parts, |_, (first_row, block, mean_s, inv_s)| {
        for (r, out_row) in block.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let row = &x.data()[i * n..(i + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            mean_s[r] = mean;
            inv_s[r] = inv_std;
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = (row[j] - mean) * inv_std * gamma[j] + beta[j];
            }
        }
    });
    counters::record_op(OpKind::LayerNorm, m * n, 8 * (m * n) as u64);
    Ok((Tensor::from_vec(out, &[m, n])?, means, inv_stds))
}

/// Splits a `[rows, n]` buffer plus two per-row statistic vectors into
/// matching contiguous row blocks, one per worker thread.
type RowPart<'a> = (usize, &'a mut [f32], &'a mut [f32], &'a mut [f32]);

fn split_row_parts<'a>(
    out: &'a mut [f32],
    means: &'a mut [f32],
    inv_stds: &'a mut [f32],
    n: usize,
    threads: usize,
) -> Vec<RowPart<'a>> {
    let rows = means.len();
    let t = threads.min(rows).max(1);
    let rows_per = rows.div_ceil(t);
    let mut parts: Vec<RowPart<'a>> = Vec::with_capacity(t);
    let (mut o_rest, mut m_rest, mut s_rest) = (out, means, inv_stds);
    let mut start = 0;
    while !m_rest.is_empty() {
        let take = rows_per.min(rows - start);
        let (o_head, o_tail) = o_rest.split_at_mut(take * n);
        let (m_head, m_tail) = m_rest.split_at_mut(take);
        let (s_head, s_tail) = s_rest.split_at_mut(take);
        parts.push((start, o_head, m_head, s_head));
        o_rest = o_tail;
        m_rest = m_tail;
        s_rest = s_tail;
        start += take;
    }
    parts
}

/// Backward of [`layer_norm`]: returns `(dx, dgamma, dbeta)`.
///
/// # Errors
/// Returns [`TensorError`] on rank or shape mismatch.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_backward(
    x: &Tensor,
    dy: &Tensor,
    gamma: &[f32],
    means: &[f32],
    inv_stds: &[f32],
) -> Result<(Tensor, Vec<f32>, Vec<f32>), TensorError> {
    ensure_rank2(x, "layer_norm_backward")?;
    ensure_same_shape(x, dy, "layer_norm_backward")?;
    let (m, n) = (x.shape()[0], x.shape()[1]);
    ensure_param_len(gamma, n, "layer_norm_backward gamma")?;
    let mut dx = vec![0.0f32; m * n];
    let mut dgamma = vec![0.0f32; n];
    let mut dbeta = vec![0.0f32; n];
    // dx rows are independent — parallel over disjoint row blocks.
    let pool = Pool::current().limit_for(m * n * 10);
    pool.par_row_chunks(&mut dx, n, |first_row, block| {
        for (r, dx_row) in block.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let xr = &x.data()[i * n..(i + 1) * n];
            let dyr = &dy.data()[i * n..(i + 1) * n];
            let (mean, inv_std) = (means[i], inv_stds[i]);
            // xhat = (x - mean) * inv_std ; dy_hat = dy * gamma
            let mut sum_dyhat = 0.0f32;
            let mut sum_dyhat_xhat = 0.0f32;
            for j in 0..n {
                let xhat = (xr[j] - mean) * inv_std;
                let dyhat = dyr[j] * gamma[j];
                sum_dyhat += dyhat;
                sum_dyhat_xhat += dyhat * xhat;
            }
            let inv_n = 1.0 / n as f32;
            for (j, o) in dx_row.iter_mut().enumerate() {
                let xhat = (xr[j] - mean) * inv_std;
                let dyhat = dyr[j] * gamma[j];
                *o = inv_std * (dyhat - inv_n * sum_dyhat - xhat * inv_n * sum_dyhat_xhat);
            }
        }
    });
    // dgamma/dbeta reduce *across* rows: keep that accumulation serial and
    // row-ascending so the result does not depend on how many workers the
    // dx pass used (a per-thread partial reduction would reassociate the
    // float sums).
    #[allow(clippy::needless_range_loop)]
    for i in 0..m {
        let xr = &x.data()[i * n..(i + 1) * n];
        let dyr = &dy.data()[i * n..(i + 1) * n];
        let (mean, inv_std) = (means[i], inv_stds[i]);
        for j in 0..n {
            let xhat = (xr[j] - mean) * inv_std;
            dgamma[j] += dyr[j] * xhat;
            dbeta[j] += dyr[j];
        }
    }
    counters::record_op(OpKind::LayerNormBackward, m * n, 16 * (m * n) as u64);
    Ok((Tensor::from_vec(dx, &[m, n])?, dgamma, dbeta))
}

/// GELU activation (tanh approximation, as used by GPT-2/3).
pub fn gelu(x: &Tensor) -> Tensor {
    counters::record_op(OpKind::Gelu, x.len(), 10 * x.len() as u64);
    x.map(gelu_scalar)
}

/// Backward of [`gelu`]: `dx = dy ⊙ gelu'(x)`.
///
/// # Errors
/// Returns [`TensorError::IncompatibleShapes`] on shape mismatch.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    ensure_same_shape(x, dy, "gelu_backward")?;
    counters::record_op(OpKind::GeluBackward, x.len(), 20 * x.len() as u64);
    Ok(x.zip_map(dy, |xv, dyv| dyv * gelu_grad_scalar(xv)))
}

/// Scalar GELU (tanh approximation).
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Scalar GELU derivative (tanh approximation).
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Mean cross-entropy loss of row-wise logits against integer targets,
/// returning `(loss, dlogits)` with the gradient already averaged over rows.
///
/// # Errors
/// Returns [`TensorError`] on rank mismatch or an out-of-range target.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor), TensorError> {
    ensure_rank2(logits, "cross_entropy")?;
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    if targets.len() != m {
        return Err(TensorError::IncompatibleShapes {
            left: vec![m, n],
            right: vec![targets.len()],
            op: "cross_entropy",
        });
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.data().to_vec();
    let inv_m = 1.0 / m as f32;
    for (i, &t) in targets.iter().enumerate() {
        if t >= n {
            return Err(TensorError::IndexOutOfBounds { index: t, len: n });
        }
        let p = probs.data()[i * n + t].max(1e-30);
        loss -= (p as f64).ln();
        grad[i * n + t] -= 1.0;
    }
    for g in &mut grad {
        *g *= inv_m;
    }
    // The internal softmax recorded itself; this is the loss/grad epilogue.
    counters::record_op(OpKind::CrossEntropy, m * n, 3 * (m * n) as u64);
    Ok(((loss / m as f64) as f32, Tensor::from_vec(grad, &[m, n])?))
}

/// `x @ w + b` for rank-2 `x` (rows are tokens) — the linear layer forward.
///
/// # Errors
/// Returns [`TensorError`] on rank/shape mismatch.
pub fn linear(x: &Tensor, w: &Tensor, b: &[f32]) -> Result<Tensor, TensorError> {
    let mut y = x.matmul(w)?;
    let n = y.shape()[1];
    ensure_param_len(b, n, "linear bias")?;
    for row in y.data_mut().chunks_mut(n) {
        for (v, &bias) in row.iter_mut().zip(b) {
            *v += bias;
        }
    }
    Ok(y)
}

/// Backward of [`linear`]: returns `(dx, dw, db)`.
///
/// # Errors
/// Returns [`TensorError`] on rank/shape mismatch.
pub fn linear_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
) -> Result<(Tensor, Tensor, Vec<f32>), TensorError> {
    let dx = dy.matmul_bt(w)?;
    let dw = x.matmul_at(dy)?;
    let n = dy.shape()[1];
    let mut db = vec![0.0f32; n];
    for row in dy.data().chunks(n) {
        for (d, &v) in db.iter_mut().zip(row) {
            *d += v;
        }
    }
    Ok((dx, dw, db))
}

fn ensure_rank2(x: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::BadRank {
            expected: 2,
            actual: x.rank(),
            op,
        });
    }
    Ok(())
}

fn ensure_same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::IncompatibleShapes {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op,
        });
    }
    Ok(())
}

fn ensure_param_len(p: &[f32], n: usize, what: &'static str) -> Result<(), TensorError> {
    if p.len() != n {
        return Err(TensorError::IncompatibleShapes {
            left: vec![p.len()],
            right: vec![n],
            op: what,
        });
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    const EPS: f32 = 1e-3;
    const TOL: f32 = 2e-2;

    /// Central finite difference of a scalar function of one tensor entry.
    fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, idx: usize) -> f32 {
        let mut xp = x.clone();
        xp.data_mut()[idx] += EPS;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= EPS;
        (f(&xp) - f(&xm)) / (2.0 * EPS)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = XorShiftRng::new(1);
        let x = Tensor::randn(&[4, 7], 2.0, &mut rng);
        let y = softmax_rows(&x).unwrap();
        for i in 0..4 {
            let s: f32 = y.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(i).unwrap().iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y1 = softmax_rows(&x).unwrap();
        let y2 = softmax_rows(&x.map(|v| v + 100.0)).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let x = Tensor::from_vec(vec![1e4, 0.0], &[1, 2]).unwrap();
        let y = softmax_rows(&x).unwrap();
        assert!(y.all_finite());
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_backward_matches_finite_diff() {
        let mut rng = XorShiftRng::new(3);
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let dy = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let y = softmax_rows(&x).unwrap();
        let dx = softmax_rows_backward(&y, &dy).unwrap();
        // Scalar objective: sum(softmax(x) * dy)
        let f = |t: &Tensor| -> f32 {
            let y = softmax_rows(t).unwrap();
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        for idx in 0..x.len() {
            let num = finite_diff(f, &x, idx);
            assert!(
                (num - dx.data()[idx]).abs() < TOL,
                "idx {idx}: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let mut rng = XorShiftRng::new(4);
        let x = Tensor::randn(&[3, 64], 5.0, &mut rng);
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let (y, _, _) = layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        for i in 0..3 {
            let row = y.row(i).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layer_norm_backward_matches_finite_diff() {
        let mut rng = XorShiftRng::new(5);
        let x = Tensor::randn(&[2, 6], 1.0, &mut rng);
        let gamma: Vec<f32> = (0..6).map(|i| 0.5 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..6).map(|i| 0.1 * i as f32).collect();
        let dy = Tensor::randn(&[2, 6], 1.0, &mut rng);
        let (_, means, inv_stds) = layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        let (dx, dgamma, dbeta) = layer_norm_backward(&x, &dy, &gamma, &means, &inv_stds).unwrap();

        let f = |t: &Tensor| -> f32 {
            let (y, _, _) = layer_norm(t, &gamma, &beta, 1e-5).unwrap();
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        for idx in 0..x.len() {
            let num = finite_diff(f, &x, idx);
            assert!(
                (num - dx.data()[idx]).abs() < TOL,
                "dx[{idx}]: {num} vs {}",
                dx.data()[idx]
            );
        }
        // dgamma via finite difference on gamma.
        for j in 0..6 {
            let mut gp = gamma.clone();
            gp[j] += EPS;
            let mut gm = gamma.clone();
            gm[j] -= EPS;
            let fp: f32 = {
                let (y, _, _) = layer_norm(&x, &gp, &beta, 1e-5).unwrap();
                y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
            };
            let fm: f32 = {
                let (y, _, _) = layer_norm(&x, &gm, &beta, 1e-5).unwrap();
                y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
            };
            let num = (fp - fm) / (2.0 * EPS);
            assert!((num - dgamma[j]).abs() < TOL, "dgamma[{j}]");
        }
        // dbeta is just the column sum of dy.
        for j in 0..6 {
            let col: f32 = (0..2).map(|i| dy.data()[i * 6 + j]).sum();
            assert!((col - dbeta[j]).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ~ identity; large negative ~ 0.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_backward_matches_finite_diff() {
        let mut rng = XorShiftRng::new(6);
        let x = Tensor::randn(&[1, 10], 1.5, &mut rng);
        let dy = Tensor::ones(&[1, 10]);
        let dx = gelu_backward(&x, &dy).unwrap();
        for idx in 0..x.len() {
            let num = finite_diff(|t| gelu(t).sum() as f32, &x, idx);
            assert!((num - dx.data()[idx]).abs() < TOL, "idx {idx}");
        }
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_n() {
        let logits = Tensor::zeros(&[2, 8]);
        let (loss, _) = cross_entropy(&logits, &[0, 5]).unwrap();
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_diff() {
        let mut rng = XorShiftRng::new(7);
        let logits = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let targets = [1usize, 4, 0];
        let (_, grad) = cross_entropy(&logits, &targets).unwrap();
        for idx in 0..logits.len() {
            let num = finite_diff(|t| cross_entropy(t, &targets).unwrap().0, &logits, idx);
            assert!(
                (num - grad.data()[idx]).abs() < TOL,
                "idx {idx}: {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_targets() {
        let logits = Tensor::zeros(&[2, 4]);
        assert!(cross_entropy(&logits, &[0, 9]).is_err());
        assert!(cross_entropy(&logits, &[0]).is_err());
    }

    #[test]
    fn linear_and_backward_match_finite_diff() {
        let mut rng = XorShiftRng::new(8);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let b = vec![0.1f32, -0.2];
        let dy = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let (dx, dw, db) = linear_backward(&x, &w, &dy).unwrap();

        let f_x = |t: &Tensor| -> f32 {
            let y = linear(t, &w, &b).unwrap();
            y.data().iter().zip(dy.data()).map(|(&a, &v)| a * v).sum()
        };
        for idx in 0..x.len() {
            let num = finite_diff(f_x, &x, idx);
            assert!((num - dx.data()[idx]).abs() < TOL, "dx[{idx}]");
        }
        let f_w = |t: &Tensor| -> f32 {
            let y = linear(&x, t, &b).unwrap();
            y.data().iter().zip(dy.data()).map(|(&a, &v)| a * v).sum()
        };
        for idx in 0..w.len() {
            let num = finite_diff(f_w, &w, idx);
            assert!((num - dw.data()[idx]).abs() < TOL, "dw[{idx}]");
        }
        for j in 0..2 {
            let col: f32 = (0..3).map(|i| dy.data()[i * 2 + j]).sum();
            assert!((col - db[j]).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_bias_length_checked() {
        let x = Tensor::zeros(&[2, 3]);
        let w = Tensor::zeros(&[3, 4]);
        assert!(linear(&x, &w, &[0.0; 3]).is_err());
        assert!(linear(&x, &w, &[0.0; 4]).is_ok());
    }
}
