//! Minimal numeric tensor library — the *numeric plane* substrate of the
//! SuperOffload reproduction.
//!
//! Provides exactly what a miniature mixed-precision LLM training stack
//! needs and nothing more:
//!
//! - [`F16`]/[`Bf16`]: software half-precision with IEEE round-to-nearest-even
//!   conversion, so mixed-precision casting costs and overflow behaviour
//!   (NaN/Inf detection, loss scaling) are real rather than mocked.
//! - [`Tensor`]: a dense row-major f32 tensor with the forward/backward
//!   kernels a GPT-style model requires (matmul, softmax, layernorm, GELU).
//! - [`cast`]: bulk f32↔f16 conversion with non-finite detection, mirroring
//!   the cast operators that §4.5 of the paper places on the GPU or CPU.
//! - [`Pool`]/[`ParallelConfig`]: a scoped-thread worker pool that
//!   parallelizes the matrix and row kernels over disjoint output rows, so
//!   results stay bit-identical to serial execution at any thread count
//!   (configure via `SUPEROFFLOAD_THREADS` or [`pool::set_threads`]).
//!
//! # Example
//!
//! ```
//! use tensorlite::{Tensor, F16};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//!
//! let h = F16::from_f32(1.0 / 3.0);
//! assert!((h.to_f32() - 1.0 / 3.0).abs() < 1e-3);
//! # Ok::<(), tensorlite::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cast;
pub mod counters;
pub mod error;
pub mod f16;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod tensor;

pub use cast::{f16_to_f32_slice, f32_to_f16_slice, has_nonfinite};
pub use counters::{CounterSnapshot, OpKind};
pub use error::TensorError;
pub use f16::{Bf16, F16};
pub use pool::{ParallelConfig, Pool};
pub use rng::XorShiftRng;
pub use tensor::Tensor;
