//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The data length does not match the product of the shape dimensions.
    ShapeMismatch {
        /// Expected element count (product of dims).
        expected: usize,
        /// Actual data length.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    IncompatibleShapes {
        /// Left operand shape.
        left: Vec<usize>,
        /// Right operand shape.
        right: Vec<usize>,
        /// Name of the operation.
        op: &'static str,
    },
    /// The operation requires a different rank (e.g. matmul needs rank 2).
    BadRank {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation.
        op: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension size.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements but data has {actual}")
            }
            TensorError::IncompatibleShapes { left, right, op } => {
                write!(f, "incompatible shapes {left:?} and {right:?} for {op}")
            }
            TensorError::BadRank {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of size {len}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::ShapeMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4'));
        let e = TensorError::BadRank {
            expected: 2,
            actual: 1,
            op: "matmul",
        };
        assert!(e.to_string().contains("matmul"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TensorError>();
    }
}
