//! Deterministic random number generation for initialization and data.
//!
//! A small xorshift generator keeps the numeric plane reproducible without
//! threading `rand` generics through every API. `rand` is still used where a
//! distribution-rich generator is convenient (dataset synthesis).

/// A deterministic xorshift64* generator.
///
/// ```
/// use tensorlite::XorShiftRng;
/// let mut a = XorShiftRng::new(7);
/// let mut b = XorShiftRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed (zero is mapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits -> uniform in [0, 1).
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.next_f32().max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_scaled(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
            let y = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&y));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = XorShiftRng::new(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn next_usize_bounds() {
        let mut r = XorShiftRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_usize(7) < 7);
        }
    }
}
