//! Property-based tests of tensor kernels and half-precision conversion.

use proptest::prelude::*;
use tensorlite::{f16_to_f32_slice, f32_to_f16_slice, ops, Tensor, F16};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

proptest! {
    /// f32 -> f16 -> f32 error is bounded by half-precision epsilon.
    #[test]
    fn f16_roundtrip_error_bounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x);
        let back = h.to_f32();
        // Relative error bound for normals; absolute for near-zero.
        let bound = (x.abs() * 1e-3).max(6e-8);
        prop_assert!((back - x).abs() <= bound, "x={x}, back={back}");
    }

    /// f16 conversion is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn f16_conversion_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Slice casts agree with scalar casts.
    #[test]
    fn slice_cast_matches_scalar(v in prop::collection::vec(-1e4f32..1e4, 0..64)) {
        let halves = f32_to_f16_slice(&v);
        for (x, h) in v.iter().zip(&halves) {
            prop_assert_eq!(h.to_bits(), F16::from_f32(*x).to_bits());
        }
        let back = f16_to_f32_slice(&halves);
        for (h, b) in halves.iter().zip(&back) {
            prop_assert_eq!(h.to_f32().to_bits(), b.to_bits());
        }
    }

    /// (A B) C == A (B C) within floating tolerance.
    #[test]
    fn matmul_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-2, "{l} vs {r}");
        }
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Matmul distributes over addition.
    #[test]
    fn matmul_distributive(a in arb_matrix(2, 3), b in arb_matrix(3, 2), c in arb_matrix(3, 2)) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Softmax rows always sum to 1 and lie in [0, 1].
    #[test]
    fn softmax_is_distribution(x in arb_matrix(3, 6)) {
        let y = ops::softmax_rows(&x).unwrap();
        for i in 0..3 {
            let row = y.row(i).unwrap();
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Cross-entropy loss is non-negative and its gradient sums to ~0 per row
    /// (softmax minus one-hot has zero mass).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        x in arb_matrix(4, 5),
        targets in prop::collection::vec(0usize..5, 4),
    ) {
        let (loss, grad) = ops::cross_entropy(&x, &targets).unwrap();
        prop_assert!(loss >= 0.0);
        for i in 0..4 {
            let s: f32 = grad.row(i).unwrap().iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    /// LayerNorm output is exactly invariant to a per-row shift of the input.
    #[test]
    fn layer_norm_shift_invariant(x in arb_matrix(2, 8), shift in -5.0f32..5.0) {
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let (y1, _, _) = ops::layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        let (y2, _, _) = ops::layer_norm(&x.map(|v| v + shift), &gamma, &beta, 1e-5).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// GELU is bounded below by a small negative constant and above by x.
    #[test]
    fn gelu_bounds(x in -50.0f32..50.0) {
        let g = ops::gelu_scalar(x);
        prop_assert!(g >= -0.2);
        prop_assert!(g <= x.max(0.0) + 1e-5);
    }

    /// axpy matches scale-then-add.
    #[test]
    fn axpy_matches_scale_add(a in arb_matrix(2, 3), b in arb_matrix(2, 3), alpha in -3.0f32..3.0) {
        let mut c = a.clone();
        c.axpy(alpha, &b).unwrap();
        let expected = a.add(&b.scale(alpha)).unwrap();
        for (l, r) in c.data().iter().zip(expected.data()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }
}
