//! Property tests for the deterministic parallel numeric plane.
//!
//! Every pooled kernel partitions work over disjoint output rows/heads, so
//! the per-element accumulation order never changes with the worker count.
//! These tests pin that contract: for arbitrary (odd, tile-straddling)
//! shapes and thread counts {1, 2, 7, max}, every kernel must produce
//! *bit-identical* output, and the fused transpose-free GEMM variants must
//! be bit-identical to their composed transpose-then-matmul equivalents.

use proptest::prelude::*;
use tensorlite::pool::with_threads;
use tensorlite::{ops, Tensor};

/// Thread counts exercised for every kernel: serial, small, odd, and
/// `0` meaning "all hardware threads".
const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 0];

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

/// Matrix dimensions chosen to straddle the GEMM panel (64), k-tile (256)
/// and transpose tile (32) boundaries while staying fast enough for a
/// property-test loop.
fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..70, 1usize..70)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn vec_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` is bit-identical at every thread count.
    #[test]
    fn matmul_bit_identical_across_threads((m, k, n) in arb_dims(), seed in 0u64..1000) {
        let mut rng = tensorlite::XorShiftRng::new(seed + 1);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let reference = with_threads(1, || a.matmul(&b).unwrap());
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || a.matmul(&b).unwrap());
            prop_assert_eq!(bits(&reference), bits(&out), "threads={}", threads);
        }
    }

    /// `matmul_at` == `transpose().matmul()` bitwise, at every thread count.
    #[test]
    fn matmul_at_matches_composed((m, k, n) in arb_dims(), seed in 0u64..1000) {
        let mut rng = tensorlite::XorShiftRng::new(seed + 2);
        // self is [k, m] for matmul_at.
        let a = Tensor::randn(&[k, m], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let composed = with_threads(1, || a.transpose().unwrap().matmul(&b).unwrap());
        for threads in THREAD_COUNTS {
            let fused = with_threads(threads, || a.matmul_at(&b).unwrap());
            prop_assert_eq!(bits(&composed), bits(&fused), "threads={}", threads);
        }
    }

    /// `matmul_bt` == `matmul(transpose())` bitwise, at every thread count.
    #[test]
    fn matmul_bt_matches_composed((m, k, n) in arb_dims(), seed in 0u64..1000) {
        let mut rng = tensorlite::XorShiftRng::new(seed + 3);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        // other is [n, k] for matmul_bt.
        let b = Tensor::randn(&[n, k], 1.0, &mut rng);
        let composed = with_threads(1, || a.matmul(&b.transpose().unwrap()).unwrap());
        for threads in THREAD_COUNTS {
            let fused = with_threads(threads, || a.matmul_bt(&b).unwrap());
            prop_assert_eq!(bits(&composed), bits(&fused), "threads={}", threads);
        }
    }

    /// Blocked transpose round-trips exactly and matches the definition.
    #[test]
    fn transpose_blocked_is_exact((m, _k, n) in arb_dims(), seed in 0u64..1000) {
        let mut rng = tensorlite::XorShiftRng::new(seed + 4);
        let a = Tensor::randn(&[m, n], 1.0, &mut rng);
        let t = a.transpose().unwrap();
        prop_assert_eq!(t.shape(), &[n, m]);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(
                    a.data()[i * n + j].to_bits(),
                    t.data()[j * m + i].to_bits()
                );
            }
        }
        let back = t.transpose().unwrap();
        prop_assert_eq!(bits(&a), bits(&back));
    }

    /// Softmax forward + backward are bit-identical at every thread count.
    #[test]
    fn softmax_bit_identical_across_threads(x in arb_matrix(17, 33), dy in arb_matrix(17, 33)) {
        let (y_ref, dx_ref) = with_threads(1, || {
            let y = ops::softmax_rows(&x).unwrap();
            let dx = ops::softmax_rows_backward(&y, &dy).unwrap();
            (y, dx)
        });
        for threads in THREAD_COUNTS {
            let (y, dx) = with_threads(threads, || {
                let y = ops::softmax_rows(&x).unwrap();
                let dx = ops::softmax_rows_backward(&y, &dy).unwrap();
                (y, dx)
            });
            prop_assert_eq!(bits(&y_ref), bits(&y), "threads={}", threads);
            prop_assert_eq!(bits(&dx_ref), bits(&dx), "threads={}", threads);
        }
    }

    /// LayerNorm forward + backward (including the serial cross-row
    /// dgamma/dbeta reduction) are bit-identical at every thread count.
    #[test]
    fn layer_norm_bit_identical_across_threads(
        x in arb_matrix(13, 41),
        dy in arb_matrix(13, 41),
        gamma in prop::collection::vec(-2.0f32..2.0, 41),
        beta in prop::collection::vec(-2.0f32..2.0, 41),
    ) {
        let run = || {
            let (y, means, inv_stds) = ops::layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
            let (dx, dgamma, dbeta) =
                ops::layer_norm_backward(&x, &dy, &gamma, &means, &inv_stds).unwrap();
            (y, dx, dgamma, dbeta)
        };
        let (y_ref, dx_ref, dgamma_ref, dbeta_ref) = with_threads(1, run);
        for threads in THREAD_COUNTS {
            let (y, dx, dgamma, dbeta) = with_threads(threads, run);
            prop_assert_eq!(bits(&y_ref), bits(&y), "threads={}", threads);
            prop_assert_eq!(bits(&dx_ref), bits(&dx), "threads={}", threads);
            prop_assert_eq!(vec_bits(&dgamma_ref), vec_bits(&dgamma), "threads={}", threads);
            prop_assert_eq!(vec_bits(&dbeta_ref), vec_bits(&dbeta), "threads={}", threads);
        }
    }

    /// The composed linear backward (fused GEMM variants) is bit-identical
    /// at every thread count.
    #[test]
    fn linear_backward_bit_identical_across_threads(
        x in arb_matrix(11, 19),
        w in arb_matrix(19, 23),
        dy in arb_matrix(11, 23),
    ) {
        let (dx_ref, dw_ref, db_ref) =
            with_threads(1, || ops::linear_backward(&x, &w, &dy).unwrap());
        for threads in THREAD_COUNTS {
            let (dx, dw, db) = with_threads(threads, || ops::linear_backward(&x, &w, &dy).unwrap());
            prop_assert_eq!(bits(&dx_ref), bits(&dx), "threads={}", threads);
            prop_assert_eq!(bits(&dw_ref), bits(&dw), "threads={}", threads);
            prop_assert_eq!(vec_bits(&db_ref), vec_bits(&db), "threads={}", threads);
        }
    }
}
