//! Property-based tests of model accounting and the miniature GPT.

use llm_model::config::ModelConfig;
use llm_model::flops::{forward_flops, TrainingFlops};
use llm_model::memory::{ActivationMemory, ModelStateMemory};
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use proptest::prelude::*;

proptest! {
    /// The 16Ψ identity holds for any parameter count.
    #[test]
    fn model_state_total_is_16_psi(params in 1u64..1_000_000_000_000) {
        let m = ModelStateMemory::for_params(params);
        prop_assert_eq!(m.total(), 16 * params);
        prop_assert_eq!(m.optimizer_states(), 12 * params);
        prop_assert_eq!(
            m.total(),
            m.gpu_resident_weight_stationary() + m.cpu_resident_weight_stationary()
        );
    }

    /// Activation memory with checkpointing never exceeds the full footprint.
    #[test]
    fn checkpointing_never_increases_memory(
        layers in 1u32..100, hidden_exp in 7u32..13, batch in 1u32..32, seq_exp in 6u64..16,
    ) {
        let cfg = ModelConfig::new("t", layers, 1 << hidden_exp);
        let seq = 1u64 << seq_exp;
        let full = ActivationMemory::full(&cfg, batch, seq);
        let ckpt = ActivationMemory::checkpointed(&cfg, batch, seq);
        prop_assert!(ckpt.bytes <= full.bytes);
    }

    /// FLOPs are monotone in every workload dimension.
    #[test]
    fn flops_monotone(batch in 1u32..16, seq_exp in 6u64..14) {
        let cfg = ModelConfig::appendix_a_5b();
        let seq = 1u64 << seq_exp;
        let f = TrainingFlops::for_iteration(&cfg, batch, seq, false);
        let f_bigger_batch = TrainingFlops::for_iteration(&cfg, batch + 1, seq, false);
        let f_longer_seq = TrainingFlops::for_iteration(&cfg, batch, seq * 2, false);
        prop_assert!(f_bigger_batch.effective() > f.effective());
        prop_assert!(f_longer_seq.effective() > f.effective());
        prop_assert!(f.executed() >= f.effective());
    }

    /// Forward FLOPs are at least the GEMM lower bound 2·Ψ·tokens.
    #[test]
    fn forward_flops_lower_bound(tokens_exp in 8u64..20) {
        let cfg = ModelConfig::appendix_a_5b();
        let tokens = 1u64 << tokens_exp;
        let f = forward_flops(&cfg, tokens, 1024);
        prop_assert!(f >= 2.0 * cfg.param_count() as f64 * tokens as f64);
    }

    /// Any two models with the same seed are bit-identical; a training step
    /// keeps parameters finite for in-distribution data.
    #[test]
    fn model_determinism_and_finiteness(seed in 0u64..1000) {
        let cfg = GptConfig { vocab: 31, hidden: 16, layers: 1, heads: 2, max_seq: 16 };
        let mut a = GptModel::new(cfg.clone(), seed);
        let b = GptModel::new(cfg, seed);
        prop_assert_eq!(a.params(), b.params());

        let mut pile = SyntheticPile::new(31, seed);
        let (x, y) = pile.next_sequence(8);
        let loss = a.forward_backward(&x, &y).unwrap();
        prop_assert!(loss.is_finite());
        prop_assert!(a.grads().iter().all(|g| g.is_finite()));
    }

    /// Causality: perturbing token k never changes logits at positions < k.
    #[test]
    fn causality_holds_for_any_position(k in 1usize..8, replacement in 0usize..31) {
        let cfg = GptConfig { vocab: 31, hidden: 16, layers: 2, heads: 2, max_seq: 16 };
        let m = GptModel::new(cfg, 99);
        let base: Vec<usize> = (0..8).map(|i| (i * 5 + 2) % 31).collect();
        let mut changed = base.clone();
        changed[k] = replacement;
        let la = m.logits(&base).unwrap();
        let lb = m.logits(&changed).unwrap();
        for pos in 0..k {
            for v in 0..31 {
                prop_assert_eq!(la.get2(pos, v).unwrap(), lb.get2(pos, v).unwrap());
            }
        }
    }

    /// The synthetic stream is stationary: any seed keeps tokens in range and
    /// the shift property between inputs and targets.
    #[test]
    fn pile_shift_property(seed in 0u64..500, seq in 2usize..64) {
        let mut s = SyntheticPile::new(64, seed);
        let (x, y) = s.next_sequence(seq);
        prop_assert_eq!(&x[1..], &y[..seq - 1]);
        prop_assert!(x.iter().all(|&t| t < 64));
    }
}
