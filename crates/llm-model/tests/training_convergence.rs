//! Longer-horizon convergence tests of the real training stack: the
//! miniature GPT must actually learn the synthetic language, not merely
//! reduce loss a little.

use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;

fn train_sgd(model: &mut GptModel, pile: &mut SyntheticPile, steps: u32, lr: f32) -> (f32, f32) {
    let mut first = f32::NAN;
    let mut last = f32::NAN;
    for step in 0..steps {
        model.zero_grads();
        let (x, y) = pile.next_sequence(12);
        let loss = model.forward_backward(&x, &y).unwrap();
        if step == 0 {
            first = loss;
        }
        last = loss;
        let grads = model.grads().to_vec();
        for (p, g) in model.params_mut().iter_mut().zip(&grads) {
            *p -= lr * g;
        }
    }
    (first, last)
}

/// On a fully deterministic stream the loss should approach zero (the
/// entropy floor), not just decrease.
#[test]
fn deterministic_stream_is_learned_to_near_zero_loss() {
    let mut model = GptModel::new(
        GptConfig {
            vocab: 32,
            hidden: 32,
            layers: 2,
            heads: 2,
            max_seq: 16,
        },
        17,
    );
    let mut pile = SyntheticPile::new(32, 17).with_signal(1.0);
    let (first, last) = train_sgd(&mut model, &mut pile, 300, 0.1);
    assert!(
        first > 3.0,
        "untrained loss should be near ln(32)=3.47: {first}"
    );
    assert!(last < 0.15, "deterministic rule not learned: loss {last}");
}

/// On the noisy stream the loss should approach (but not beat) the analytic
/// entropy floor — a calibration check tying the dataset's math to the
/// model's behaviour.
#[test]
fn noisy_stream_converges_toward_entropy_floor() {
    let mut model = GptModel::new(
        GptConfig {
            vocab: 32,
            hidden: 32,
            layers: 2,
            heads: 2,
            max_seq: 16,
        },
        23,
    );
    let mut pile = SyntheticPile::new(32, 23); // default 0.85 signal
    let floor = pile.entropy_floor();
    let (_, _) = train_sgd(&mut model, &mut pile, 600, 0.05);
    // Evaluate on fresh data.
    let mut eval_pile = SyntheticPile::new(32, 999);
    let batch = eval_pile.next_batch(32, 12);
    let eval = model.evaluate(&batch).unwrap();
    assert!(
        eval > floor * 0.8,
        "loss {eval} beat the entropy floor {floor} — leakage or math bug"
    );
    assert!(
        eval < floor + 1.0,
        "loss {eval} still far above the floor {floor}"
    );
}

/// Two different seeds converge to similar loss (training is robust to
/// initialization) while reaching different parameters.
#[test]
fn convergence_is_seed_robust() {
    let cfg = GptConfig {
        vocab: 32,
        hidden: 32,
        layers: 2,
        heads: 2,
        max_seq: 16,
    };
    let mut losses = Vec::new();
    let mut params_first: Option<Vec<f32>> = None;
    for seed in [5u64, 6] {
        let mut model = GptModel::new(cfg.clone(), seed);
        let mut pile = SyntheticPile::new(32, 100).with_signal(1.0);
        let (_, last) = train_sgd(&mut model, &mut pile, 250, 0.1);
        losses.push(last);
        match &params_first {
            None => params_first = Some(model.params().to_vec()),
            Some(p) => assert_ne!(p.as_slice(), model.params(), "seeds converged identically"),
        }
    }
    assert!((losses[0] - losses[1]).abs() < 0.5, "{losses:?}");
}
