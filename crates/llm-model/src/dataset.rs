//! Synthetic training data — the substitute for the paper's Pile subset.
//!
//! The stream mixes a deterministic next-token rule with uniform noise, so a
//! model can learn real structure (loss decreases from `ln(vocab)` toward the
//! mixture entropy floor) while staying fully reproducible — which is what
//! the convergence and rollback experiments (Fig. 14) need from a dataset.

use tensorlite::XorShiftRng;

/// A seeded, infinite synthetic token stream.
#[derive(Debug, Clone)]
pub struct SyntheticPile {
    vocab: usize,
    /// Probability of following the deterministic rule (vs uniform noise).
    signal: f32,
    rng: XorShiftRng,
    state: usize,
}

impl SyntheticPile {
    /// Default signal probability (fraction of learnable transitions).
    pub const DEFAULT_SIGNAL: f32 = 0.85;

    /// Creates a stream over a `vocab`-token alphabet.
    ///
    /// # Panics
    /// Panics if `vocab < 2`.
    pub fn new(vocab: usize, seed: u64) -> Self {
        assert!(vocab >= 2, "vocabulary must have at least two tokens");
        SyntheticPile {
            vocab,
            signal: Self::DEFAULT_SIGNAL,
            rng: XorShiftRng::new(seed),
            state: seed as usize % vocab,
        }
    }

    /// Overrides the signal probability (1.0 = fully deterministic).
    ///
    /// # Panics
    /// Panics unless `0 <= signal <= 1`.
    #[must_use]
    pub fn with_signal(mut self, signal: f32) -> Self {
        assert!((0.0..=1.0).contains(&signal), "signal must be in [0, 1]");
        self.signal = signal;
        self
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The deterministic successor rule.
    fn rule(&self, token: usize) -> usize {
        (token * 3 + 7) % self.vocab
    }

    /// Next token of the stream.
    pub fn next_token(&mut self) -> usize {
        let next = if self.rng.next_f32() < self.signal {
            self.rule(self.state)
        } else {
            self.rng.next_usize(self.vocab)
        };
        self.state = next;
        next
    }

    /// Produces one `(input, target)` pair of length `seq` (targets are the
    /// inputs shifted by one, as in language modeling).
    pub fn next_sequence(&mut self, seq: usize) -> (Vec<usize>, Vec<usize>) {
        let raw: Vec<usize> = (0..seq + 1).map(|_| self.next_token()).collect();
        (raw[..seq].to_vec(), raw[1..].to_vec())
    }

    /// Produces a batch of sequence pairs.
    pub fn next_batch(&mut self, batch: usize, seq: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        (0..batch).map(|_| self.next_sequence(seq)).collect()
    }

    /// Entropy floor of the stream in nats — the best achievable
    /// cross-entropy for a model that has fully learned the rule.
    pub fn entropy_floor(&self) -> f32 {
        let s = self.signal as f64;
        let v = self.vocab as f64;
        // With prob s the rule fires (but noise can also emit the rule token):
        // P(rule token) = s + (1-s)/V, other tokens (1-s)/V each.
        let p_rule = s + (1.0 - s) / v;
        let p_other = (1.0 - s) / v;
        let mut h = -p_rule * p_rule.ln();
        if p_other > 0.0 {
            h -= (v - 1.0) * p_other * p_other.ln();
        }
        h as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SyntheticPile::new(64, 42);
        let mut b = SyntheticPile::new(64, 42);
        let (xa, ya) = a.next_sequence(32);
        let (xb, yb) = b.next_sequence(32);
        assert_eq!(xa, xb);
        assert_eq!(ya, yb);
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let mut s = SyntheticPile::new(64, 7);
        let (x, y) = s.next_sequence(16);
        assert_eq!(x.len(), 16);
        assert_eq!(y.len(), 16);
        assert_eq!(&x[1..], &y[..15]);
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let mut s = SyntheticPile::new(17, 3);
        for _ in 0..1000 {
            assert!(s.next_token() < 17);
        }
    }

    #[test]
    fn signal_rule_dominates_transitions() {
        let mut s = SyntheticPile::new(64, 5);
        let mut follow = 0;
        let mut total = 0;
        let mut prev = s.next_token();
        for _ in 0..5000 {
            let next = s.next_token();
            let expected = (prev * 3 + 7) % 64;
            if next == expected {
                follow += 1;
            }
            total += 1;
            prev = next;
        }
        let frac = follow as f32 / total as f32;
        assert!(
            (frac - SyntheticPile::DEFAULT_SIGNAL).abs() < 0.05,
            "rule-following fraction {frac}"
        );
    }

    #[test]
    fn batch_shape() {
        let mut s = SyntheticPile::new(32, 1);
        let b = s.next_batch(4, 8);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|(x, y)| x.len() == 8 && y.len() == 8));
    }

    #[test]
    fn entropy_floor_below_uniform() {
        let s = SyntheticPile::new(64, 1);
        let floor = s.entropy_floor();
        assert!(floor > 0.0);
        assert!(floor < (64f32).ln());
        // Fully deterministic stream has (near) zero entropy.
        let det = SyntheticPile::new(64, 1).with_signal(1.0);
        assert!(det.entropy_floor() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn tiny_vocab_rejected() {
        let _ = SyntheticPile::new(1, 0);
    }
}
