//! Model configurations (paper Appendix A, Table 4).

/// A GPT/LLaMA-style transformer configuration.
///
/// The paper varies hidden dimension and depth to hit target parameter
/// counts; [`ModelConfig::appendix_a`] reproduces its exact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Display name ("5B", "25B", ...).
    pub name: String,
    /// Number of transformer blocks.
    pub layers: u32,
    /// Hidden (model) dimension.
    pub hidden: u32,
    /// Attention head count (hidden / 128 by convention here).
    pub heads: u32,
    /// Vocabulary size (GPT-2 BPE by default).
    pub vocab: u32,
    /// Maximum sequence length the model is configured for.
    pub max_seq: u32,
}

impl ModelConfig {
    /// Creates a configuration with GPT-2 vocabulary and conventional head
    /// sizing (128 dims per head).
    pub fn new(name: impl Into<String>, layers: u32, hidden: u32) -> Self {
        ModelConfig {
            name: name.into(),
            layers,
            hidden,
            heads: (hidden / 128).max(1),
            vocab: 50_257,
            max_seq: 2048,
        }
    }

    /// Exact trainable-parameter count.
    ///
    /// Per block: QKV (3H²+3H), attention projection (H²+H), MLP up/down
    /// (8H²+5H), two LayerNorms (4H). Plus token embedding (V·H) and a final
    /// LayerNorm (2H). The LM head is tied to the embedding, and positions
    /// are rotary (RoPE, as in LLaMA) so the count is independent of
    /// `max_seq` — which is what lets the long-context experiments extend
    /// the context window without growing the model.
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let l = self.layers as u64;
        let v = self.vocab as u64;
        let per_block = 12 * h * h + 13 * h;
        l * per_block + v * h + 2 * h
    }

    /// Parameter count in billions (for display).
    pub fn param_billions(&self) -> f64 {
        self.param_count() as f64 / 1e9
    }

    /// The paper's 5B configuration (44 layers, hidden 3072), used by the
    /// ablation study in Table 2.
    pub fn appendix_a_5b() -> Self {
        Self::new("5B", 44, 3072)
    }

    /// All configurations from Appendix A, Table 4.
    pub fn appendix_a() -> Vec<ModelConfig> {
        vec![
            Self::new("1B", 20, 2048),
            Self::new("2B", 40, 2048),
            Self::new("3B", 60, 2048),
            Self::new("4B", 64, 2304),
            Self::new("5B", 44, 3072),
            Self::new("6B", 53, 3072),
            Self::new("8B", 72, 3072),
            Self::new("10B", 50, 4096),
            Self::new("11B", 55, 4096),
            Self::new("12B", 60, 4096),
            Self::new("13B", 65, 4096),
            Self::new("15B", 78, 4096),
            Self::new("20B", 25, 8192),
            Self::new("25B", 30, 8192),
            Self::new("50B", 60, 8192),
            Self::new("60B", 75, 8192),
            Self::new("70B", 87, 8192),
            Self::new("80B", 100, 8192),
            Self::new("150B", 45, 16384),
            Self::new("200B", 60, 16384),
        ]
    }

    /// Looks up an Appendix-A configuration by name ("5B", "25B", ...).
    pub fn by_name(name: &str) -> Option<ModelConfig> {
        Self::appendix_a().into_iter().find(|c| c.name == name)
    }

    /// A synthetic configuration hitting roughly `billions` parameters with
    /// hidden size 4096 — used for capacity sweeps between table entries.
    pub fn synthetic(billions: f64) -> Self {
        let hidden = 4096u64;
        // 12 L H^2 ≈ billions * 1e9
        let layers = ((billions * 1e9) / (12.0 * (hidden * hidden) as f64))
            .round()
            .max(1.0) as u32;
        ModelConfig::new(format!("{billions:.1}B"), layers, hidden as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_counts_match_nominal_sizes() {
        // Each config's exact parameter count should be within 15% of its
        // nominal billions (the paper's table is itself approximate).
        for cfg in ModelConfig::appendix_a() {
            let nominal: f64 = cfg.name.trim_end_matches('B').parse().unwrap();
            let actual = cfg.param_billions();
            let rel = (actual - nominal).abs() / nominal;
            assert!(
                rel < 0.15,
                "{}: nominal {nominal}B but counted {actual:.2}B",
                cfg.name
            );
        }
    }

    #[test]
    fn table4_rows_present() {
        let cfgs = ModelConfig::appendix_a();
        let find = |n: &str| cfgs.iter().find(|c| c.name == n).unwrap();
        assert_eq!((find("1B").layers, find("1B").hidden), (20, 2048));
        assert_eq!((find("4B").layers, find("4B").hidden), (64, 2304));
        assert_eq!((find("15B").layers, find("15B").hidden), (78, 4096));
        assert_eq!((find("25B").layers, find("25B").hidden), (30, 8192));
        assert_eq!((find("200B").layers, find("200B").hidden), (60, 16384));
    }

    #[test]
    fn by_name_lookup() {
        assert!(ModelConfig::by_name("13B").is_some());
        assert!(ModelConfig::by_name("nope").is_none());
        assert_eq!(
            ModelConfig::by_name("5B").unwrap(),
            ModelConfig::appendix_a_5b()
        );
    }

    #[test]
    fn param_count_monotone_in_depth_and_width() {
        let a = ModelConfig::new("a", 10, 1024);
        let deeper = ModelConfig::new("b", 20, 1024);
        let wider = ModelConfig::new("c", 10, 2048);
        assert!(deeper.param_count() > a.param_count());
        assert!(wider.param_count() > a.param_count());
    }

    #[test]
    fn synthetic_hits_target() {
        for b in [3.0, 7.0, 30.0, 100.0] {
            let cfg = ModelConfig::synthetic(b);
            let rel = (cfg.param_billions() - b).abs() / b;
            assert!(rel < 0.25, "target {b}B got {:.2}B", cfg.param_billions());
        }
    }

    #[test]
    fn heads_divide_hidden() {
        for cfg in ModelConfig::appendix_a() {
            assert_eq!(cfg.hidden % cfg.heads, 0);
        }
    }
}
