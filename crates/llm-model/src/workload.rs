//! Training workloads and memory-fit planning arithmetic.
//!
//! A [`Workload`] is *what the user asked for* (model, global batch,
//! sequence length). Each training system plans *how* to execute it —
//! micro-batch size, gradient accumulation, activation checkpointing — under
//! its own memory placement. The paper's methodology (§5.2) is: when the
//! batch does not fit, try (a) gradient accumulation with smaller
//! micro-batches and (b) activation checkpointing at the largest fitting
//! micro-batch, and report the better plan. [`ExecutionPlan::best`]
//! implements exactly that search given the bytes a system keeps resident on
//! the GPU.

use crate::config::ModelConfig;
use crate::memory::ActivationMemory;

/// A requested training workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Model configuration.
    pub config: ModelConfig,
    /// Global batch size (sequences per optimizer step, per data-parallel
    /// rank).
    pub global_batch: u32,
    /// Sequence length in tokens.
    pub seq: u64,
}

impl Workload {
    /// Creates a workload.
    pub fn new(config: ModelConfig, global_batch: u32, seq: u64) -> Self {
        Workload {
            config,
            global_batch,
            seq,
        }
    }

    /// Tokens processed per optimizer step.
    pub fn tokens(&self) -> u64 {
        self.global_batch as u64 * self.seq
    }
}

/// How a system executes a workload on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Sequences per forward/backward pass.
    pub micro_batch: u32,
    /// Gradient-accumulation steps (`micro_batch * accum == global_batch`).
    pub accum_steps: u32,
    /// Whether activation checkpointing is on.
    pub checkpointing: bool,
    /// Peak activation bytes under this plan.
    pub activation_bytes: u64,
}

impl ExecutionPlan {
    /// Finds the best execution plan for `workload` given `gpu_budget` bytes
    /// available for activations (GPU capacity minus the system's resident
    /// model state), following the paper's two-strategy search: gradient
    /// accumulation with smaller micro-batches, or activation checkpointing
    /// at the largest fitting micro-batch, reporting the faster plan.
    ///
    /// Recomputation adds a full extra forward (~33% more executed FLOPs)
    /// while a smaller micro-batch only adds per-launch overhead, so any
    /// feasible plain plan beats a checkpointed one; checkpointing is the
    /// fallback when even `micro_batch == 1` does not fit un-checkpointed.
    ///
    /// Returns `None` if even `micro_batch == 1` with checkpointing does not
    /// fit — the workload is infeasible for that system (OOM).
    pub fn best(workload: &Workload, gpu_budget: u64) -> Option<ExecutionPlan> {
        Self::largest_fitting(workload, gpu_budget, false)
            .or_else(|| Self::largest_fitting(workload, gpu_budget, true))
    }

    fn largest_fitting(
        workload: &Workload,
        gpu_budget: u64,
        checkpointing: bool,
    ) -> Option<ExecutionPlan> {
        // Micro-batch must divide the global batch; scan divisors descending.
        let mut candidates: Vec<u32> = (1..=workload.global_batch)
            .filter(|m| workload.global_batch.is_multiple_of(*m))
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for m in candidates {
            let act = if checkpointing {
                ActivationMemory::checkpointed(&workload.config, m, workload.seq)
            } else {
                ActivationMemory::full(&workload.config, m, workload.seq)
            };
            if act.bytes <= gpu_budget {
                return Some(ExecutionPlan {
                    micro_batch: m,
                    accum_steps: workload.global_batch / m,
                    checkpointing,
                    activation_bytes: act.bytes,
                });
            }
        }
        None
    }

    /// Number of forward/backward micro-steps per optimizer step.
    pub fn micro_steps(&self) -> u32 {
        self.accum_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(batch: u32) -> Workload {
        Workload::new(ModelConfig::appendix_a_5b(), batch, 2048)
    }

    #[test]
    fn tokens_product() {
        assert_eq!(wl(8).tokens(), 8 * 2048);
    }

    #[test]
    fn huge_budget_gets_full_batch_no_checkpoint() {
        let plan = ExecutionPlan::best(&wl(8), u64::MAX).unwrap();
        assert_eq!(plan.micro_batch, 8);
        assert_eq!(plan.accum_steps, 1);
        assert!(!plan.checkpointing);
    }

    #[test]
    fn shrinking_budget_degrades_gracefully() {
        let w = wl(8);
        let full8 = ActivationMemory::full(&w.config, 8, w.seq).bytes;
        let full4 = ActivationMemory::full(&w.config, 4, w.seq).bytes;
        // Budget between micro-batch-4 and micro-batch-8 full footprints.
        // Checkpointing at micro-batch 8 fits in far less, so the planner
        // may pick it; verify the invariant rather than the exact choice:
        let plan = ExecutionPlan::best(&w, (full4 + full8) / 2).unwrap();
        assert!(plan.activation_bytes <= (full4 + full8) / 2);
        assert_eq!(plan.micro_batch * plan.accum_steps, 8);
    }

    #[test]
    fn checkpointing_rescues_tight_budgets() {
        let w = wl(8);
        let ckpt1 = ActivationMemory::checkpointed(&w.config, 1, w.seq).bytes;
        let full1 = ActivationMemory::full(&w.config, 1, w.seq).bytes;
        // Budget below even micro-batch-1 full: only checkpointing fits.
        let budget = (ckpt1 + full1) / 2;
        let plan = ExecutionPlan::best(&w, budget).unwrap();
        assert!(plan.checkpointing);
    }

    #[test]
    fn infeasible_returns_none() {
        let plan = ExecutionPlan::best(&wl(8), 1024);
        assert!(plan.is_none());
    }

    #[test]
    fn micro_batch_divides_global() {
        let w = Workload::new(ModelConfig::appendix_a_5b(), 12, 2048);
        for budget_gb in [1u64, 4, 16, 64, 256] {
            if let Some(plan) = ExecutionPlan::best(&w, budget_gb << 30) {
                assert_eq!(12 % plan.micro_batch, 0);
                assert_eq!(plan.micro_batch * plan.accum_steps, 12);
            }
        }
    }

    #[test]
    fn prefers_no_checkpointing_on_ties() {
        // With enough budget for full activations at the max micro-batch,
        // checkpointing must not be chosen.
        let plan = ExecutionPlan::best(&wl(4), u64::MAX).unwrap();
        assert!(!plan.checkpointing);
    }
}
