//! Memory accounting for mixed-precision training.
//!
//! The paper's §2.2 states the 16Ψ rule: a Ψ-parameter model in
//! Adam mixed-precision training holds 2Ψ bytes of FP16 parameters, 2Ψ of
//! FP16 gradients, and 12Ψ of FP32 optimizer state (master weights, momentum,
//! variance). This module makes every component explicit so offloading
//! policies can place them individually.

use crate::config::ModelConfig;

/// Byte sizes of each model-state component for a Ψ-parameter model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStateMemory {
    /// FP16 working parameters (2Ψ).
    pub fp16_params: u64,
    /// FP16 gradients (2Ψ).
    pub fp16_grads: u64,
    /// FP32 master parameters (4Ψ).
    pub fp32_params: u64,
    /// FP32 Adam momentum (4Ψ).
    pub momentum: u64,
    /// FP32 Adam variance (4Ψ).
    pub variance: u64,
}

impl ModelStateMemory {
    /// Accounting for `params` trainable parameters.
    pub fn for_params(params: u64) -> Self {
        ModelStateMemory {
            fp16_params: 2 * params,
            fp16_grads: 2 * params,
            fp32_params: 4 * params,
            momentum: 4 * params,
            variance: 4 * params,
        }
    }

    /// Accounting for a model configuration.
    pub fn for_config(cfg: &ModelConfig) -> Self {
        Self::for_params(cfg.param_count())
    }

    /// FP32 optimizer state total (12Ψ: master + momentum + variance).
    pub fn optimizer_states(&self) -> u64 {
        self.fp32_params + self.momentum + self.variance
    }

    /// Grand total (16Ψ).
    pub fn total(&self) -> u64 {
        self.fp16_params + self.fp16_grads + self.optimizer_states()
    }

    /// What remains on GPU under ZeRO-Offload-style placement (weights
    /// stationary, gradients transient on GPU): 4Ψ.
    pub fn gpu_resident_weight_stationary(&self) -> u64 {
        self.fp16_params + self.fp16_grads
    }

    /// What moves to CPU under ZeRO-Offload-style placement: 12Ψ.
    pub fn cpu_resident_weight_stationary(&self) -> u64 {
        self.optimizer_states()
    }
}

/// Activation-memory model.
///
/// Uses the flash-attention-era approximation of ~16 bytes per token per
/// layer per hidden unit... more precisely: `ACT_BYTES_PER_TOKEN_PER_LAYER *
/// hidden` bytes of half-precision activations per token per transformer
/// block (attention scores never materialized). This calibrates to the
/// paper's example: a 7B model at 1M tokens needs ≈2 TB of activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationMemory {
    /// Bytes of activations that must be live for the backward pass.
    pub bytes: u64,
    /// Whether activation checkpointing was applied.
    pub checkpointed: bool,
}

/// Half-precision activation bytes per token, per layer, per hidden unit.
pub const ACT_BYTES_PER_HIDDEN: u64 = 16;

impl ActivationMemory {
    /// Full activation footprint (no checkpointing) for a micro-batch.
    pub fn full(cfg: &ModelConfig, micro_batch: u32, seq: u64) -> Self {
        let tokens = micro_batch as u64 * seq;
        let per_layer = tokens * cfg.hidden as u64 * ACT_BYTES_PER_HIDDEN;
        ActivationMemory {
            bytes: per_layer * cfg.layers as u64 + Self::embedding_bytes(cfg, tokens),
            checkpointed: false,
        }
    }

    /// Footprint with full activation checkpointing: only each block's input
    /// is retained (2 bytes/elem), plus one block's full activations that are
    /// recomputed at a time.
    pub fn checkpointed(cfg: &ModelConfig, micro_batch: u32, seq: u64) -> Self {
        let tokens = micro_batch as u64 * seq;
        let boundary = 2 * tokens * cfg.hidden as u64; // fp16 block inputs
        let one_layer_full = tokens * cfg.hidden as u64 * ACT_BYTES_PER_HIDDEN;
        let bytes =
            boundary * cfg.layers as u64 + one_layer_full + Self::embedding_bytes(cfg, tokens);
        ActivationMemory {
            // For very shallow models the boundary overhead can exceed the
            // savings; a runtime would simply not checkpoint then.
            bytes: bytes.min(Self::full(cfg, micro_batch, seq).bytes),
            checkpointed: true,
        }
    }

    fn embedding_bytes(cfg: &ModelConfig, tokens: u64) -> u64 {
        // Input embeddings + final logits working set (fp16).
        2 * tokens * cfg.hidden as u64
    }
}

/// Bytes of a parameter tensor at FP16.
pub fn fp16_bytes(params: u64) -> u64 {
    2 * params
}

/// Bytes of a parameter tensor at FP32.
pub fn fp32_bytes(params: u64) -> u64 {
    4 * params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_psi_rule() {
        let m = ModelStateMemory::for_params(1_000);
        assert_eq!(m.total(), 16_000);
        assert_eq!(m.optimizer_states(), 12_000);
        assert_eq!(m.gpu_resident_weight_stationary(), 4_000);
        assert_eq!(m.cpu_resident_weight_stationary(), 12_000);
    }

    #[test]
    fn paper_example_6b_fills_h100() {
        // §2.2: an H100 with 96 GB can hold at most ~6B parameters of model
        // states (16Ψ = 96 GB at Ψ = 6B).
        let m = ModelStateMemory::for_params(6_000_000_000);
        assert_eq!(m.total(), 96_000_000_000);
    }

    #[test]
    fn paper_example_7b_model_states() {
        // §4.2: "a 7B-parameter model requires 112GB for model states".
        let m = ModelStateMemory::for_params(7_000_000_000);
        assert_eq!(m.total(), 112_000_000_000);
    }

    #[test]
    fn paper_example_7b_activations_at_1m_tokens() {
        // §4.2: "...needs 2TB of memory for activations with a sequence
        // length of 1 million tokens".
        let cfg = crate::config::ModelConfig::new("7B", 32, 4096);
        let act = ActivationMemory::full(&cfg, 1, 1 << 20);
        let tb = act.bytes as f64 / 1e12;
        assert!((1.5..3.0).contains(&tb), "expected ~2 TB, got {tb:.2} TB");
    }

    #[test]
    fn checkpointing_shrinks_activations_substantially() {
        let cfg = crate::config::ModelConfig::appendix_a_5b();
        let full = ActivationMemory::full(&cfg, 8, 2048);
        let ckpt = ActivationMemory::checkpointed(&cfg, 8, 2048);
        assert!(ckpt.bytes < full.bytes / 4);
        assert!(ckpt.checkpointed);
        assert!(!full.checkpointed);
    }

    #[test]
    fn activation_memory_scales_linearly_with_batch_and_seq() {
        let cfg = crate::config::ModelConfig::appendix_a_5b();
        let a = ActivationMemory::full(&cfg, 1, 1024).bytes;
        let b = ActivationMemory::full(&cfg, 2, 1024).bytes;
        let c = ActivationMemory::full(&cfg, 1, 2048).bytes;
        assert_eq!(b, 2 * a);
        assert_eq!(c, 2 * a);
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(fp16_bytes(10), 20);
        assert_eq!(fp32_bytes(10), 40);
    }
}
