//! Training FLOP accounting.
//!
//! Follows the paper's approximations: forward compute of a transformer is
//! `2 · params · tokens` for the parameter-dependent GEMMs (§4.2), plus the
//! attention term `2 · layers · hidden · seq · tokens` (causal) which
//! dominates at very long sequences (the Ulysses experiments). Backward
//! costs twice the forward. Recomputation (activation checkpointing) adds
//! one extra forward but is *excluded* from effective-throughput TFLOPS,
//! matching §5.2 ("we exclude recomputation volume when calculating
//! TFLOPS").

use crate::config::ModelConfig;

/// FLOP totals for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingFlops {
    /// Forward-pass FLOPs (parameter GEMMs + attention).
    pub forward: f64,
    /// Backward-pass FLOPs (2× forward).
    pub backward: f64,
    /// Extra recomputation FLOPs (one forward) if checkpointing is on.
    pub recompute: f64,
}

impl TrainingFlops {
    /// FLOPs for one iteration of `cfg` at the given global batch and
    /// sequence length.
    pub fn for_iteration(cfg: &ModelConfig, batch: u32, seq: u64, checkpointing: bool) -> Self {
        let tokens = batch as u64 * seq;
        let forward = forward_flops(cfg, tokens, seq);
        TrainingFlops {
            forward,
            backward: 2.0 * forward,
            recompute: if checkpointing { forward } else { 0.0 },
        }
    }

    /// FLOPs the hardware actually executes (includes recomputation).
    pub fn executed(&self) -> f64 {
        self.forward + self.backward + self.recompute
    }

    /// FLOPs counted for throughput reporting (excludes recomputation).
    pub fn effective(&self) -> f64 {
        self.forward + self.backward
    }

    /// Model FLOPs Utilization given an iteration time and a per-GPU peak,
    /// aggregated over `gpus`.
    pub fn mfu(&self, iter_secs: f64, gpu_peak_flops: f64, gpus: u32) -> f64 {
        self.effective() / (iter_secs * gpu_peak_flops * gpus as f64)
    }
}

/// Forward FLOPs: parameter GEMMs plus causal attention.
pub fn forward_flops(cfg: &ModelConfig, tokens: u64, seq: u64) -> f64 {
    let gemm = 2.0 * cfg.param_count() as f64 * tokens as f64;
    // Causal attention: QK^T and AV are each 2·h·s² per layer per sequence;
    // causality halves the effective work: total 2·L·h·s·tokens.
    let attn = 2.0 * cfg.layers as f64 * cfg.hidden as f64 * seq as f64 * tokens as f64;
    gemm + attn
}

/// Throughput in TFLOPS given effective FLOPs and iteration time.
pub fn tflops(effective_flops: f64, iter_secs: f64) -> f64 {
    effective_flops / iter_secs / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::appendix_a_5b()
    }

    #[test]
    fn backward_is_twice_forward() {
        let f = TrainingFlops::for_iteration(&cfg(), 8, 2048, false);
        assert_eq!(f.backward, 2.0 * f.forward);
        assert_eq!(f.recompute, 0.0);
        assert_eq!(f.executed(), f.effective());
    }

    #[test]
    fn checkpointing_adds_one_forward_to_executed_only() {
        let base = TrainingFlops::for_iteration(&cfg(), 8, 2048, false);
        let ckpt = TrainingFlops::for_iteration(&cfg(), 8, 2048, true);
        assert_eq!(ckpt.effective(), base.effective());
        assert!((ckpt.executed() - (base.executed() + base.forward)).abs() < 1.0);
    }

    #[test]
    fn gemm_term_matches_2_params_tokens_at_short_seq() {
        // At seq 1024 the attention term is small relative to GEMMs for 5B.
        let tokens = 8 * 1024u64;
        let f = forward_flops(&cfg(), tokens, 1024);
        let gemm = 2.0 * cfg().param_count() as f64 * tokens as f64;
        assert!(f / gemm < 1.1, "attention should be <10% at seq 1024");
    }

    #[test]
    fn attention_dominates_at_million_tokens() {
        let cfg = ModelConfig::by_name("13B").unwrap();
        let seq = 1u64 << 20;
        let f = forward_flops(&cfg, seq, seq);
        let gemm = 2.0 * cfg.param_count() as f64 * seq as f64;
        assert!(f > 3.0 * gemm, "attention must dominate at 1M tokens");
    }

    #[test]
    fn mfu_is_fraction_of_peak() {
        let f = TrainingFlops::for_iteration(&cfg(), 8, 2048, false);
        // If the iteration ran exactly at peak, MFU == 1.
        let iter = f.effective() / 990e12;
        let mfu = f.mfu(iter, 990e12, 1);
        assert!((mfu - 1.0).abs() < 1e-12);
        // Half speed -> MFU 0.5.
        let mfu = f.mfu(2.0 * iter, 990e12, 1);
        assert!((mfu - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tflops_helper() {
        assert_eq!(tflops(2e12, 2.0), 1.0);
    }
}
