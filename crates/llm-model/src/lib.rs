//! Transformer model definitions for the SuperOffload reproduction.
//!
//! Two faces of the same model family:
//!
//! - **Accounting** ([`config`], [`memory`], [`flops`]): the GPT/LLaMA-style
//!   configurations of the paper's Appendix A, with exact parameter counts,
//!   mixed-precision model-state memory (the 16Ψ rule), activation memory,
//!   and training-FLOP formulas. These drive the performance plane.
//! - **Execution** ([`transformer`], [`dataset`]): a real miniature GPT with
//!   exact manual backward over a flat parameter store, plus a synthetic
//!   Pile-like token stream. These drive the numeric plane (convergence and
//!   speculation-then-validation exactness experiments).
//!
//! # Example
//!
//! ```
//! use llm_model::config::ModelConfig;
//!
//! let cfg = ModelConfig::appendix_a_5b();
//! assert_eq!(cfg.layers, 44);
//! assert_eq!(cfg.hidden, 3072);
//! // ~5B parameters
//! assert!((cfg.param_count() as f64 / 1e9 - 5.0).abs() < 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod dataset;
pub mod flops;
pub mod memory;
pub mod transformer;
pub mod workload;

pub use config::ModelConfig;
pub use dataset::SyntheticPile;
pub use flops::TrainingFlops;
pub use memory::{ActivationMemory, ModelStateMemory};
pub use transformer::{GptConfig, GptModel};
pub use workload::{ExecutionPlan, Workload};
