//! A real miniature GPT with exact manual backward over a flat parameter
//! store.
//!
//! All parameters live in one contiguous `Vec<f32>` with named views — the
//! same flattened layout DeepSpeed uses, which is what makes bucket-based
//! offloading (§4.3) and in-place rollback (§4.4) natural to express: an
//! optimizer bucket is literally a sub-range of the flat vector.
//!
//! The model is small (tests use hidden sizes of 16–64) but *exact*: its
//! gradients are verified against finite differences, and the STV engine
//! uses it to demonstrate bit-identical convergence with and without
//! speculation.

use std::collections::HashMap;

use tensorlite::ops::{
    cross_entropy, gelu, gelu_backward, layer_norm, layer_norm_backward, linear, linear_backward,
    softmax_rows, softmax_rows_backward,
};
use tensorlite::{Pool, Tensor, TensorError, XorShiftRng};

/// Configuration of the miniature GPT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads (must divide `hidden`).
    pub heads: usize,
    /// Maximum sequence length (learned positions).
    pub max_seq: usize,
}

impl GptConfig {
    /// A tiny configuration for tests: vocab 64, hidden 32, 2 layers, 2 heads.
    pub fn tiny() -> Self {
        GptConfig {
            vocab: 64,
            hidden: 32,
            layers: 2,
            heads: 2,
            max_seq: 32,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// A named view into the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamView {
    /// Hierarchical name, e.g. `"block3.attn.wqkv"`.
    pub name: String,
    /// Offset into the flat vector.
    pub offset: usize,
    /// Element count.
    pub len: usize,
    /// Logical shape.
    pub shape: Vec<usize>,
}

/// Per-layer forward cache (inputs and statistics needed by backward).
#[derive(Debug)]
struct BlockCache {
    x_in: Tensor, // block input [T, h]
    ln1_mean: Vec<f32>,
    ln1_inv_std: Vec<f32>,
    ln1_out: Tensor,         // [T, h]
    qkv: Tensor,             // [T, 3h]
    head_probs: Vec<Tensor>, // per head [T, T]
    attn_concat: Tensor,     // [T, h]
    x_mid: Tensor,           // after attention residual [T, h]
    ln2_mean: Vec<f32>,
    ln2_inv_std: Vec<f32>,
    ln2_out: Tensor, // [T, h]
    mlp_pre: Tensor, // [T, 4h] pre-GELU
    mlp_act: Tensor, // [T, 4h] post-GELU
}

/// Full forward cache for one sequence.
#[derive(Debug)]
pub struct ForwardCache {
    tokens: Vec<usize>,
    blocks: Vec<BlockCache>,
    lnf_mean: Vec<f32>,
    lnf_inv_std: Vec<f32>,
    lnf_in: Tensor,  // input to final LN [T, h]
    lnf_out: Tensor, // [T, h]
    dlogits: Tensor, // [T, vocab]
    /// Mean cross-entropy loss over the sequence.
    pub loss: f32,
}

/// The miniature GPT model.
#[derive(Debug, Clone)]
pub struct GptModel {
    cfg: GptConfig,
    params: Vec<f32>,
    grads: Vec<f32>,
    views: Vec<ParamView>,
    index: HashMap<String, usize>,
}

impl GptModel {
    /// Creates a model with GPT-2-style initialization (normal, std 0.02;
    /// residual projections scaled by `1/sqrt(2·layers)`).
    ///
    /// # Panics
    /// Panics if `heads` does not divide `hidden`.
    pub fn new(cfg: GptConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.hidden % cfg.heads,
            0,
            "heads must divide hidden dimension"
        );
        let mut model = GptModel {
            cfg: cfg.clone(),
            params: Vec::new(),
            grads: Vec::new(),
            views: Vec::new(),
            index: HashMap::new(),
        };
        let mut rng = XorShiftRng::new(seed);
        let h = cfg.hidden;
        let std = 0.02f32;
        let resid_std = std / ((2 * cfg.layers) as f32).sqrt();

        model.register(
            "wte",
            &[cfg.vocab, h],
            |r| r.normal_scaled(0.0, std),
            &mut rng,
        );
        model.register(
            "wpe",
            &[cfg.max_seq, h],
            |r| r.normal_scaled(0.0, std),
            &mut rng,
        );
        for l in 0..cfg.layers {
            let p = |s: &str| format!("block{l}.{s}");
            model.register(&p("ln1.gamma"), &[h], |_| 1.0, &mut rng);
            model.register(&p("ln1.beta"), &[h], |_| 0.0, &mut rng);
            model.register(
                &p("attn.wqkv"),
                &[h, 3 * h],
                |r| r.normal_scaled(0.0, std),
                &mut rng,
            );
            model.register(&p("attn.bqkv"), &[3 * h], |_| 0.0, &mut rng);
            model.register(
                &p("attn.wo"),
                &[h, h],
                |r| r.normal_scaled(0.0, resid_std),
                &mut rng,
            );
            model.register(&p("attn.bo"), &[h], |_| 0.0, &mut rng);
            model.register(&p("ln2.gamma"), &[h], |_| 1.0, &mut rng);
            model.register(&p("ln2.beta"), &[h], |_| 0.0, &mut rng);
            model.register(
                &p("mlp.w1"),
                &[h, 4 * h],
                |r| r.normal_scaled(0.0, std),
                &mut rng,
            );
            model.register(&p("mlp.b1"), &[4 * h], |_| 0.0, &mut rng);
            model.register(
                &p("mlp.w2"),
                &[4 * h, h],
                |r| r.normal_scaled(0.0, resid_std),
                &mut rng,
            );
            model.register(&p("mlp.b2"), &[h], |_| 0.0, &mut rng);
        }
        model.register("lnf.gamma", &[h], |_| 1.0, &mut rng);
        model.register("lnf.beta", &[h], |_| 0.0, &mut rng);
        model
    }

    fn register(
        &mut self,
        name: &str,
        shape: &[usize],
        init: impl Fn(&mut XorShiftRng) -> f32,
        rng: &mut XorShiftRng,
    ) {
        let len: usize = shape.iter().product();
        let offset = self.params.len();
        self.params.extend((0..len).map(|_| init(rng)));
        self.grads.extend(std::iter::repeat_n(0.0, len));
        self.index.insert(name.to_string(), self.views.len());
        self.views.push(ParamView {
            name: name.to_string(),
            offset,
            len,
            shape: shape.to_vec(),
        });
    }

    /// The configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Flat read-only parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat mutable parameter vector (optimizers write here).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Flat read-only gradient vector.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// Flat mutable gradient vector.
    pub fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Named parameter views in registration (= flat) order.
    pub fn views(&self) -> &[ParamView] {
        &self.views
    }

    /// Looks up a view by name.
    pub fn view(&self, name: &str) -> Option<&ParamView> {
        self.index.get(name).map(|&i| &self.views[i])
    }

    fn tensor_of(&self, name: &str) -> Tensor {
        let v = &self.views[self.index[name]];
        Tensor::from_vec(self.params[v.offset..v.offset + v.len].to_vec(), &v.shape)
            .expect("view shape matches storage")
    }

    fn slice_of(&self, name: &str) -> &[f32] {
        let v = &self.views[self.index[name]];
        &self.params[v.offset..v.offset + v.len]
    }

    fn add_grad_tensor(&mut self, name: &str, g: &Tensor) {
        let v = &self.views[self.index[name]];
        debug_assert_eq!(v.len, g.len(), "gradient size mismatch for {name}");
        for (dst, src) in self.grads[v.offset..v.offset + v.len]
            .iter_mut()
            .zip(g.data())
        {
            *dst += src;
        }
    }

    fn add_grad_slice(&mut self, name: &str, g: &[f32]) {
        let v = &self.views[self.index[name]];
        debug_assert_eq!(v.len, g.len(), "gradient size mismatch for {name}");
        for (dst, src) in self.grads[v.offset..v.offset + v.len].iter_mut().zip(g) {
            *dst += src;
        }
    }

    /// Runs the forward pass on one sequence, returning the cache (which
    /// includes the mean cross-entropy loss against `targets`).
    ///
    /// # Errors
    /// Returns [`TensorError`] on shape violations (e.g. sequence longer
    /// than `max_seq`, token id out of vocabulary).
    pub fn forward(
        &self,
        tokens: &[usize],
        targets: &[usize],
    ) -> Result<ForwardCache, TensorError> {
        let t = tokens.len();
        let h = self.cfg.hidden;
        if t == 0 || t > self.cfg.max_seq {
            return Err(TensorError::IndexOutOfBounds {
                index: t,
                len: self.cfg.max_seq,
            });
        }
        // Embedding: wte[token] + wpe[pos].
        let wte = self.slice_of("wte");
        let wpe = self.slice_of("wpe");
        let mut emb = vec![0.0f32; t * h];
        for (i, &tok) in tokens.iter().enumerate() {
            if tok >= self.cfg.vocab {
                return Err(TensorError::IndexOutOfBounds {
                    index: tok,
                    len: self.cfg.vocab,
                });
            }
            for j in 0..h {
                emb[i * h + j] = wte[tok * h + j] + wpe[i * h + j];
            }
        }
        let mut x = Tensor::from_vec(emb, &[t, h])?;
        let mut blocks = Vec::with_capacity(self.cfg.layers);
        for l in 0..self.cfg.layers {
            let (cache, out) = self.block_forward(l, &x)?;
            blocks.push(cache);
            x = out;
        }

        let lnf_in = x;
        let (lnf_out, lnf_mean, lnf_inv_std) = layer_norm(
            &lnf_in,
            self.slice_of("lnf.gamma"),
            self.slice_of("lnf.beta"),
            1e-5,
        )?;
        // Tied LM head: logits = lnf_out @ wte^T (fused, no transpose).
        let logits = lnf_out.matmul_bt(&self.tensor_of("wte"))?;
        let (loss, dlogits) = cross_entropy(&logits, targets)?;

        Ok(ForwardCache {
            tokens: tokens.to_vec(),
            blocks,
            lnf_mean,
            lnf_inv_std,
            lnf_in,
            lnf_out,
            dlogits,
            loss,
        })
    }

    fn block_forward(&self, l: usize, x: &Tensor) -> Result<(BlockCache, Tensor), TensorError> {
        let p = |s: &str| format!("block{l}.{s}");
        let t = x.shape()[0];
        let h = self.cfg.hidden;
        let heads = self.cfg.heads;
        let d = self.cfg.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let (ln1_out, ln1_mean, ln1_inv_std) = layer_norm(
            x,
            self.slice_of(&p("ln1.gamma")),
            self.slice_of(&p("ln1.beta")),
            1e-5,
        )?;
        let qkv = linear(
            &ln1_out,
            &self.tensor_of(&p("attn.wqkv")),
            self.slice_of(&p("attn.bqkv")),
        )?;

        // Per-head causal attention. Heads are independent, so they run in
        // parallel on the worker pool; the merge below writes each head's
        // disjoint column stripe in head order, keeping the result
        // bit-identical to the serial loop.
        let pool = Pool::current().limit_for(heads * t * t * 2 * d);
        let head_results: Vec<Result<(Tensor, Tensor), TensorError>> = pool.run(heads, |head| {
            let (q, k, v) = split_qkv(&qkv, head, d, h);
            let mut scores = q.matmul_bt(&k)?.scale(scale);
            apply_causal_mask(&mut scores);
            let probs = softmax_rows(&scores)?;
            let out = probs.matmul(&v)?; // [T, d]
            Ok((probs, out))
        });
        let mut head_probs = Vec::with_capacity(heads);
        let mut concat = vec![0.0f32; t * h];
        for (head, result) in head_results.into_iter().enumerate() {
            let (probs, out) = result?;
            for i in 0..t {
                for j in 0..d {
                    concat[i * h + head * d + j] = out.data()[i * d + j];
                }
            }
            head_probs.push(probs);
        }
        let attn_concat = Tensor::from_vec(concat, &[t, h])?;
        let attn_out = linear(
            &attn_concat,
            &self.tensor_of(&p("attn.wo")),
            self.slice_of(&p("attn.bo")),
        )?;
        let x_mid = x.add(&attn_out)?;

        let (ln2_out, ln2_mean, ln2_inv_std) = layer_norm(
            &x_mid,
            self.slice_of(&p("ln2.gamma")),
            self.slice_of(&p("ln2.beta")),
            1e-5,
        )?;
        let mlp_pre = linear(
            &ln2_out,
            &self.tensor_of(&p("mlp.w1")),
            self.slice_of(&p("mlp.b1")),
        )?;
        let mlp_act = gelu(&mlp_pre);
        let mlp_out = linear(
            &mlp_act,
            &self.tensor_of(&p("mlp.w2")),
            self.slice_of(&p("mlp.b2")),
        )?;
        let out = x_mid.add(&mlp_out)?;

        Ok((
            BlockCache {
                x_in: x.clone(),
                ln1_mean,
                ln1_inv_std,
                ln1_out,
                qkv,
                head_probs,
                attn_concat,
                x_mid,
                ln2_mean,
                ln2_inv_std,
                ln2_out,
                mlp_pre,
                mlp_act,
            },
            out,
        ))
    }

    /// Runs the backward pass, accumulating gradients into the flat gradient
    /// vector (call [`GptModel::zero_grads`] between iterations).
    ///
    /// # Errors
    /// Returns [`TensorError`] on internal shape violations (a bug, not a
    /// user error, if `cache` came from this model).
    pub fn backward(&mut self, cache: &ForwardCache) -> Result<(), TensorError> {
        let t = cache.tokens.len();
        let h = self.cfg.hidden;

        // LM head (tied): logits = lnf_out @ wte^T
        // d(lnf_out) = dlogits @ wte ; d(wte) += dlogits^T @ lnf_out
        let wte = self.tensor_of("wte");
        let d_lnf_out = cache.dlogits.matmul(&wte)?;
        let d_wte_head = cache.dlogits.matmul_at(&cache.lnf_out)?;
        self.add_grad_tensor("wte", &d_wte_head);

        let gamma_f = self.slice_of("lnf.gamma").to_vec();
        let (mut dx, dgamma, dbeta) = layer_norm_backward(
            &cache.lnf_in,
            &d_lnf_out,
            &gamma_f,
            &cache.lnf_mean,
            &cache.lnf_inv_std,
        )?;
        self.add_grad_slice("lnf.gamma", &dgamma);
        self.add_grad_slice("lnf.beta", &dbeta);

        for l in (0..self.cfg.layers).rev() {
            dx = self.block_backward(l, &cache.blocks[l], &dx)?;
        }

        // Embedding backward: dx over wte rows and wpe rows.
        let mut d_wte = vec![0.0f32; self.cfg.vocab * h];
        let mut d_wpe = vec![0.0f32; self.cfg.max_seq * h];
        for (i, &tok) in cache.tokens.iter().enumerate() {
            for j in 0..h {
                let g = dx.data()[i * h + j];
                d_wte[tok * h + j] += g;
                d_wpe[i * h + j] += g;
            }
        }
        self.add_grad_slice("wte", &d_wte);
        self.add_grad_slice("wpe", &d_wpe);
        let _ = t;
        Ok(())
    }

    fn block_backward(
        &mut self,
        l: usize,
        cache: &BlockCache,
        dout: &Tensor,
    ) -> Result<Tensor, TensorError> {
        let p = |s: &str| format!("block{l}.{s}");
        let t = cache.x_in.shape()[0];
        let h = self.cfg.hidden;
        let heads = self.cfg.heads;
        let d = self.cfg.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        // out = x_mid + mlp_out
        let d_mlp_out = dout.clone();
        // MLP backward.
        let w2 = self.tensor_of(&p("mlp.w2"));
        let (d_mlp_act, d_w2, d_b2) = linear_backward(&cache.mlp_act, &w2, &d_mlp_out)?;
        self.add_grad_tensor(&p("mlp.w2"), &d_w2);
        self.add_grad_slice(&p("mlp.b2"), &d_b2);
        let d_mlp_pre = gelu_backward(&cache.mlp_pre, &d_mlp_act)?;
        let w1 = self.tensor_of(&p("mlp.w1"));
        let (d_ln2_out, d_w1, d_b1) = linear_backward(&cache.ln2_out, &w1, &d_mlp_pre)?;
        self.add_grad_tensor(&p("mlp.w1"), &d_w1);
        self.add_grad_slice(&p("mlp.b1"), &d_b1);

        let gamma2 = self.slice_of(&p("ln2.gamma")).to_vec();
        let (d_x_mid_ln, d_gamma2, d_beta2) = layer_norm_backward(
            &cache.x_mid,
            &d_ln2_out,
            &gamma2,
            &cache.ln2_mean,
            &cache.ln2_inv_std,
        )?;
        self.add_grad_slice(&p("ln2.gamma"), &d_gamma2);
        self.add_grad_slice(&p("ln2.beta"), &d_beta2);

        // x_mid receives gradient from both the residual skip (dout) and LN2.
        let d_x_mid = dout.add(&d_x_mid_ln)?;

        // x_mid = x_in + attn_out
        let d_attn_out = d_x_mid.clone();
        let wo = self.tensor_of(&p("attn.wo"));
        let (d_attn_concat, d_wo, d_bo) = linear_backward(&cache.attn_concat, &wo, &d_attn_out)?;
        self.add_grad_tensor(&p("attn.wo"), &d_wo);
        self.add_grad_slice(&p("attn.bo"), &d_bo);

        // Attention backward per head — heads are independent, so they run
        // in parallel on the worker pool; gradients are merged serially in
        // head order into disjoint column stripes of d_qkv.
        let mut d_qkv = Tensor::zeros(&[t, 3 * h]);
        let pool = Pool::current().limit_for(heads * t * t * 6 * d);
        let head_grads: Vec<Result<(Tensor, Tensor, Tensor), TensorError>> =
            pool.run(heads, |head| {
                let (q, k, v) = split_qkv(&cache.qkv, head, d, h);
                let probs = &cache.head_probs[head];
                // d_out_head from d_attn_concat columns.
                let mut d_out = vec![0.0f32; t * d];
                for i in 0..t {
                    for j in 0..d {
                        d_out[i * d + j] = d_attn_concat.data()[i * h + head * d + j];
                    }
                }
                let d_out = Tensor::from_vec(d_out, &[t, d])?;
                // out = probs @ v
                let d_probs = d_out.matmul_bt(&v)?;
                let d_v = probs.matmul_at(&d_out)?;
                // probs = softmax(scores)
                let d_scores = softmax_rows_backward(probs, &d_probs)?.scale(scale);
                // scores(pre-scale) = q @ k^T (mask entries have zero
                // gradient because their probs are exactly zero).
                let d_q = d_scores.matmul(&k)?;
                let d_k = d_scores.matmul_at(&q)?;
                Ok((d_q, d_k, d_v))
            });
        for (head, grads) in head_grads.into_iter().enumerate() {
            let (d_q, d_k, d_v) = grads?;
            merge_qkv_grad(&mut d_qkv, &d_q, &d_k, &d_v, head, d, h);
        }

        let wqkv = self.tensor_of(&p("attn.wqkv"));
        let (d_ln1_out, d_wqkv, d_bqkv) = linear_backward(&cache.ln1_out, &wqkv, &d_qkv)?;
        self.add_grad_tensor(&p("attn.wqkv"), &d_wqkv);
        self.add_grad_slice(&p("attn.bqkv"), &d_bqkv);

        let gamma1 = self.slice_of(&p("ln1.gamma")).to_vec();
        let (d_x_ln, d_gamma1, d_beta1) = layer_norm_backward(
            &cache.x_in,
            &d_ln1_out,
            &gamma1,
            &cache.ln1_mean,
            &cache.ln1_inv_std,
        )?;
        self.add_grad_slice(&p("ln1.gamma"), &d_gamma1);
        self.add_grad_slice(&p("ln1.beta"), &d_beta1);

        d_x_mid.add(&d_x_ln)
    }

    /// Convenience: forward + backward on one sequence, returning the loss.
    /// Gradients accumulate; callers zero them between optimizer steps.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from [`GptModel::forward`].
    pub fn forward_backward(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
    ) -> Result<f32, TensorError> {
        let cache = self.forward(tokens, targets)?;
        self.backward(&cache)?;
        Ok(cache.loss)
    }

    /// Logits for a sequence (no loss computation) — used by causality tests
    /// and greedy sampling.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward pass.
    pub fn logits(&self, tokens: &[usize]) -> Result<Tensor, TensorError> {
        // Reuse forward with dummy targets; loss/dlogits are ignored.
        let targets = vec![0usize; tokens.len()];
        let cache = self.forward(tokens, &targets)?;
        cache.lnf_out.matmul_bt(&self.tensor_of("wte"))
    }

    /// Mean cross-entropy loss over a batch of sequences, without touching
    /// gradients — the evaluation half of a train/eval loop.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward pass.
    pub fn evaluate(&self, batch: &[(Vec<usize>, Vec<usize>)]) -> Result<f32, TensorError> {
        let mut sum = 0.0f64;
        for (x, y) in batch {
            sum += self.forward(x, y)?.loss as f64;
        }
        Ok((sum / batch.len().max(1) as f64) as f32)
    }

    /// Perplexity over a batch: `exp(mean loss)`.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from [`GptModel::evaluate`].
    pub fn perplexity(&self, batch: &[(Vec<usize>, Vec<usize>)]) -> Result<f32, TensorError> {
        Ok(self.evaluate(batch)?.exp())
    }

    /// Greedy autoregressive generation: extends `prompt` by `new_tokens`
    /// tokens, always picking the arg-max next token. The attention window
    /// slides over the last `max_seq` tokens when the sequence outgrows the
    /// learned positions.
    ///
    /// # Errors
    /// Propagates [`TensorError`] from the forward pass (e.g. an empty or
    /// out-of-vocabulary prompt).
    pub fn generate(&self, prompt: &[usize], new_tokens: usize) -> Result<Vec<usize>, TensorError> {
        let mut tokens = prompt.to_vec();
        for _ in 0..new_tokens {
            let window_start = tokens.len().saturating_sub(self.cfg.max_seq);
            let window = &tokens[window_start..];
            let logits = self.logits(window)?;
            let last = logits.row(window.len() - 1)?;
            let next = last
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty vocabulary");
            tokens.push(next);
        }
        Ok(tokens)
    }
}

fn split_qkv(qkv: &Tensor, head: usize, d: usize, h: usize) -> (Tensor, Tensor, Tensor) {
    let t = qkv.shape()[0];
    let mut q = vec![0.0f32; t * d];
    let mut k = vec![0.0f32; t * d];
    let mut v = vec![0.0f32; t * d];
    for i in 0..t {
        for j in 0..d {
            q[i * d + j] = qkv.data()[i * 3 * h + head * d + j];
            k[i * d + j] = qkv.data()[i * 3 * h + h + head * d + j];
            v[i * d + j] = qkv.data()[i * 3 * h + 2 * h + head * d + j];
        }
    }
    (
        Tensor::from_vec(q, &[t, d]).expect("qkv split shape"),
        Tensor::from_vec(k, &[t, d]).expect("qkv split shape"),
        Tensor::from_vec(v, &[t, d]).expect("qkv split shape"),
    )
}

fn merge_qkv_grad(
    d_qkv: &mut Tensor,
    d_q: &Tensor,
    d_k: &Tensor,
    d_v: &Tensor,
    head: usize,
    d: usize,
    h: usize,
) {
    let t = d_q.shape()[0];
    for i in 0..t {
        for j in 0..d {
            let data = d_qkv.data_mut();
            data[i * 3 * h + head * d + j] += d_q.data()[i * d + j];
            data[i * 3 * h + h + head * d + j] += d_k.data()[i * d + j];
            data[i * 3 * h + 2 * h + head * d + j] += d_v.data()[i * d + j];
        }
    }
}

fn apply_causal_mask(scores: &mut Tensor) {
    let t = scores.shape()[0];
    for i in 0..t {
        for j in (i + 1)..t {
            scores.data_mut()[i * t + j] = f32::NEG_INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> GptModel {
        GptModel::new(GptConfig::tiny(), seed)
    }

    #[test]
    fn registration_layout_is_contiguous() {
        let m = tiny_model(1);
        let mut expected_offset = 0;
        for v in m.views() {
            assert_eq!(v.offset, expected_offset, "{} not contiguous", v.name);
            assert_eq!(v.len, v.shape.iter().product::<usize>());
            expected_offset += v.len;
        }
        assert_eq!(expected_offset, m.num_params());
        assert_eq!(m.params().len(), m.grads().len());
    }

    #[test]
    fn view_lookup() {
        let m = tiny_model(1);
        assert!(m.view("wte").is_some());
        assert!(m.view("block0.attn.wqkv").is_some());
        assert!(m.view("block1.mlp.w2").is_some());
        assert!(m.view("block2.mlp.w2").is_none());
    }

    #[test]
    fn forward_produces_finite_loss_near_log_vocab() {
        let m = tiny_model(2);
        let tokens: Vec<usize> = (0..16).map(|i| i % 64).collect();
        let targets: Vec<usize> = (1..17).map(|i| i % 64).collect();
        let cache = m.forward(&tokens, &targets).unwrap();
        assert!(cache.loss.is_finite());
        // At init, predictions are near-uniform: loss ≈ ln(vocab).
        assert!(
            (cache.loss - (64f32).ln()).abs() < 0.5,
            "loss {}",
            cache.loss
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = tiny_model(3);
        assert!(m.forward(&[], &[]).is_err());
        assert!(m.forward(&[999], &[0]).is_err()); // token out of vocab
        let long = vec![0usize; 33]; // > max_seq
        assert!(m.forward(&long, &long).is_err());
    }

    #[test]
    fn causal_masking_blocks_future_influence() {
        let m = tiny_model(4);
        let a = vec![5usize, 10, 20, 30];
        let mut b = a.clone();
        b[3] = 63; // change only the last token
        let la = m.logits(&a).unwrap();
        let lb = m.logits(&b).unwrap();
        // Logits at positions 0..2 must be identical.
        for pos in 0..3 {
            for v in 0..64 {
                assert_eq!(
                    la.get2(pos, v).unwrap(),
                    lb.get2(pos, v).unwrap(),
                    "future token leaked into position {pos}"
                );
            }
        }
        // Position 3 must differ somewhere.
        let differs = (0..64).any(|v| la.get2(3, v).unwrap() != lb.get2(3, v).unwrap());
        assert!(differs);
    }

    #[test]
    fn full_model_gradient_matches_finite_difference() {
        // Gradient-check a sample of parameters across every view kind.
        let mut m = GptModel::new(
            GptConfig {
                vocab: 17,
                hidden: 8,
                layers: 2,
                heads: 2,
                max_seq: 8,
            },
            7,
        );
        let tokens = [3usize, 11, 5, 0, 16];
        let targets = [11usize, 5, 0, 16, 2];
        m.zero_grads();
        let loss0 = m.forward_backward(&tokens, &targets).unwrap();
        assert!(loss0.is_finite());
        let grads = m.grads().to_vec();

        let eps = 3e-3f32;
        // Sample indices spread across the whole flat vector.
        let n = m.num_params();
        let sample: Vec<usize> = (0..60).map(|i| (i * 977) % n).collect();
        for &idx in &sample {
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let lp = m.forward(&tokens, &targets).unwrap().loss;
            m.params_mut()[idx] = orig - eps;
            let lm = m.forward(&tokens, &targets).unwrap().loss;
            m.params_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[idx];
            let tol = 2e-2 * (1.0 + numeric.abs().max(analytic.abs()));
            assert!(
                (numeric - analytic).abs() < tol,
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut m = tiny_model(5);
        let tokens = [1usize, 2, 3];
        let targets = [2usize, 3, 4];
        m.zero_grads();
        m.forward_backward(&tokens, &targets).unwrap();
        let g1 = m.grads().to_vec();
        m.forward_backward(&tokens, &targets).unwrap();
        let g2 = m.grads().to_vec();
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-4 * (1.0 + a.abs()));
        }
        m.zero_grads();
        assert!(m.grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn same_seed_same_model() {
        let a = tiny_model(9);
        let b = tiny_model(9);
        assert_eq!(a.params(), b.params());
        let c = tiny_model(10);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn evaluate_matches_forward_loss_and_leaves_grads_alone() {
        let mut m = tiny_model(41);
        m.zero_grads();
        let batch = vec![(vec![1usize, 2, 3], vec![2usize, 3, 4])];
        let eval = m.evaluate(&batch).unwrap();
        let fwd = m.forward(&batch[0].0, &batch[0].1).unwrap().loss;
        assert_eq!(eval, fwd);
        assert!(
            m.grads().iter().all(|&g| g == 0.0),
            "evaluate must not touch grads"
        );
        // Perplexity of uniform predictions ≈ vocab size.
        let ppl = m.perplexity(&batch).unwrap();
        assert!((ppl - eval.exp()).abs() < 1e-3);
        assert!(
            (40.0..90.0).contains(&ppl),
            "untrained ppl ≈ vocab, got {ppl}"
        );
    }

    #[test]
    fn generation_extends_prompt_within_vocab() {
        let m = tiny_model(21);
        let out = m.generate(&[1, 2, 3], 5).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < 64));
    }

    #[test]
    fn generation_handles_window_overflow() {
        // Prompt at max_seq: generation must slide the window, not error.
        let m = tiny_model(22);
        let prompt: Vec<usize> = (0..32).map(|i| i % 64).collect();
        let out = m.generate(&prompt, 4).unwrap();
        assert_eq!(out.len(), 36);
    }

    #[test]
    fn generation_rejects_bad_prompt() {
        let m = tiny_model(23);
        assert!(m.generate(&[], 3).is_err());
        assert!(m.generate(&[999], 3).is_err());
    }

    #[test]
    fn trained_model_generates_the_synthetic_rule() {
        // End-to-end language modeling: after training on the synthetic
        // stream, greedy generation should follow t -> (3t + 7) mod V.
        let mut m = GptModel::new(
            GptConfig {
                vocab: 32,
                hidden: 32,
                layers: 2,
                heads: 2,
                max_seq: 16,
            },
            31,
        );
        // Fully deterministic stream for a crisp target.
        let mut pile = crate::dataset::SyntheticPile::new(32, 31).with_signal(1.0);
        for _ in 0..220 {
            m.zero_grads();
            let (x, y) = pile.next_sequence(12);
            m.forward_backward(&x, &y).unwrap();
            let grads = m.grads().to_vec();
            for (p, g) in m.params_mut().iter_mut().zip(&grads) {
                *p -= 0.1 * g;
            }
        }
        // Generate from a short prompt that follows the rule.
        let t0 = 5usize;
        let t1 = (t0 * 3 + 7) % 32;
        let out = m.generate(&[t0, t1], 6).unwrap();
        let mut correct = 0;
        for w in out.windows(2) {
            if w[1] == (w[0] * 3 + 7) % 32 {
                correct += 1;
            }
        }
        assert!(
            correct >= out.len() - 3,
            "generation did not learn the rule: {out:?}"
        );
    }

    #[test]
    fn forward_backward_bit_identical_across_thread_counts() {
        // The full training step (embedding → attention → MLP → LM head →
        // backward) must produce bit-identical loss and gradients at every
        // worker count, because parallelism only partitions disjoint
        // output rows and heads.
        let tokens: Vec<usize> = (0..32).map(|i| (i * 5 + 3) % 64).collect();
        let targets: Vec<usize> = (0..32).map(|i| (i * 5 + 8) % 64).collect();
        let run = |threads: usize| {
            tensorlite::pool::with_threads(threads, || {
                let mut m = tiny_model(33);
                m.zero_grads();
                let loss = m.forward_backward(&tokens, &targets).unwrap();
                (loss, m.grads().to_vec())
            })
        };
        let (ref_loss, ref_grads) = run(1);
        for threads in [2usize, 7, 0] {
            let (loss, grads) = run(threads);
            assert_eq!(loss.to_bits(), ref_loss.to_bits(), "threads={threads}");
            assert_eq!(grads, ref_grads, "threads={threads}");
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut m = tiny_model(11);
        let tokens: Vec<usize> = (0..16).map(|i| (i * 3 + 1) % 64).collect();
        let targets: Vec<usize> = (1..17).map(|i| (i * 3 + 1) % 64).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            m.zero_grads();
            let loss = m.forward_backward(&tokens, &targets).unwrap();
            if step == 0 {
                first = loss;
            }
            last = loss;
            let lr = 0.5;
            let grads = m.grads().to_vec();
            for (p, g) in m.params_mut().iter_mut().zip(&grads) {
                *p -= lr * g;
            }
        }
        assert!(
            last < first * 0.5,
            "loss did not decrease: first {first}, last {last}"
        );
    }
}
