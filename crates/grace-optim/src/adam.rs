//! Three Adam implementations with identical numerics and different
//! performance profiles.

use std::fmt;

use tensorlite::counters;
use tensorlite::OpKind;

/// FLOPs per parameter for one Adam element update, counted against
/// [`tensorlite::OpKind::AdamStep`]: the canonical `adam_update_one` does
/// two moment EMAs (3 + 4), two bias corrections (2), and the update
/// itself with decoupled weight decay (3).
pub const ADAM_FLOPS_PER_PARAM: u64 = 12;

/// Reports one optimizer step over `n` parameters to the numeric-plane
/// accounting core.
fn record_adam_step(n: usize) {
    counters::record_op(OpKind::AdamStep, n, n as u64 * ADAM_FLOPS_PER_PARAM);
}

/// Adam hyper-parameters (decoupled weight decay, as in AdamW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Validates hyper-parameter ranges.
    ///
    /// # Panics
    /// Panics if betas are outside `[0, 1)` or `lr`/`eps` are non-positive.
    pub fn validate(&self) {
        assert!(self.lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&self.beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&self.beta2), "beta2 must be in [0, 1)");
        assert!(self.eps > 0.0, "eps must be positive");
        assert!(
            self.weight_decay >= 0.0,
            "weight decay must be non-negative"
        );
    }
}

/// Adam moment buffers for a parameter range.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First moments.
    pub m: Vec<f32>,
    /// Second moments.
    pub v: Vec<f32>,
}

impl AdamState {
    /// Zero-initialized state for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of parameters covered.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }
}

/// An Adam stepper: updates parameters in place given gradients, moments,
/// and the (1-based) global step for bias correction.
///
/// Implementations must be numerically identical; they differ only in
/// execution strategy. The trait is object-safe so engines can select an
/// implementation at runtime.
pub trait AdamStepper: fmt::Debug + Send + Sync {
    /// Human-readable implementation name.
    fn name(&self) -> &'static str;

    /// Performs one Adam step over `params` using `grads`.
    ///
    /// # Panics
    /// Implementations panic if slice lengths disagree or `step == 0`.
    fn step(
        &self,
        cfg: &AdamConfig,
        step: u64,
        params: &mut [f32],
        grads: &[f32],
        state: &mut AdamState,
    );
}

fn check_lengths(params: &[f32], grads: &[f32], state: &AdamState, step: u64) {
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    assert_eq!(params.len(), state.m.len(), "params/moment length mismatch");
    assert_eq!(
        params.len(),
        state.v.len(),
        "params/variance length mismatch"
    );
    assert!(step >= 1, "Adam step counter is 1-based");
}

#[inline(always)]
fn adam_update_one(
    p: &mut f32,
    g: f32,
    m: &mut f32,
    v: &mut f32,
    cfg: &AdamConfig,
    inv_bc1: f32,
    inv_bc2_sqrt: f32,
) {
    // Single canonical element update used by every implementation, so all
    // three produce bit-identical results.
    let m_new = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
    let v_new = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
    *m = m_new;
    *v = v_new;
    let m_hat = m_new * inv_bc1;
    let denom = (v_new).sqrt() * inv_bc2_sqrt + cfg.eps;
    let update = m_hat / denom + cfg.weight_decay * *p;
    *p -= cfg.lr * update;
}

fn bias_corrections(cfg: &AdamConfig, step: u64) -> (f32, f32) {
    let bc1 = 1.0 - cfg.beta1.powi(step as i32);
    let bc2 = 1.0 - cfg.beta2.powi(step as i32);
    (1.0 / bc1, 1.0 / bc2.sqrt())
}

/// Unfused Adam: one full-array pass per sub-expression, reproducing the
/// memory-bandwidth profile of a framework-native CPU optimizer ("PT-CPU").
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveAdam;

impl AdamStepper for NaiveAdam {
    fn name(&self) -> &'static str {
        "pt-cpu"
    }

    fn step(
        &self,
        cfg: &AdamConfig,
        step: u64,
        params: &mut [f32],
        grads: &[f32],
        state: &mut AdamState,
    ) {
        check_lengths(params, grads, state, step);
        record_adam_step(params.len());
        let (inv_bc1, inv_bc2_sqrt) = bias_corrections(cfg, step);
        // Pass 1: first moments.
        for (m, &g) in state.m.iter_mut().zip(grads) {
            *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
        }
        // Pass 2: second moments.
        for (v, &g) in state.v.iter_mut().zip(grads) {
            *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
        }
        // Pass 3: parameter update (reads m and v again from memory).
        for ((p, m), v) in params.iter_mut().zip(&state.m).zip(&state.v) {
            let m_hat = *m * inv_bc1;
            let denom = v.sqrt() * inv_bc2_sqrt + cfg.eps;
            let update = m_hat / denom + cfg.weight_decay * *p;
            *p -= cfg.lr * update;
        }
    }
}

/// Fused single-pass Adam with 4-way unrolling — the DeepSpeed CPU-Adam
/// design, originally built on AVX2/AVX512 fixed-width vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAdam;

impl AdamStepper for CpuAdam {
    fn name(&self) -> &'static str {
        "cpu-adam"
    }

    fn step(
        &self,
        cfg: &AdamConfig,
        step: u64,
        params: &mut [f32],
        grads: &[f32],
        state: &mut AdamState,
    ) {
        check_lengths(params, grads, state, step);
        record_adam_step(params.len());
        let (inv_bc1, inv_bc2_sqrt) = bias_corrections(cfg, step);
        fused_chunk(
            cfg,
            params,
            grads,
            &mut state.m,
            &mut state.v,
            inv_bc1,
            inv_bc2_sqrt,
        );
    }
}

/// Fused Adam over one contiguous chunk, 4-way unrolled so the compiler can
/// keep the accumulators in vector registers.
fn fused_chunk(
    cfg: &AdamConfig,
    params: &mut [f32],
    grads: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    inv_bc1: f32,
    inv_bc2_sqrt: f32,
) {
    let n = params.len();
    let main = n - n % 4;
    let mut i = 0;
    while i < main {
        // Unrolled by 4; each lane is the canonical element update.
        for lane in 0..4 {
            let j = i + lane;
            adam_update_one(
                &mut params[j],
                grads[j],
                &mut m[j],
                &mut v[j],
                cfg,
                inv_bc1,
                inv_bc2_sqrt,
            );
        }
        i += 4;
    }
    for j in main..n {
        adam_update_one(
            &mut params[j],
            grads[j],
            &mut m[j],
            &mut v[j],
            cfg,
            inv_bc1,
            inv_bc2_sqrt,
        );
    }
}

/// Cache-tiled, multi-threaded fused Adam — the portable equivalent of the
/// paper's GraceAdam (SVE vectorization → auto-vectorized fused loops;
/// `svprfm` prefetch + TILE chunking → cache-sized tiles; OpenMP → scoped
/// threads).
///
/// The default thread count comes from the shared numeric-plane pool
/// ([`tensorlite::pool`]), so `SUPEROFFLOAD_THREADS` and
/// [`tensorlite::ParallelConfig`] govern the optimizer and the tensor
/// kernels together.
#[derive(Debug, Clone, Copy)]
pub struct GraceAdam {
    /// Elements per cache tile (default 16 KiB of f32s = 4096 elements).
    pub tile: usize,
    /// Worker threads (default: the shared pool's thread count).
    pub threads: usize,
}

impl Default for GraceAdam {
    fn default() -> Self {
        GraceAdam {
            tile: 4096,
            threads: tensorlite::pool::threads(),
        }
    }
}

impl GraceAdam {
    /// Creates a GraceAdam with explicit tile size and thread count.
    ///
    /// # Panics
    /// Panics if `tile` or `threads` is zero.
    pub fn new(tile: usize, threads: usize) -> Self {
        assert!(tile > 0, "tile must be non-zero");
        assert!(threads > 0, "threads must be non-zero");
        GraceAdam { tile, threads }
    }
}

impl AdamStepper for GraceAdam {
    fn name(&self) -> &'static str {
        "grace-adam"
    }

    fn step(
        &self,
        cfg: &AdamConfig,
        step: u64,
        params: &mut [f32],
        grads: &[f32],
        state: &mut AdamState,
    ) {
        check_lengths(params, grads, state, step);
        record_adam_step(params.len());
        let (inv_bc1, inv_bc2_sqrt) = bias_corrections(cfg, step);
        let n = params.len();
        if n == 0 {
            return;
        }
        let threads = self.threads.min(n.div_ceil(self.tile)).max(1);

        // Partition into `threads` contiguous shards (one covering shard
        // when serial), each processed in cache-sized tiles on the shared
        // numeric-plane pool. Disjoint shards keep the update
        // embarrassingly parallel and bit-identical to the serial order.
        // Always going through the pool — even serially — keeps the
        // op-accounting region count at exactly one per step call, so it is
        // thread-count-invariant (the step journal serializes it).
        let shard = n.div_ceil(threads);
        type Shard<'a> = (&'a mut [f32], &'a [f32], &'a mut [f32], &'a mut [f32]);
        let mut parts: Vec<Shard<'_>> = Vec::with_capacity(threads);
        let mut p_rest = params;
        let mut g_rest = grads;
        let mut m_rest = state.m.as_mut_slice();
        let mut v_rest = state.v.as_mut_slice();
        for _ in 0..threads {
            let take = shard.min(p_rest.len());
            if take == 0 {
                break;
            }
            let (p_s, p_r) = p_rest.split_at_mut(take);
            let (g_s, g_r) = g_rest.split_at(take);
            let (m_s, m_r) = m_rest.split_at_mut(take);
            let (v_s, v_r) = v_rest.split_at_mut(take);
            p_rest = p_r;
            g_rest = g_r;
            m_rest = m_r;
            v_rest = v_r;
            parts.push((p_s, g_s, m_s, v_s));
        }
        let tile = self.tile;
        tensorlite::Pool::new(threads).run_parts(parts, |_, (p_s, g_s, m_s, v_s)| {
            for ((ps, gs), (ms, vs)) in p_s
                .chunks_mut(tile)
                .zip(g_s.chunks(tile))
                .zip(m_s.chunks_mut(tile).zip(v_s.chunks_mut(tile)))
            {
                fused_chunk(cfg, ps, gs, ms, vs, inv_bc1, inv_bc2_sqrt);
            }
        });
    }
}

/// Reference scalar Adam step used by tests as ground truth.
pub fn reference_step(
    cfg: &AdamConfig,
    step: u64,
    params: &mut [f32],
    grads: &[f32],
    state: &mut AdamState,
) {
    check_lengths(params, grads, state, step);
    let (inv_bc1, inv_bc2_sqrt) = bias_corrections(cfg, step);
    for i in 0..params.len() {
        adam_update_one(
            &mut params[i],
            grads[i],
            &mut state.m[i],
            &mut state.v[i],
            cfg,
            inv_bc1,
            inv_bc2_sqrt,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlite::XorShiftRng;

    fn random_problem(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = XorShiftRng::new(seed);
        let params = (0..n).map(|_| rng.normal()).collect();
        let grads = (0..n).map(|_| rng.normal_scaled(0.0, 0.1)).collect();
        (params, grads)
    }

    fn run_stepper(stepper: &dyn AdamStepper, n: usize, steps: u64) -> Vec<f32> {
        let cfg = AdamConfig {
            weight_decay: 0.01,
            ..AdamConfig::default()
        };
        let (mut params, grads) = random_problem(n, 42);
        let mut state = AdamState::new(n);
        for t in 1..=steps {
            stepper.step(&cfg, t, &mut params, &grads, &mut state);
        }
        params
    }

    #[test]
    fn all_implementations_bit_identical() {
        for n in [1usize, 3, 4, 5, 127, 1024, 10_001] {
            let a = run_stepper(&NaiveAdam, n, 5);
            let b = run_stepper(&CpuAdam, n, 5);
            let c = run_stepper(&GraceAdam::new(64, 4), n, 5);
            let d = run_stepper(&GraceAdam::new(1000, 1), n, 5);
            assert_eq!(a, b, "naive vs cpu-adam differ at n={n}");
            assert_eq!(b, c, "cpu-adam vs grace-adam differ at n={n}");
            assert_eq!(c, d, "grace-adam thread counts differ at n={n}");
        }
    }

    #[test]
    fn matches_reference_step() {
        let cfg = AdamConfig::default();
        let (mut p1, g) = random_problem(513, 7);
        let mut p2 = p1.clone();
        let mut s1 = AdamState::new(513);
        let mut s2 = AdamState::new(513);
        for t in 1..=3 {
            reference_step(&cfg, t, &mut p1, &g, &mut s1);
            GraceAdam::default().step(&cfg, t, &mut p2, &g, &mut s2);
        }
        assert_eq!(p1, p2);
        assert_eq!(s1.m, s2.m);
        assert_eq!(s1.v, s2.v);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(x) = 0.5 * ||x||^2; grad = x.
        let cfg = AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        };
        let mut x = vec![5.0f32, -3.0, 2.0];
        let mut state = AdamState::new(3);
        for t in 1..=500 {
            let g = x.clone();
            CpuAdam.step(&cfg, t, &mut x, &g, &mut state);
        }
        assert!(x.iter().all(|v| v.abs() < 0.1), "did not converge: {x:?}");
    }

    #[test]
    fn bias_correction_first_step_matches_closed_form() {
        // After step 1 from zero state with g: m = (1-b1) g, v = (1-b2) g².
        // m_hat = g, v_hat = g², so update = lr * g/(|g| + eps') ≈ lr*sign(g).
        let cfg = AdamConfig {
            lr: 0.1,
            weight_decay: 0.0,
            ..AdamConfig::default()
        };
        let mut p = vec![1.0f32];
        let g = vec![0.5f32];
        let mut s = AdamState::new(1);
        CpuAdam.step(&cfg, 1, &mut p, &g, &mut s);
        assert!((p[0] - (1.0 - 0.1)).abs() < 1e-4, "p = {}", p[0]);
    }

    #[test]
    fn weight_decay_is_decoupled() {
        // With zero gradient, AdamW still decays the weight by lr*wd*p.
        let cfg = AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamConfig::default()
        };
        let mut p = vec![2.0f32];
        let g = vec![0.0f32];
        let mut s = AdamState::new(1);
        CpuAdam.step(&cfg, 1, &mut p, &g, &mut s);
        assert!((p[0] - (2.0 - 0.1 * 0.5 * 2.0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let cfg = AdamConfig::default();
        let mut p = vec![0.0f32; 4];
        let g = vec![0.0f32; 3];
        let mut s = AdamState::new(4);
        CpuAdam.step(&cfg, 1, &mut p, &g, &mut s);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_panics() {
        let cfg = AdamConfig::default();
        let mut p = vec![0.0f32; 1];
        let g = vec![0.0f32; 1];
        let mut s = AdamState::new(1);
        CpuAdam.step(&cfg, 0, &mut p, &g, &mut s);
    }

    #[test]
    fn empty_problem_is_noop() {
        let cfg = AdamConfig::default();
        let mut p: Vec<f32> = vec![];
        let mut s = AdamState::new(0);
        GraceAdam::default().step(&cfg, 1, &mut p, &[], &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn config_validation() {
        AdamConfig::default().validate();
        let bad = AdamConfig {
            beta1: 1.5,
            ..AdamConfig::default()
        };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
    }

    #[test]
    fn default_thread_count_follows_shared_pool() {
        let g = tensorlite::pool::with_threads(3, GraceAdam::default);
        assert_eq!(g.threads, 3);
        let serial = tensorlite::pool::with_threads(1, GraceAdam::default);
        assert_eq!(serial.threads, 1);
    }

    #[test]
    fn stepper_names() {
        assert_eq!(NaiveAdam.name(), "pt-cpu");
        assert_eq!(CpuAdam.name(), "cpu-adam");
        assert_eq!(GraceAdam::default().name(), "grace-adam");
    }

    #[test]
    fn trait_is_object_safe() {
        let steppers: Vec<Box<dyn AdamStepper>> = vec![
            Box::new(NaiveAdam),
            Box::new(CpuAdam),
            Box::new(GraceAdam::default()),
        ];
        assert_eq!(steppers.len(), 3);
    }
}
