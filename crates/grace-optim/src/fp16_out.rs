//! Fused Adam step with FP16 parameter output.
//!
//! Offloading runtimes keep FP32 master parameters on the CPU and ship FP16
//! working copies back to the GPU after each step. Writing the FP16 copy
//! *inside* the optimizer loop (instead of a separate casting sweep) saves
//! one full pass over the parameters — this is part of what CPU-Adam and
//! GraceAdam fuse, and what the paper's Superchip-aware casting analysis
//! (§4.5) weighs against GPU-side casting.

use tensorlite::F16;

use crate::adam::{AdamConfig, AdamState, AdamStepper};

/// Result of a fused step: how many output halves were non-finite (an
/// overflow signal the caller can use instead of a separate scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp16StepReport {
    /// Number of FP16 outputs that were NaN/Inf after the update.
    pub nonfinite_outputs: usize,
}

impl Fp16StepReport {
    /// Whether every emitted FP16 parameter was finite.
    pub fn all_finite(&self) -> bool {
        self.nonfinite_outputs == 0
    }
}

/// Runs `stepper` over the FP32 master parameters and emits the updated
/// FP16 working copy in the same logical operation.
///
/// The FP16 buffer is what an offloading runtime would DMA back to the GPU;
/// `master` stays the source of truth. Numerically this is exactly
/// `stepper.step(...)` followed by a cast — fusing changes performance, not
/// values (verified by tests).
///
/// # Panics
/// Panics if `fp16_out.len() != master.len()` or on the stepper's own
/// length/step preconditions.
pub fn step_with_fp16_out(
    stepper: &dyn AdamStepper,
    cfg: &AdamConfig,
    step: u64,
    master: &mut [f32],
    grads: &[f32],
    state: &mut AdamState,
    fp16_out: &mut [F16],
) -> Fp16StepReport {
    assert_eq!(
        master.len(),
        fp16_out.len(),
        "fp16 output buffer must match master length"
    );
    stepper.step(cfg, step, master, grads, state);
    let mut nonfinite = 0usize;
    for (h, &m) in fp16_out.iter_mut().zip(master.iter()) {
        let v = F16::from_f32(m);
        if !v.is_finite() {
            nonfinite += 1;
        }
        *h = v;
    }
    Fp16StepReport {
        nonfinite_outputs: nonfinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{CpuAdam, GraceAdam};
    use tensorlite::XorShiftRng;

    fn problem(n: usize) -> (Vec<f32>, Vec<f32>, AdamState) {
        let mut rng = XorShiftRng::new(31);
        (
            (0..n).map(|_| rng.normal()).collect(),
            (0..n).map(|_| rng.normal_scaled(0.0, 0.1)).collect(),
            AdamState::new(n),
        )
    }

    #[test]
    fn fused_output_equals_step_then_cast() {
        let cfg = AdamConfig::default();
        let (mut m1, g, mut s1) = problem(1000);
        let mut m2 = m1.clone();
        let mut s2 = s1.clone();

        let mut fused = vec![F16::ZERO; 1000];
        let report = step_with_fp16_out(&CpuAdam, &cfg, 1, &mut m1, &g, &mut s1, &mut fused);
        assert!(report.all_finite());

        CpuAdam.step(&cfg, 1, &mut m2, &g, &mut s2);
        let separate = tensorlite::f32_to_f16_slice(&m2);
        assert_eq!(m1, m2);
        assert_eq!(fused, separate);
    }

    #[test]
    fn detects_overflowing_outputs() {
        let cfg = AdamConfig::default();
        let n = 8;
        let mut master = vec![70000.0f32; n]; // beyond f16 max
        let grads = vec![0.0f32; n];
        let mut state = AdamState::new(n);
        let mut out = vec![F16::ZERO; n];
        let report = step_with_fp16_out(
            &GraceAdam::default(),
            &cfg,
            1,
            &mut master,
            &grads,
            &mut state,
            &mut out,
        );
        assert_eq!(report.nonfinite_outputs, n);
        assert!(!report.all_finite());
        assert!(out.iter().all(|h| h.is_infinite()));
    }

    #[test]
    #[should_panic(expected = "must match master length")]
    fn mismatched_output_buffer_panics() {
        let cfg = AdamConfig::default();
        let (mut m, g, mut s) = problem(10);
        let mut out = vec![F16::ZERO; 9];
        let _ = step_with_fp16_out(&CpuAdam, &cfg, 1, &mut m, &g, &mut s, &mut out);
    }

    #[test]
    fn works_across_steppers_identically() {
        let cfg = AdamConfig::default();
        let (m0, g, s0) = problem(513);
        let mut outs = Vec::new();
        for stepper in [&CpuAdam as &dyn AdamStepper, &GraceAdam::new(64, 3)] {
            let mut m = m0.clone();
            let mut s = s0.clone();
            let mut out = vec![F16::ZERO; 513];
            step_with_fp16_out(stepper, &cfg, 1, &mut m, &g, &mut s, &mut out);
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1]);
    }
}
