//! Global gradient-norm computation and clipping.
//!
//! Gradient clipping requires the *global* L2 norm across every parameter
//! gradient — the synchronization that §4.4 of the paper moves off the
//! critical path. The helpers here are used both by the synchronous
//! reference engine (compute norm, then step) and by the STV engine
//! (speculate, validate the norm in the background, roll back on violation).

/// Global L2 norm across gradient shards, accumulated in `f64`.
pub fn global_grad_norm<'a, I>(shards: I) -> f64
where
    I: IntoIterator<Item = &'a [f32]>,
{
    shards
        .into_iter()
        .map(tensorlite::cast::sum_of_squares)
        .sum::<f64>()
        .sqrt()
}

/// Scale factor that brings a gradient of `norm` within `max_norm`.
///
/// Returns `1.0` when no clipping is needed, so it can be applied
/// unconditionally.
///
/// # Panics
/// Panics if `max_norm` is not strictly positive.
pub fn clip_factor(norm: f64, max_norm: f64) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    if norm <= max_norm || norm == 0.0 {
        1.0
    } else {
        (max_norm / norm) as f32
    }
}

/// Scales a gradient shard in place by `factor` (no-op when `factor == 1`).
pub fn apply_clip(grads: &mut [f32], factor: f32) {
    if factor == 1.0 {
        return;
    }
    for g in grads {
        *g *= factor;
    }
}

/// Whether a gradient norm indicates a clipping violation.
pub fn violates(norm: f64, max_norm: f64) -> bool {
    norm > max_norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_over_shards_equals_norm_over_concat() {
        let a = vec![3.0f32, 0.0];
        let b = vec![0.0f32, 4.0];
        let sharded = global_grad_norm([a.as_slice(), b.as_slice()]);
        let concat = global_grad_norm([[3.0f32, 0.0, 0.0, 4.0].as_slice()]);
        assert_eq!(sharded, concat);
        assert!((sharded - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clip_factor_identity_when_within_bound() {
        assert_eq!(clip_factor(0.5, 1.0), 1.0);
        assert_eq!(clip_factor(1.0, 1.0), 1.0);
        assert_eq!(clip_factor(0.0, 1.0), 1.0);
    }

    #[test]
    fn clip_factor_rescales_to_bound() {
        let f = clip_factor(10.0, 1.0);
        assert!((f - 0.1).abs() < 1e-6);
        let mut g = vec![6.0f32, 8.0];
        let norm = global_grad_norm([g.as_slice()]);
        let f = clip_factor(norm, 5.0);
        apply_clip(&mut g, f);
        let new_norm = global_grad_norm([g.as_slice()]);
        assert!((new_norm - 5.0).abs() < 1e-4);
    }

    #[test]
    fn apply_clip_with_unit_factor_is_noop() {
        let mut g = vec![1.0f32, 2.0];
        apply_clip(&mut g, 1.0);
        assert_eq!(g, vec![1.0, 2.0]);
    }

    #[test]
    fn violates_matches_clip_factor() {
        assert!(violates(2.0, 1.0));
        assert!(!violates(1.0, 1.0));
        assert!(!violates(0.5, 1.0));
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn zero_max_norm_rejected() {
        let _ = clip_factor(1.0, 0.0);
    }

    #[test]
    fn empty_gradients_have_zero_norm() {
        assert_eq!(global_grad_norm(std::iter::empty::<&[f32]>()), 0.0);
        assert_eq!(global_grad_norm([[].as_slice()]), 0.0);
    }
}
