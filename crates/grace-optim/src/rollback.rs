//! In-place rollback for speculative optimizer steps.
//!
//! Speculation-then-validation (§4.4) starts the optimizer step before the
//! global gradient norm and NaN/Inf checks complete. If validation later
//! fails, the update must be reverted exactly — parameters *and* Adam
//! moments — and either skipped (overflow) or re-executed with clipped
//! gradients. [`RollbackGuard`] captures the pre-step state of a parameter
//! range so the revert is bit-exact.

use crate::adam::AdamState;

/// Snapshot of a parameter range (params + Adam moments) taken before a
/// speculative step.
///
/// The guard is deliberately explicit — no `Drop` magic — because the STV
/// engine decides *after* the fact whether to [`RollbackGuard::restore`] or
/// simply drop the guard to commit.
#[derive(Debug, Clone)]
pub struct RollbackGuard {
    offset: usize,
    params: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl RollbackGuard {
    /// Captures `params[offset..offset + len]` and the matching moment
    /// ranges from `state`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds for either buffer.
    pub fn capture(params: &[f32], state: &AdamState, offset: usize, len: usize) -> Self {
        assert!(
            offset + len <= params.len(),
            "rollback range {offset}+{len} exceeds params len {}",
            params.len()
        );
        assert!(
            offset + len <= state.m.len(),
            "rollback range exceeds optimizer state"
        );
        RollbackGuard {
            offset,
            params: params[offset..offset + len].to_vec(),
            m: state.m[offset..offset + len].to_vec(),
            v: state.v[offset..offset + len].to_vec(),
        }
    }

    /// Captures the entire parameter vector.
    pub fn capture_all(params: &[f32], state: &AdamState) -> Self {
        Self::capture(params, state, 0, params.len())
    }

    /// Start of the captured range.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Length of the captured range.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the captured range is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Restores the captured range into `params` and `state`, undoing any
    /// speculative update bit-exactly.
    ///
    /// # Panics
    /// Panics if the buffers have shrunk below the captured range.
    pub fn restore(&self, params: &mut [f32], state: &mut AdamState) {
        let r = self.offset..self.offset + self.params.len();
        params[r.clone()].copy_from_slice(&self.params);
        state.m[r.clone()].copy_from_slice(&self.m);
        state.v[r].copy_from_slice(&self.v);
    }

    /// Heap bytes held by this snapshot (3 copies of the range).
    pub fn snapshot_bytes(&self) -> usize {
        3 * self.params.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{AdamConfig, AdamStepper, CpuAdam};
    use tensorlite::XorShiftRng;

    fn problem(n: usize) -> (Vec<f32>, Vec<f32>, AdamState) {
        let mut rng = XorShiftRng::new(5);
        let p: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let g: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        (p, g, AdamState::new(n))
    }

    #[test]
    fn restore_is_bit_exact() {
        let (mut p, g, mut s) = problem(1000);
        let before_p = p.clone();
        let before_m = s.m.clone();
        let guard = RollbackGuard::capture_all(&p, &s);
        CpuAdam.step(&AdamConfig::default(), 1, &mut p, &g, &mut s);
        assert_ne!(p, before_p, "step should change params");
        guard.restore(&mut p, &mut s);
        assert_eq!(p, before_p);
        assert_eq!(s.m, before_m);
        assert_eq!(s.v, vec![0.0; 1000]);
    }

    #[test]
    fn partial_range_rollback_leaves_rest_untouched() {
        let (mut p, g, mut s) = problem(100);
        let guard = RollbackGuard::capture(&p, &s, 10, 20);
        let before = p.clone();
        CpuAdam.step(&AdamConfig::default(), 1, &mut p, &g, &mut s);
        let stepped = p.clone();
        guard.restore(&mut p, &mut s);
        // Range [10, 30) reverted; everything else keeps the stepped values.
        assert_eq!(&p[10..30], &before[10..30]);
        assert_eq!(&p[..10], &stepped[..10]);
        assert_eq!(&p[30..], &stepped[30..]);
    }

    #[test]
    fn rollback_then_clipped_restep_equals_synchronous_clipped_step() {
        // The STV re-execution path: speculative step, rollback, clip, step
        // again — must equal stepping with clipped gradients directly.
        let cfg = AdamConfig::default();
        let (p0, g, s0) = problem(256);
        let clip = 0.25f32;
        let clipped: Vec<f32> = g.iter().map(|x| x * clip).collect();

        // Path A: synchronous clipped step.
        let mut p_sync = p0.clone();
        let mut s_sync = s0.clone();
        CpuAdam.step(&cfg, 1, &mut p_sync, &clipped, &mut s_sync);

        // Path B: speculate with raw grads, roll back, re-step with clipped.
        let mut p_spec = p0.clone();
        let mut s_spec = s0.clone();
        let guard = RollbackGuard::capture_all(&p_spec, &s_spec);
        CpuAdam.step(&cfg, 1, &mut p_spec, &g, &mut s_spec);
        guard.restore(&mut p_spec, &mut s_spec);
        CpuAdam.step(&cfg, 1, &mut p_spec, &clipped, &mut s_spec);

        assert_eq!(p_sync, p_spec);
        assert_eq!(s_sync.m, s_spec.m);
        assert_eq!(s_sync.v, s_spec.v);
    }

    #[test]
    fn snapshot_bytes_accounting() {
        let (p, _, s) = problem(100);
        let guard = RollbackGuard::capture(&p, &s, 0, 50);
        assert_eq!(guard.snapshot_bytes(), 3 * 50 * 4);
        assert_eq!(guard.len(), 50);
        assert!(!guard.is_empty());
        assert_eq!(guard.offset(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds params len")]
    fn out_of_range_capture_panics() {
        let (p, _, s) = problem(10);
        let _ = RollbackGuard::capture(&p, &s, 5, 10);
    }
}
