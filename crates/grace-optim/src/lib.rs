//! CPU-optimized optimizers for the SuperOffload reproduction.
//!
//! The paper's §4.6 introduces **GraceAdam**, an Adam implementation tuned
//! for the Grace ARM CPU (SVE vectorization, cache-tiled memory access,
//! OpenMP threading). ARM SVE intrinsics are not portable, so this crate
//! implements the same three-tier design space with portable equivalents and
//! *identical numerics*:
//!
//! - [`NaiveAdam`]: multiple full-array passes, one per Adam sub-expression —
//!   the memory-traffic profile of an unfused framework optimizer (the
//!   paper's "PT-CPU" baseline).
//! - [`CpuAdam`]: a single fused pass with manual 4-way unrolling — the
//!   DeepSpeed CPU-Adam design (originally AVX2/AVX512).
//! - [`GraceAdam`]: fused, cache-tiled chunks dispatched across threads
//!   (`std::thread::scope`), mirroring GraceAdam's tiling + dual-level
//!   parallelism.
//!
//! All three produce **bit-identical** parameter updates (verified by tests),
//! so the choice is purely a performance decision — exactly the property the
//! paper relies on when swapping optimizers.
//!
//! The crate also provides mixed-precision utilities ([`mixed_precision`]),
//! global gradient clipping ([`clip`]), and the in-place rollback guard
//! ([`rollback`]) that speculation-then-validation requires.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adam;
pub mod clip;
pub mod fp16_out;
pub mod mixed_precision;
pub mod rollback;

pub use adam::{AdamConfig, AdamState, AdamStepper, CpuAdam, GraceAdam, NaiveAdam};
pub use clip::{clip_factor, global_grad_norm};
pub use fp16_out::step_with_fp16_out;
pub use mixed_precision::{LossScaler, ScaleEvent};
pub use rollback::RollbackGuard;
