//! Dynamic loss scaling for mixed-precision training.
//!
//! FP16 gradients underflow easily; frameworks multiply the loss by a scale
//! factor before backward and divide gradients by it before the optimizer
//! step. On overflow (NaN/Inf in gradients) the step is skipped and the
//! scale halved; after a window of clean steps the scale doubles. This is
//! the behaviour the STV validator (§4.4) must detect and roll back.

use std::fmt;

use tensorlite::cast::has_nonfinite;

/// What one [`LossScaler::update_with`] call did to the scale — the
/// per-step loss-scale event the training journal records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScaleEvent {
    /// Clean step, scale unchanged.
    #[default]
    Stable,
    /// Overflow detected: the scale backed off (and the step is skipped).
    BackedOff,
    /// The growth interval elapsed: the scale grew.
    Grew,
}

impl ScaleEvent {
    /// Stable kebab-case name used in journal records.
    pub fn name(self) -> &'static str {
        match self {
            ScaleEvent::Stable => "stable",
            ScaleEvent::BackedOff => "backed-off",
            ScaleEvent::Grew => "grew",
        }
    }
}

impl fmt::Display for ScaleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dynamic loss scaler with the standard grow/backoff policy.
#[derive(Debug, Clone, PartialEq)]
pub struct LossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    overflows: u64,
}

impl Default for LossScaler {
    fn default() -> Self {
        LossScaler::new(65536.0)
    }
}

impl LossScaler {
    /// Creates a scaler with an initial scale.
    ///
    /// # Panics
    /// Panics if `initial_scale` is not strictly positive.
    pub fn new(initial_scale: f32) -> Self {
        assert!(initial_scale > 0.0, "scale must be positive");
        LossScaler {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
            overflows: 0,
        }
    }

    /// Current scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Clean steps since the last growth or overflow (checkpointing needs
    /// this to resume the growth schedule exactly).
    pub fn good_steps(&self) -> u32 {
        self.good_steps
    }

    /// Reconstructs a scaler from checkpointed state.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive.
    pub fn from_state(scale: f32, good_steps: u32, overflows: u64) -> Self {
        let mut s = LossScaler::new(scale);
        s.good_steps = good_steps;
        s.overflows = overflows;
        s
    }

    /// Number of overflow events seen.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Multiplies a loss (or gradient) by the scale.
    pub fn scale_value(&self, loss: f32) -> f32 {
        loss * self.scale
    }

    /// Unscales gradients in place (divide by scale).
    pub fn unscale(&self, grads: &mut [f32]) {
        let inv = 1.0 / self.scale;
        for g in grads {
            *g *= inv;
        }
    }

    /// Checks gradients for overflow and updates the scale; returns `true`
    /// if the step must be skipped.
    pub fn update(&mut self, grads: &[f32]) -> bool {
        let overflow = has_nonfinite(grads);
        self.update_with(overflow);
        overflow
    }

    /// Updates the scale from an externally detected overflow flag (used by
    /// the STV validator, which scans gradients on another thread),
    /// returning what happened to the scale.
    pub fn update_with(&mut self, overflow: bool) -> ScaleEvent {
        if overflow {
            self.scale *= self.backoff_factor;
            self.scale = self.scale.max(1.0);
            self.good_steps = 0;
            self.overflows += 1;
            ScaleEvent::BackedOff
        } else {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale *= self.growth_factor;
                self.good_steps = 0;
                ScaleEvent::Grew
            } else {
                ScaleEvent::Stable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_unscale_roundtrip() {
        let s = LossScaler::new(1024.0);
        assert_eq!(s.scale_value(2.0), 2048.0);
        let mut g = vec![1024.0f32, 2048.0];
        s.unscale(&mut g);
        assert_eq!(g, vec![1.0, 2.0]);
    }

    #[test]
    fn overflow_halves_scale_and_skips() {
        let mut s = LossScaler::new(1024.0);
        let skipped = s.update(&[f32::INFINITY]);
        assert!(skipped);
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.overflow_count(), 1);
    }

    #[test]
    fn clean_steps_grow_scale_after_interval() {
        let mut s = LossScaler::new(8.0);
        for _ in 0..1999 {
            assert!(!s.update(&[1.0]));
            assert_eq!(s.scale(), 8.0);
        }
        s.update(&[1.0]);
        assert_eq!(s.scale(), 16.0);
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut s = LossScaler::new(1.0);
        for _ in 0..10 {
            s.update(&[f32::NAN]);
        }
        assert_eq!(s.scale(), 1.0);
        assert_eq!(s.overflow_count(), 10);
    }

    #[test]
    fn state_roundtrip_resumes_schedule() {
        let mut a = LossScaler::new(256.0);
        for _ in 0..1500 {
            a.update_with(false);
        }
        a.update_with(true);
        let b = LossScaler::from_state(a.scale(), a.good_steps(), a.overflow_count());
        assert_eq!(a, b);
    }

    #[test]
    fn external_overflow_flag_equivalent() {
        let mut a = LossScaler::new(64.0);
        let mut b = LossScaler::new(64.0);
        a.update(&[f32::NAN]);
        assert_eq!(b.update_with(true), ScaleEvent::BackedOff);
        assert_eq!(a, b);
    }

    #[test]
    fn update_reports_scale_events() {
        let mut s = LossScaler::new(8.0);
        for _ in 0..1999 {
            assert_eq!(s.update_with(false), ScaleEvent::Stable);
        }
        assert_eq!(s.update_with(false), ScaleEvent::Grew);
        assert_eq!(s.scale(), 16.0);
        assert_eq!(s.update_with(true), ScaleEvent::BackedOff);
        assert_eq!(s.scale(), 8.0);
        assert_eq!(ScaleEvent::Grew.to_string(), "grew");
        assert_eq!(ScaleEvent::default(), ScaleEvent::Stable);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn nonpositive_scale_rejected() {
        let _ = LossScaler::new(0.0);
    }
}
