//! Property-based tests of optimizer numerics, clipping, and rollback.

use grace_optim::adam::{
    reference_step, AdamConfig, AdamState, AdamStepper, CpuAdam, GraceAdam, NaiveAdam,
};
use grace_optim::clip::{apply_clip, clip_factor, global_grad_norm};
use grace_optim::mixed_precision::LossScaler;
use grace_optim::rollback::RollbackGuard;
use proptest::prelude::*;

fn arb_problem(max_n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..max_n).prop_flat_map(|n| {
        (
            prop::collection::vec(-5.0f32..5.0, n),
            prop::collection::vec(-1.0f32..1.0, n),
        )
    })
}

proptest! {
    /// All three Adam implementations (and any tile/thread split) are
    /// bit-identical to the scalar reference.
    #[test]
    fn steppers_bit_identical((p0, g) in arb_problem(2000),
                              tile in 1usize..300, threads in 1usize..8, step in 1u64..20) {
        let cfg = AdamConfig { weight_decay: 0.01, ..AdamConfig::default() };
        let n = p0.len();

        let mut p_ref = p0.clone();
        let mut s_ref = AdamState::new(n);
        reference_step(&cfg, step, &mut p_ref, &g, &mut s_ref);

        for stepper in [&NaiveAdam as &dyn AdamStepper, &CpuAdam, &GraceAdam::new(tile, threads)] {
            let mut p = p0.clone();
            let mut s = AdamState::new(n);
            stepper.step(&cfg, step, &mut p, &g, &mut s);
            prop_assert_eq!(&p, &p_ref, "{} params differ", stepper.name());
            prop_assert_eq!(&s.m, &s_ref.m, "{} m differ", stepper.name());
            prop_assert_eq!(&s.v, &s_ref.v, "{} v differ", stepper.name());
        }
    }

    /// Adam updates are bounded: |Δp| <= lr * (1/(1-beta1) + wd*|p|)-ish.
    /// We check the practical bound |Δp| <= 3 * lr * (1 + wd * |p|).
    #[test]
    fn update_magnitude_bounded((p0, g) in arb_problem(500)) {
        let cfg = AdamConfig::default();
        let mut p = p0.clone();
        let mut s = AdamState::new(p.len());
        CpuAdam.step(&cfg, 1, &mut p, &g, &mut s);
        for (before, after) in p0.iter().zip(&p) {
            let delta = (after - before).abs();
            prop_assert!(delta <= 3.0 * cfg.lr * (1.0 + before.abs()),
                "delta {delta} too large (before {before})");
        }
    }

    /// Second moments are always non-negative.
    #[test]
    fn second_moments_nonnegative((p0, g) in arb_problem(500), steps in 1u64..10) {
        let cfg = AdamConfig::default();
        let mut p = p0;
        let mut s = AdamState::new(p.len());
        for t in 1..=steps {
            CpuAdam.step(&cfg, t, &mut p, &g, &mut s);
        }
        prop_assert!(s.v.iter().all(|&v| v >= 0.0));
    }

    /// Clipping brings any gradient within the bound (or leaves it alone).
    #[test]
    fn clipping_enforces_bound(g in prop::collection::vec(-100.0f32..100.0, 1..500),
                               max_norm in 0.1f64..50.0) {
        let norm = global_grad_norm([g.as_slice()]);
        let f = clip_factor(norm, max_norm);
        let mut clipped = g.clone();
        apply_clip(&mut clipped, f);
        let new_norm = global_grad_norm([clipped.as_slice()]);
        prop_assert!(new_norm <= max_norm * 1.0001, "norm {new_norm} > {max_norm}");
        if norm <= max_norm {
            prop_assert_eq!(clipped, g, "should be untouched when within bound");
        }
    }

    /// Sharded norm equals whole-vector norm regardless of the split point.
    #[test]
    fn norm_is_shard_invariant(g in prop::collection::vec(-10.0f32..10.0, 2..200),
                               split_frac in 0.0f64..1.0) {
        let split = ((g.len() as f64 * split_frac) as usize).min(g.len());
        let whole = global_grad_norm([g.as_slice()]);
        let parts = global_grad_norm([&g[..split], &g[split..]]);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// Rollback after any speculative step restores state bit-exactly.
    #[test]
    fn rollback_always_exact((p0, g) in arb_problem(1000), step in 1u64..5) {
        let cfg = AdamConfig::default();
        let mut p = p0.clone();
        let mut s = AdamState::new(p.len());
        // Pre-warm one step so moments are non-trivial.
        CpuAdam.step(&cfg, step, &mut p, &g, &mut s);
        let p_before = p.clone();
        let m_before = s.m.clone();
        let v_before = s.v.clone();

        let guard = RollbackGuard::capture_all(&p, &s);
        CpuAdam.step(&cfg, step + 1, &mut p, &g, &mut s);
        guard.restore(&mut p, &mut s);
        prop_assert_eq!(p, p_before);
        prop_assert_eq!(s.m, m_before);
        prop_assert_eq!(s.v, v_before);
    }

    /// The loss scaler never reaches a non-positive or non-finite scale.
    #[test]
    fn scaler_scale_stays_valid(events in prop::collection::vec(any::<bool>(), 0..3000)) {
        let mut s = LossScaler::default();
        for overflow in events {
            s.update_with(overflow);
            prop_assert!(s.scale() >= 1.0);
            prop_assert!(s.scale().is_finite());
        }
    }
}
