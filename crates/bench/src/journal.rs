//! The `repro -- journal` subcommand: run a short **real** training loop
//! with the step journal enabled and emit the full observability bundle:
//!
//! - `journal.jsonl` — the versioned `superoffload.journal/v1` record
//!   stream (deterministic: byte-identical across reruns and thread
//!   counts; see `superoffload/tests/journal.rs`),
//! - `journal_timing.json` — the wall-clock sidecar (per-step phase
//!   timings, tokens/sec, measured MFU). Deliberately a separate file so
//!   host-dependent numbers never leak into the deterministic artifact,
//! - `journal_snapshot.json` — a `superchip.metrics/v1` snapshot of the
//!   journal, joinable with the simulator plane's profiles,
//! - `journal_dashboard.html` — a self-contained dashboard (inline SVG,
//!   no external assets) with loss / grad-norm / MFU charts, a per-step
//!   outcome strip, and the full record table.

use std::fmt::Write as _;

use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superchip_sim::telemetry::validate_json;
use superoffload::trainer::{JournalConfig, StepJournal, Trainer, JOURNAL_SCHEMA};

/// Default step count for `repro -- journal`.
pub const DEFAULT_STEPS: u64 = 24;
/// Default data/model seed for `repro -- journal` (and `realbench`).
pub const DEFAULT_SEED: u64 = 42;

/// Parsed flags for the journal subcommand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalArgs {
    /// Training steps to run.
    pub steps: u64,
    /// Model-init and data seed.
    pub seed: u64,
    /// Peak-FLOPS denominator for measured MFU.
    pub peak_flops: f64,
}

impl Default for JournalArgs {
    fn default() -> Self {
        JournalArgs {
            steps: DEFAULT_STEPS,
            seed: DEFAULT_SEED,
            peak_flops: JournalConfig::default().peak_flops,
        }
    }
}

/// Pulls `--<name> <value>` out of `args`, parsing the value with `parse`.
///
/// Returns `Ok(None)` when the flag is absent, an error message when the
/// flag is present without a valid value.
pub fn parse_flag<T>(
    args: &[String],
    name: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    let flag = format!("--{name}");
    match args.iter().position(|a| *a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| parse(v))
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value, e.g. `{flag} 8`")),
    }
}

impl JournalArgs {
    /// Parses `[--steps N] [--seed N] [--peak-flops F]` (any order).
    ///
    /// # Errors
    /// A CLI-ready message on a malformed or out-of-range value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = JournalArgs::default();
        if let Some(steps) = parse_flag(args, "steps", |v| v.parse::<u64>().ok())? {
            if steps == 0 {
                return Err("--steps must be at least 1".into());
            }
            out.steps = steps;
        }
        if let Some(seed) = parse_flag(args, "seed", |v| v.parse::<u64>().ok())? {
            out.seed = seed;
        }
        if let Some(pf) = parse_flag(args, "peak-flops", |v| v.parse::<f64>().ok())? {
            if !(pf.is_finite() && pf > 0.0) {
                return Err("--peak-flops must be a positive finite number".into());
            }
            out.peak_flops = pf;
        }
        Ok(out)
    }
}

/// The model the journal run trains: the Fig. 14 miniature GPT, whose
/// deliberately high initial loss scale makes the warm-up rollbacks show
/// up in the outcome strip.
fn journal_model(seed: u64) -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 64,
            hidden: 32,
            layers: 2,
            heads: 2,
            max_seq: 32,
        },
        seed,
    )
}

/// Runs the journaled training loop and returns the trainer (journal
/// attached) for rendering.
///
/// # Errors
/// A CLI-ready message if a training step fails.
pub fn journaled_run(args: JournalArgs) -> Result<Trainer, String> {
    let mut b = Trainer::new(journal_model(args.seed));
    b.learning_rate(3e-3)
        .max_grad_norm(6.0)
        .initial_loss_scale(4_194_304.0)
        .journal(JournalConfig {
            peak_flops: args.peak_flops,
        });
    let mut trainer = b.build();
    let mut pile = SyntheticPile::new(64, args.seed);
    trainer
        .run(args.steps, || pile.next_batch(2, 24))
        .map_err(|e| format!("training step failed: {e}"))?;
    Ok(trainer)
}

/// File names written by `repro -- journal`, in emit order:
/// JSONL records, timing sidecar, metrics snapshot, HTML dashboard.
pub const JOURNAL_PATHS: [&str; 4] = [
    "journal.jsonl",
    "journal_timing.json",
    "journal_snapshot.json",
    "journal_dashboard.html",
];

/// Entry point for `repro -- journal`: trains, validates, writes the four
/// artifacts, and prints the terminal summary table.
///
/// # Errors
/// A CLI-ready message on bad flags, a failed step, invalid generated
/// JSON, or an I/O failure.
pub fn run(args: &[String]) -> Result<(), String> {
    let parsed = JournalArgs::parse(args)?;
    let trainer = journaled_run(parsed)?;
    let journal = trainer.journal().expect("journal was enabled");

    let jsonl = journal.to_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        validate_json(line).map_err(|e| format!("journal.jsonl line {}: {e}", i + 1))?;
    }
    let timing = journal.timing_json();
    let snapshot = journal.snapshot_json(&[
        ("seed", parsed.seed.to_string()),
        ("steps", parsed.steps.to_string()),
    ]);
    for (what, body) in [("timing", &timing), ("snapshot", &snapshot)] {
        validate_json(body).map_err(|e| format!("generated {what} JSON is invalid: {e}"))?;
    }
    let html = dashboard_html(journal, parsed.seed);

    print_summary(journal, parsed);
    let [jsonl_path, timing_path, snapshot_path, html_path] = JOURNAL_PATHS;
    for (path, body) in [
        (jsonl_path, &jsonl),
        (timing_path, &timing),
        (snapshot_path, &snapshot),
        (html_path, &html),
    ] {
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("  wrote {path}");
    }
    Ok(())
}

/// Prints the per-step table and the run summary to the terminal.
pub fn print_summary(journal: &StepJournal, args: JournalArgs) {
    println!(
        "# Step journal ({JOURNAL_SCHEMA}) — {} steps, seed {}",
        args.steps, args.seed
    );
    println!(
        "{:>5} {:>8} {:>8} {:>9} {:>12} {:>7} {:>10} {:>9} {:>7}",
        "step", "outcome", "loss", "grad-norm", "loss-scale", "tokens", "GFLOP", "tok/s", "MFU"
    );
    for (r, t) in journal.records().iter().zip(journal.timings()) {
        println!(
            "{:>5} {:>8} {:>8.4} {:>9} {:>12} {:>7} {:>10.3} {:>9.0} {:>6.2}%",
            r.step,
            r.outcome,
            r.loss,
            r.grad_norm
                .map_or_else(|| "-".into(), |g| format!("{g:.3}")),
            r.loss_scale,
            r.tokens,
            r.counters.total_flops() as f64 / 1e9,
            t.tokens_per_sec,
            t.mfu * 100.0
        );
    }
    let s = journal.summary();
    println!(
        "applied {} / clipped {} / skipped {}; scale backoffs {}, growths {}",
        s.applied, s.clipped, s.skipped, s.scale_backoffs, s.scale_growths
    );
    println!(
        "totals: {} tokens, {:.3} GFLOP, {:.1} MiB allocated, {} pool regions",
        s.tokens,
        s.flops as f64 / 1e9,
        s.allocated_bytes as f64 / (1 << 20) as f64,
        s.pool_regions
    );
    println!(
        "wall-clock (this host, not in the journal): {:.0} tokens/sec, measured MFU {:.2}% \
         of {:.2e} peak FLOPS",
        journal.mean_tokens_per_sec(),
        journal.mean_mfu() * 100.0,
        journal.config().peak_flops
    );
}

// ---------------------------------------------------------------------------
// Dashboard rendering (self-contained HTML, inline SVG, no external assets)
// ---------------------------------------------------------------------------

/// Compact value formatting for axis ticks and tooltips.
fn fmt_short(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// One tile of the KPI row.
fn stat_tile(label: &str, value: &str, detail: &str) -> String {
    format!(
        "<div class=\"tile\"><div class=\"tile-label\">{label}</div>\
         <div class=\"tile-value\">{value}</div>\
         <div class=\"tile-detail\">{detail}</div></div>\n"
    )
}

/// Plot geometry shared by the line charts.
const CHART_W: f64 = 640.0;
const CHART_H: f64 = 180.0;
const MARGIN_L: f64 = 52.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 10.0;
const MARGIN_B: f64 = 26.0;

/// A single-series line chart over `(step, value)` points. `None` values
/// (a skipped step's grad-norm) break the line, leaving an honest gap.
/// Returns the chart card (`<section>`), with hover metadata for the
/// crosshair layer in `data-points`.
fn line_chart(
    id: &str,
    title: &str,
    note: &str,
    unit: &str,
    points: &[(u64, Option<f64>)],
) -> String {
    let xs: Vec<u64> = points.iter().map(|&(s, _)| s).collect();
    let ys: Vec<f64> = points.iter().filter_map(|&(_, v)| v).collect();
    if xs.is_empty() || ys.is_empty() {
        return String::new();
    }
    let (x_min, x_max) = (*xs.first().unwrap() as f64, *xs.last().unwrap() as f64);
    let mut y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (y_max - y_min).abs() < 1e-12 {
        // Flat series: open a symmetric band so the line sits mid-plot.
        let pad = if y_max.abs() < 1e-12 {
            1.0
        } else {
            y_max.abs() * 0.1
        };
        y_min -= pad;
        y_max += pad;
    } else {
        let pad = (y_max - y_min) * 0.08;
        y_min -= pad;
        y_max += pad;
    }
    let x_span = (x_max - x_min).max(1.0);
    let px = |s: f64| MARGIN_L + (s - x_min) / x_span * (CHART_W - MARGIN_L - MARGIN_R);
    let py = |v: f64| MARGIN_T + (y_max - v) / (y_max - y_min) * (CHART_H - MARGIN_T - MARGIN_B);

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" role=\"img\" aria-label=\"{title}\" \
         preserveAspectRatio=\"xMidYMid meet\">"
    );
    // Hairline gridlines + tick labels (4 bands).
    for i in 0..=3 {
        let v = y_min + (y_max - y_min) * i as f64 / 3.0;
        let y = py(v);
        let _ = write!(
            svg,
            "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" class=\"grid\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            CHART_W - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.5,
            fmt_short(v)
        );
    }
    // X-axis baseline + first/last step labels.
    let base_y = CHART_H - MARGIN_B;
    let _ = write!(
        svg,
        "<line x1=\"{MARGIN_L}\" y1=\"{base_y}\" x2=\"{:.1}\" y2=\"{base_y}\" class=\"axis\"/>\
         <text x=\"{MARGIN_L}\" y=\"{:.1}\" class=\"tick\">step {}</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">step {}</text>",
        CHART_W - MARGIN_R,
        CHART_H - 8.0,
        xs.first().unwrap(),
        CHART_W - MARGIN_R,
        CHART_H - 8.0,
        xs.last().unwrap()
    );
    // The series: one path, broken at gaps; 2px round-cap line.
    let mut d = String::new();
    let mut pen_down = false;
    for &(s, v) in points {
        match v {
            Some(v) => {
                let cmd = if pen_down { 'L' } else { 'M' };
                let _ = write!(d, "{cmd}{:.1} {:.1} ", px(s as f64), py(v));
                pen_down = true;
            }
            None => pen_down = false,
        }
    }
    let _ = write!(svg, "<path d=\"{}\" class=\"series\"/>", d.trim_end());
    // End dot: >=8px marker with a 2px surface ring.
    if let Some(&(s, Some(v))) = points.iter().rev().find(|(_, v)| v.is_some()) {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" class=\"end-dot\"/>",
            px(s as f64),
            py(v)
        );
    }
    // Crosshair + hover dot, driven by the script below.
    let _ = write!(
        svg,
        "<line class=\"crosshair\" y1=\"{MARGIN_T}\" y2=\"{base_y}\" hidden/>\
         <circle class=\"hover-dot\" r=\"4\" hidden/></svg>"
    );

    // Hover metadata: pixel position + display strings per point.
    let mut data = String::from("[");
    for (i, &(s, v)) in points.iter().enumerate() {
        if i > 0 {
            data.push(',');
        }
        match v {
            Some(v) => {
                let _ = write!(
                    data,
                    "[{:.1},{:.1},{s},\"{}\"]",
                    px(s as f64),
                    py(v),
                    fmt_short(v)
                );
            }
            None => {
                let _ = write!(data, "[{:.1},null,{s},\"\u{2014}\"]", px(s as f64));
            }
        }
    }
    data.push(']');

    let note_html = if note.is_empty() {
        String::new()
    } else {
        format!("<p class=\"note\">{note}</p>")
    };
    format!(
        "<section class=\"card chart\" id=\"{id}\" data-points='{data}' data-unit=\"{unit}\">\
         <h2>{title}</h2>{note_html}{svg}<div class=\"tooltip\" hidden></div></section>\n"
    )
}

/// The per-step outcome strip: one glyph cell per step, status-colored,
/// never color-alone (letter glyph + text legend + the record table).
fn outcome_strip(journal: &StepJournal) -> String {
    let mut cells = String::new();
    for r in journal.records() {
        let (class, glyph) = match r.outcome {
            "applied" => ("ok", "A"),
            "clipped" => ("warn", "C"),
            _ => ("crit", "S"),
        };
        let _ = write!(
            cells,
            "<span class=\"cell {class}\" tabindex=\"0\" \
             title=\"step {}: {} (loss {:.4}, scale event {})\">{glyph}</span>",
            r.step,
            r.outcome,
            r.loss,
            r.scale_event.name()
        );
    }
    format!(
        "<section class=\"card\"><h2>Step outcomes</h2>\
         <div class=\"strip\">{cells}</div>\
         <div class=\"legend\">\
         <span><span class=\"key ok\">A</span> applied</span>\
         <span><span class=\"key warn\">C</span> clipped (grad-norm)</span>\
         <span><span class=\"key crit\">S</span> skipped (overflow rollback)</span>\
         </div></section>\n"
    )
}

/// The full record table (the non-hover home of every plotted value).
fn record_table(journal: &StepJournal) -> String {
    let mut rows = String::new();
    for (r, t) in journal.records().iter().zip(journal.timings()) {
        let _ = write!(
            rows,
            "<tr><td>{}</td><td>{}</td><td>{:.4}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{:.0}</td><td>{:.2}%</td></tr>",
            r.step,
            r.outcome,
            r.loss,
            r.grad_norm
                .map_or_else(|| "\u{2014}".into(), |g| format!("{g:.3}")),
            r.loss_scale,
            r.scale_event.name(),
            r.tokens,
            fmt_short(r.counters.total_flops() as f64),
            t.tokens_per_sec,
            t.mfu * 100.0
        );
    }
    format!(
        "<section class=\"card\"><h2>Per-step records</h2>\
         <div class=\"table-wrap\"><table><thead><tr>\
         <th>step</th><th>outcome</th><th>loss</th><th>grad-norm</th><th>loss scale</th>\
         <th>scale event</th><th>tokens</th><th>FLOP</th><th>tok/s</th><th>MFU</th>\
         </tr></thead><tbody>{rows}</tbody></table></div></section>\n"
    )
}

/// Renders the self-contained dashboard. Everything inline: styles, SVG,
/// and the small hover script — no external assets, works from `file://`.
pub fn dashboard_html(journal: &StepJournal, seed: u64) -> String {
    let s = journal.summary();
    let records = journal.records();
    let timings = journal.timings();
    let final_loss = records.last().map_or(f32::NAN, |r| r.loss);
    let final_scale = records.last().map_or(0.0, |r| r.loss_scale);

    let loss: Vec<(u64, Option<f64>)> = records
        .iter()
        .map(|r| (r.step, r.loss.is_finite().then(|| f64::from(r.loss))))
        .collect();
    let grad: Vec<(u64, Option<f64>)> = records.iter().map(|r| (r.step, r.grad_norm)).collect();
    let mfu: Vec<(u64, Option<f64>)> = timings
        .iter()
        .map(|t| (t.step, Some(t.mfu * 100.0)))
        .collect();

    let kpis = [
        stat_tile("Steps", &s.steps.to_string(), &format!("seed {seed}")),
        stat_tile(
            "Final loss",
            &format!("{final_loss:.4}"),
            &format!("{} applied", s.applied),
        ),
        stat_tile(
            "Tokens / sec",
            &fmt_short(journal.mean_tokens_per_sec()),
            "wall-clock mean",
        ),
        stat_tile(
            "Measured MFU",
            &format!("{:.2}%", journal.mean_mfu() * 100.0),
            &format!("of {:.0e} FLOPS", journal.config().peak_flops),
        ),
        stat_tile(
            "Rollbacks",
            &format!("{}", s.clipped + s.skipped),
            &format!("{} clipped, {} skipped", s.clipped, s.skipped),
        ),
        stat_tile(
            "Final loss scale",
            &fmt_short(f64::from(final_scale)),
            &format!("{} backoffs, {} growths", s.scale_backoffs, s.scale_growths),
        ),
    ]
    .concat();

    let charts = [
        line_chart("loss", "Training loss", "", "loss", &loss),
        line_chart(
            "grad-norm",
            "Gradient norm",
            "Gaps are skipped steps: an FP16 overflow rolls the step back before \
             the norm exists.",
            "grad-norm",
            &grad,
        ),
        line_chart(
            "mfu",
            "Measured MFU",
            "Wall-clock diagnostic from the timing sidecar \u{2014} host-dependent, \
             never part of the deterministic journal.",
            "% MFU",
            &mfu,
        ),
    ]
    .concat();

    format!(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>Training journal \u{2014} {JOURNAL_SCHEMA}</title>\n<style>{css}</style>\n\
         </head>\n<body>\n<div class=\"viz-root\">\n\
         <header><h1>Training journal</h1>\
         <p class=\"sub\">{JOURNAL_SCHEMA} \u{00b7} {steps} steps \u{00b7} seed {seed} \u{00b7} \
         {tokens} tokens \u{00b7} {flops} FLOP</p></header>\n\
         <section class=\"kpis\">{kpis}</section>\n\
         {charts}{strip}{table}\
         <footer class=\"note\">Generated by <code>repro -- journal</code>. The JSONL \
         artifact is deterministic; this page and the timing sidecar carry the \
         host-dependent measurements.</footer>\n\
         </div>\n<script>{js}</script>\n</body>\n</html>\n",
        css = DASHBOARD_CSS,
        steps = s.steps,
        tokens = s.tokens,
        flops = fmt_short(s.flops as f64),
        kpis = kpis,
        charts = charts,
        strip = outcome_strip(journal),
        table = record_table(journal),
        js = HOVER_JS,
    )
}

/// Dashboard styles: role-named custom properties, dark values selected
/// (not flipped) under both the OS media query and an explicit
/// `data-theme` stamp.
const DASHBOARD_CSS: &str = r#"
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --on-warning: #0b0b0b; --on-status: #ffffff;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
}
html, body { margin: 0; }
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  min-height: 100vh; padding: 24px;
  display: flex; flex-direction: column; gap: 16px;
  max-width: 760px; margin: 0 auto; box-sizing: border-box;
}
header h1 { font-size: 22px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); font-size: 13px; margin: 0; }
.kpis { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); gap: 12px; }
.tile, .card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px;
}
.tile-label { font-size: 12px; color: var(--text-secondary); }
.tile-value { font-size: 28px; margin: 2px 0; }
.tile-detail { font-size: 12px; color: var(--muted); }
.card { position: relative; }
.card h2 { font-size: 14px; margin: 0 0 8px; }
.note { font-size: 12px; color: var(--muted); margin: 0 0 8px; }
svg { display: block; width: 100%; height: auto; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--baseline); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px; font-variant-numeric: tabular-nums; }
.series { fill: none; stroke: var(--series-1); stroke-width: 2;
          stroke-linecap: round; stroke-linejoin: round; }
.end-dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.crosshair { stroke: var(--baseline); stroke-width: 1; }
.hover-dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.tooltip {
  position: absolute; pointer-events: none; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: 6px 10px;
  font-size: 12px; box-shadow: 0 2px 8px rgba(0,0,0,0.12); white-space: nowrap;
}
.tooltip strong { font-size: 14px; }
.tooltip .tt-label { color: var(--text-secondary); }
.strip { display: flex; flex-wrap: wrap; gap: 2px; }
.cell, .key {
  display: inline-flex; align-items: center; justify-content: center;
  width: 18px; height: 22px; border-radius: 3px;
  font-size: 11px; font-weight: 600; color: var(--on-status);
}
.cell { cursor: default; }
.ok { background: var(--good); }
.warn { background: var(--warning); color: var(--on-warning); }
.crit { background: var(--critical); }
.legend { display: flex; gap: 16px; margin-top: 10px; font-size: 12px;
          color: var(--text-secondary); flex-wrap: wrap; }
.legend > span { display: inline-flex; align-items: center; gap: 6px; }
.key { width: 16px; height: 18px; }
.table-wrap { overflow-x: auto; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th, td { text-align: right; padding: 4px 8px; font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600;
     border-bottom: 1px solid var(--baseline); }
td { border-bottom: 1px solid var(--grid); }
th:nth-child(2), td:nth-child(2), th:nth-child(6), td:nth-child(6) { text-align: left; }
footer.note { margin-top: 4px; }
"#;

/// Crosshair + tooltip layer for the line charts: snaps to the nearest
/// step, never gates (every value is also in the table). Tooltip content
/// is set via `textContent` only.
const HOVER_JS: &str = r#"
document.querySelectorAll('.chart').forEach(function (card) {
  var svg = card.querySelector('svg');
  var pts = JSON.parse(card.dataset.points);
  var unit = card.dataset.unit;
  var cross = svg.querySelector('.crosshair');
  var dot = svg.querySelector('.hover-dot');
  var tip = card.querySelector('.tooltip');
  function hide() { cross.hidden = true; dot.hidden = true; tip.hidden = true; }
  function show(ev) {
    var box = svg.getBoundingClientRect();
    var vx = (ev.clientX - box.left) * (640 / box.width);
    var best = 0, bd = Infinity;
    for (var i = 0; i < pts.length; i++) {
      var d = Math.abs(pts[i][0] - vx);
      if (d < bd) { bd = d; best = i; }
    }
    var p = pts[best];
    cross.setAttribute('x1', p[0]); cross.setAttribute('x2', p[0]);
    cross.hidden = false;
    if (p[1] === null) { dot.hidden = true; }
    else {
      dot.setAttribute('cx', p[0]); dot.setAttribute('cy', p[1]);
      dot.hidden = false;
    }
    tip.textContent = '';
    var strong = document.createElement('strong');
    strong.textContent = p[3];
    var label = document.createElement('span');
    label.className = 'tt-label';
    label.textContent = ' ' + unit + ' · step ' + p[2];
    tip.appendChild(strong); tip.appendChild(label);
    tip.hidden = false;
    var cardBox = card.getBoundingClientRect();
    var left = ev.clientX - cardBox.left + 14;
    if (left + tip.offsetWidth > cardBox.width - 8) {
      left = ev.clientX - cardBox.left - tip.offsetWidth - 14;
    }
    tip.style.left = Math.max(8, left) + 'px';
    tip.style.top = (ev.clientY - cardBox.top - 10) + 'px';
  }
  svg.addEventListener('pointermove', show);
  svg.addEventListener('pointerleave', hide);
});
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults_and_overrides() {
        assert_eq!(JournalArgs::parse(&[]).unwrap(), JournalArgs::default());
        let a = JournalArgs::parse(&strs(&[
            "--steps",
            "7",
            "--seed",
            "9",
            "--peak-flops",
            "2e12",
        ]))
        .unwrap();
        assert_eq!((a.steps, a.seed), (7, 9));
        assert_eq!(a.peak_flops, 2e12);
        assert!(JournalArgs::parse(&strs(&["--steps", "0"])).is_err());
        assert!(JournalArgs::parse(&strs(&["--steps"])).is_err());
        assert!(JournalArgs::parse(&strs(&["--peak-flops", "-1"])).is_err());
        assert!(JournalArgs::parse(&strs(&["--peak-flops", "nan"])).is_err());
    }

    #[test]
    fn dashboard_is_self_contained_and_complete() {
        let _cpu = crate::cpu_heavy_test_guard();
        // 8 steps at seed 5 cover both outcomes: 5 skipped, 3 applied —
        // so the grad-norm chart has real points AND gaps to render.
        let trainer = journaled_run(JournalArgs {
            steps: 8,
            seed: 5,
            ..JournalArgs::default()
        })
        .unwrap();
        let journal = trainer.journal().unwrap();
        assert!(journal.summary().applied > 0 && journal.summary().skipped > 0);
        let html = dashboard_html(journal, 5);
        // Self-contained: no external fetches of any kind.
        for forbidden in ["http://", "https://", "src=", "@import", "url("] {
            assert!(!html.contains(forbidden), "external reference: {forbidden}");
        }
        for expected in [
            JOURNAL_SCHEMA,
            "Training loss",
            "Gradient norm",
            "Measured MFU",
            "Step outcomes",
            "Per-step records",
            "prefers-color-scheme: dark",
            "<svg",
        ] {
            assert!(html.contains(expected), "missing: {expected}");
        }
        // One outcome cell per step, and the table has one row per step.
        assert_eq!(html.matches("class=\"cell ").count(), 8);
        assert_eq!(html.matches("<tr><td>").count(), 8);
    }

    #[test]
    fn fmt_short_covers_the_ranges() {
        assert_eq!(fmt_short(0.0), "0");
        assert_eq!(fmt_short(3.5e9), "3.5G");
        assert_eq!(fmt_short(2.0e6), "2.0M");
        assert_eq!(fmt_short(1500.0), "1.5k");
        assert_eq!(fmt_short(250.0), "250");
        assert_eq!(fmt_short(3.25), "3.25");
        assert_eq!(fmt_short(0.042), "0.042");
    }
}
