//! Real-execution measurements: Table 3 (optimizer latency) and Fig. 14
//! (training loss + rollback occurrences under STV).
//!
//! Unlike [`crate::experiments`], nothing here is simulated: Table 3 times
//! the three real Adam implementations of `grace-optim` on the host CPU,
//! and Fig. 14 trains a real miniature GPT with the real multi-threaded
//! speculation-then-validation engine, counting actual rollbacks.

use std::time::Instant;

use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, CpuAdam, GraceAdam, NaiveAdam};
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::engine::{EngineConfig, StepOutcome, StvEngine, SyncEngine};
use tensorlite::pool::with_threads;
use tensorlite::{Tensor, XorShiftRng};

/// One Table 3 row: seconds per optimizer step for each implementation at a
/// given parameter count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamLatencyRow {
    /// Parameters stepped.
    pub params: usize,
    /// Framework-native style (multi-pass) Adam.
    pub pt_cpu_secs: f64,
    /// Fused single-thread CPU-Adam.
    pub cpu_adam_secs: f64,
    /// Tiled multi-threaded GraceAdam.
    pub grace_adam_secs: f64,
}

impl AdamLatencyRow {
    /// PT-CPU / GraceAdam speedup.
    pub fn pt_speedup(&self) -> f64 {
        self.pt_cpu_secs / self.grace_adam_secs
    }

    /// CPU-Adam / GraceAdam speedup.
    pub fn cpu_adam_speedup(&self) -> f64 {
        self.cpu_adam_secs / self.grace_adam_secs
    }
}

fn time_stepper(stepper: &dyn AdamStepper, params: usize, reps: u32) -> f64 {
    let cfg = AdamConfig::default();
    let mut p: Vec<f32> = (0..params).map(|i| (i as f32 * 0.001).sin()).collect();
    let g: Vec<f32> = (0..params)
        .map(|i| (i as f32 * 0.002).cos() * 0.01)
        .collect();
    let mut state = AdamState::new(params);
    // Warm up caches and page in the buffers.
    stepper.step(&cfg, 1, &mut p, &g, &mut state);
    let start = Instant::now();
    for t in 0..reps {
        stepper.step(&cfg, t as u64 + 2, &mut p, &g, &mut state);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measures real optimizer latency at `params` parameters (Table 3,
/// scaled to sizes that fit host memory: 4 f32 buffers per parameter).
pub fn adam_latency(params: usize, reps: u32) -> AdamLatencyRow {
    AdamLatencyRow {
        params,
        pt_cpu_secs: time_stepper(&NaiveAdam, params, reps),
        cpu_adam_secs: time_stepper(&CpuAdam, params, reps),
        grace_adam_secs: time_stepper(&GraceAdam::default(), params, reps),
    }
}

/// Runs the Table 3 measurement ladder (parameter counts scaled to host
/// memory; the paper's 1B–8B ladder maps to 32M–256M here).
pub fn table3(sizes: &[usize], reps: u32) -> Vec<AdamLatencyRow> {
    sizes.iter().map(|&n| adam_latency(n, reps)).collect()
}

/// Prints Table 3 with both measured (real) and modeled (simulator)
/// latencies.
pub fn print_table3() {
    println!("# Table 3: Adam latency — REAL measured on this host (scaled sizes)");
    println!(
        "{:>12} {:>10} {:>10} {:>11} {:>8} {:>8}",
        "#params", "pt-cpu s", "cpu-adam s", "grace-adam s", "pt/ga", "ca/ga"
    );
    for row in table3(&[32_000_000, 64_000_000, 128_000_000, 256_000_000], 3) {
        println!(
            "{:>12} {:>10.4} {:>10.4} {:>11.4} {:>7.2}x {:>7.2}x",
            row.params,
            row.pt_cpu_secs,
            row.cpu_adam_secs,
            row.grace_adam_secs,
            row.pt_speedup(),
            row.cpu_adam_speedup()
        );
    }
    println!("(paper on Grace: pt-cpu ~3x and cpu-adam ~1.24x the GraceAdam latency)");

    println!("\n# Table 3 (modeled on simulated Grace CPU, paper's 1B-8B ladder)");
    let cpu = superchip_sim::presets::grace_cpu(480 * superchip_sim::GB);
    println!(
        "{:>10} {:>10} {:>10} {:>11}",
        "#params", "pt-cpu s", "cpu-adam s", "grace-adam s"
    );
    for billions in [1u64, 2, 4, 8] {
        let n = billions * 1_000_000_000;
        use superoffload::costs::OptimizerImpl;
        println!(
            "{:>9}B {:>10.3} {:>10.3} {:>11.3}",
            billions,
            OptimizerImpl::PtCpu.step_time(&cpu, n).as_secs(),
            OptimizerImpl::CpuAdam.step_time(&cpu, n).as_secs(),
            OptimizerImpl::GraceAdam.step_time(&cpu, n).as_secs(),
        );
    }
    println!("(paper: 1B = 0.289 / 0.098 / 0.082 s; 8B = 1.834 / 0.769 / 0.608 s)");
}

/// Result of the Fig. 14 training run.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// `(iteration, loss)` samples.
    pub losses: Vec<(u64, f32)>,
    /// Iterations at which a rollback occurred (skip or clip).
    pub rollback_iters: Vec<u64>,
    /// Total iterations executed.
    pub iterations: u64,
    /// Whether the STV engine stayed bit-identical to the synchronous
    /// reference throughout.
    pub exact_vs_sync: bool,
}

impl TrainingRun {
    /// Rollback rate over the stable phase (after `warmup` iterations).
    pub fn stable_rollback_rate(&self, warmup: u64) -> f64 {
        let stable_rollbacks = self.rollback_iters.iter().filter(|&&i| i >= warmup).count() as f64;
        stable_rollbacks / (self.iterations.saturating_sub(warmup).max(1)) as f64
    }
}

/// Fig. 14: trains a real GPT with the real STV engine for `iterations`
/// steps, tracking loss and rollbacks, and verifying exactness against the
/// synchronous engine every step.
///
/// The loss scale starts deliberately high so the warm-up phase exhibits
/// the paper's frequent early rollbacks before stabilizing.
pub fn fig14_run(iterations: u64, seed: u64) -> TrainingRun {
    let model_cfg = GptConfig {
        vocab: 64,
        hidden: 32,
        layers: 2,
        heads: 2,
        max_seq: 32,
    };
    let engine_cfg = EngineConfig {
        adam: AdamConfig {
            lr: 3e-3,
            ..AdamConfig::default()
        },
        // Loose enough that clipping fires only on genuine spikes once
        // training stabilizes (the paper observes 0.12% after warm-up).
        max_grad_norm: 6.0,
        // High initial scale: early iterations overflow FP16 and roll back,
        // like the paper's first ~1000 iterations.
        initial_loss_scale: 4_194_304.0,
        buckets: 4,
        precision: superoffload::engine::Precision::F16,
    };
    let mut stv = StvEngine::new(GptModel::new(model_cfg.clone(), seed), engine_cfg);
    let mut sync = SyncEngine::new(GptModel::new(model_cfg, seed), engine_cfg);
    let mut pile = SyntheticPile::new(64, seed);

    let mut losses = Vec::new();
    let mut rollback_iters = Vec::new();
    let mut exact = true;
    for it in 0..iterations {
        let batch = pile.next_batch(2, 24);
        let out = stv.train_step(&batch).expect("training step");
        let sync_out = sync.train_step(&batch).expect("reference step");
        if stv.model().params() != sync.model().params() {
            exact = false;
        }
        let _ = sync_out;
        if out.rolled_back() {
            rollback_iters.push(it);
        }
        if it % 5 == 0 || matches!(out, StepOutcome::Applied { .. }) {
            losses.push((it, out.loss()));
        }
    }
    TrainingRun {
        losses,
        rollback_iters,
        iterations,
        exact_vs_sync: exact,
    }
}

/// Prints Fig. 14 (ASCII loss curve with rollback markers).
pub fn print_fig14() {
    let iters = 400;
    let run = fig14_run(iters, 42);
    println!("# Fig. 14: REAL STV training run ({iters} iterations, real GPT + real rollbacks)");
    println!(
        "rollbacks: {} total; warm-up (first 10%): {}; stable-phase rate {:.2}%",
        run.rollback_iters.len(),
        run.rollback_iters
            .iter()
            .filter(|&&i| i < iters / 10)
            .count(),
        run.stable_rollback_rate(iters / 10) * 100.0
    );
    println!(
        "STV bit-identical to synchronous reference: {}",
        run.exact_vs_sync
    );
    // Coarse ASCII curve: bucket losses into 20 columns.
    let cols = 20usize;
    let per = (iters as usize).div_ceil(cols);
    println!(
        "\n{:>10} {:>8}  loss (o = rollback in window)",
        "iters", "loss"
    );
    for c in 0..cols {
        let lo = (c * per) as u64;
        let hi = ((c + 1) * per) as u64;
        let window: Vec<f32> = run
            .losses
            .iter()
            .filter(|(i, _)| *i >= lo && *i < hi)
            .map(|&(_, l)| l)
            .collect();
        if window.is_empty() {
            continue;
        }
        let avg = window.iter().sum::<f32>() / window.len() as f32;
        let rollbacks = run
            .rollback_iters
            .iter()
            .filter(|&&i| i >= lo && i < hi)
            .count();
        let bar_len = (avg / 4.5 * 40.0).clamp(0.0, 60.0) as usize;
        println!(
            "{:>4}-{:<5} {:>8.3}  {}{}",
            lo,
            hi,
            avg,
            "#".repeat(bar_len),
            if rollbacks > 0 {
                format!(" o x{rollbacks}")
            } else {
                String::new()
            }
        );
    }
    println!("(paper: rollbacks frequent before iteration ~1000, then 0.12% of iterations)");
}

/// Serial-vs-parallel measurement of the real numeric plane: the packed
/// GEMM and a full transformer train step (forward + backward + GraceAdam),
/// with a step-time breakdown. Emitted as `BENCH_realplane.json` so the
/// bench trajectory has machine-readable data.
#[derive(Debug, Clone)]
pub struct RealPlaneBench {
    /// Hardware threads on this host (`available_parallelism`).
    pub host_threads: usize,
    /// Worker count used for the parallel measurements.
    pub parallel_threads: usize,
    /// Square GEMM edge (`n × n × n`).
    pub matmul_n: usize,
    /// Seconds per GEMM, one worker.
    pub matmul_serial_secs: f64,
    /// Seconds per GEMM, `parallel_threads` workers.
    pub matmul_parallel_secs: f64,
    /// Tokens consumed per train step (batch × sequence length).
    pub tokens_per_step: usize,
    /// Seconds per train step, one worker.
    pub step_serial_secs: f64,
    /// Seconds per train step, `parallel_threads` workers.
    pub step_parallel_secs: f64,
    /// Whether the serial and parallel runs produced bit-identical
    /// parameters (they must).
    pub bit_identical: bool,
    /// Forward-pass seconds within one parallel step.
    pub forward_secs: f64,
    /// Backward-pass seconds within one parallel step.
    pub backward_secs: f64,
    /// Optimizer (GraceAdam) seconds within one parallel step.
    pub optimizer_secs: f64,
}

impl RealPlaneBench {
    /// Whether this host cannot support the parallel-speedup claim: with a
    /// single hardware thread the "parallel" run is the serial run plus
    /// worker-pool overhead, so speedup < 1.0 is an artifact of the host,
    /// not a regression. Snapshots from such hosts are marked
    /// `"degraded_host": true` and the compare gate ignores their
    /// speedup/throughput metrics.
    pub fn degraded_host(&self) -> bool {
        self.host_threads <= 1
    }

    /// Serial / parallel GEMM speedup.
    pub fn matmul_speedup(&self) -> f64 {
        self.matmul_serial_secs / self.matmul_parallel_secs
    }

    /// Serial / parallel train-step speedup.
    pub fn step_speedup(&self) -> f64 {
        self.step_serial_secs / self.step_parallel_secs
    }

    /// Tokens per second at `threads` = 1.
    pub fn tokens_per_sec_serial(&self) -> f64 {
        self.tokens_per_step as f64 / self.step_serial_secs
    }

    /// Tokens per second at the parallel worker count.
    pub fn tokens_per_sec_parallel(&self) -> f64 {
        self.tokens_per_step as f64 / self.step_parallel_secs
    }

    /// Hand-rolled JSON snapshot (same no-dependency style as the
    /// telemetry plane).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"version\": 1,\n",
                "  \"host_threads\": {},\n",
                "  \"degraded_host\": {},\n",
                "  \"parallel_threads\": {},\n",
                "  \"matmul\": {{\n",
                "    \"n\": {},\n",
                "    \"serial_secs\": {:.6},\n",
                "    \"parallel_secs\": {:.6},\n",
                "    \"speedup\": {:.3}\n",
                "  }},\n",
                "  \"train_step\": {{\n",
                "    \"tokens_per_step\": {},\n",
                "    \"serial_secs\": {:.6},\n",
                "    \"parallel_secs\": {:.6},\n",
                "    \"speedup\": {:.3},\n",
                "    \"tokens_per_sec_serial\": {:.1},\n",
                "    \"tokens_per_sec_parallel\": {:.1},\n",
                "    \"bit_identical\": {},\n",
                "    \"breakdown_secs\": {{\n",
                "      \"forward\": {:.6},\n",
                "      \"backward\": {:.6},\n",
                "      \"optimizer\": {:.6}\n",
                "    }}\n",
                "  }}\n",
                "}}\n"
            ),
            self.host_threads,
            self.degraded_host(),
            self.parallel_threads,
            self.matmul_n,
            self.matmul_serial_secs,
            self.matmul_parallel_secs,
            self.matmul_speedup(),
            self.tokens_per_step,
            self.step_serial_secs,
            self.step_parallel_secs,
            self.step_speedup(),
            self.tokens_per_sec_serial(),
            self.tokens_per_sec_parallel(),
            self.bit_identical,
            self.forward_secs,
            self.backward_secs,
            self.optimizer_secs,
        )
    }
}

/// The model used for the real train-step measurement: large enough that
/// every kernel crosses the parallel work threshold.
fn realplane_model(seed: u64) -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 128,
            hidden: 64,
            layers: 2,
            heads: 4,
            max_seq: 64,
        },
        seed,
    )
}

/// One full training step on a flat-parameter model: forward + backward
/// over the batch, then a GraceAdam update. Returns (forward, backward,
/// optimizer) seconds.
fn timed_step(
    model: &mut GptModel,
    state: &mut AdamState,
    step: u64,
    batch: &[(Vec<usize>, Vec<usize>)],
) -> (f64, f64, f64) {
    let cfg = AdamConfig::default();
    model.zero_grads();
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    for (x, y) in batch {
        let t0 = Instant::now();
        let cache = model.forward(x, y).expect("forward");
        fwd += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        model.backward(&cache).expect("backward");
        bwd += t1.elapsed().as_secs_f64();
    }
    let t2 = Instant::now();
    let grads = model.grads().to_vec();
    GraceAdam::default().step(&cfg, step, model.params_mut(), &grads, state);
    let opt = t2.elapsed().as_secs_f64();
    (fwd, bwd, opt)
}

fn run_training(
    threads: usize,
    steps: u64,
    batch: usize,
    seq: usize,
    seed: u64,
) -> (Vec<f32>, f64, f64, f64, f64) {
    with_threads(threads, || {
        let mut model = realplane_model(seed);
        let mut state = AdamState::new(model.num_params());
        let mut pile = SyntheticPile::new(model.config().vocab, seed);
        let batches: Vec<_> = (0..steps).map(|_| pile.next_batch(batch, seq)).collect();
        let (mut fwd, mut bwd, mut opt) = (0.0, 0.0, 0.0);
        let start = Instant::now();
        for (i, b) in batches.iter().enumerate() {
            let (f, bk, o) = timed_step(&mut model, &mut state, i as u64 + 1, b);
            fwd += f;
            bwd += bk;
            opt += o;
        }
        let per_step = start.elapsed().as_secs_f64() / steps as f64;
        let s = steps as f64;
        (model.params().to_vec(), per_step, fwd / s, bwd / s, opt / s)
    })
}

/// Default train-step count for the real-plane measurement.
pub const REALPLANE_STEPS: u64 = 8;
/// Default model/data seed for the real-plane measurement.
pub const REALPLANE_SEED: u64 = 4242;

/// Measures the real numeric plane, serial vs parallel: a `n × n × n`
/// packed GEMM and a full transformer train step with breakdown.
pub fn realplane(matmul_n: usize, steps: u64, seed: u64) -> RealPlaneBench {
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // GEMM: median-free simple best-of-reps timing (the Criterion benches
    // carry the statistics; this is the machine-readable summary).
    let mut rng = XorShiftRng::new(7);
    let a = Tensor::randn(&[matmul_n, matmul_n], 1.0, &mut rng);
    let b = Tensor::randn(&[matmul_n, matmul_n], 1.0, &mut rng);
    let time_matmul = |threads: usize| {
        with_threads(threads, || {
            let _warm = a.matmul(&b).expect("warmup");
            let reps = 3;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let _c = a.matmul(&b).expect("matmul");
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        })
    };
    let matmul_serial_secs = time_matmul(1);
    let matmul_parallel_secs = time_matmul(0);

    let (batch, seq) = (4usize, 48usize);
    let (serial_params, step_serial_secs, _, _, _) = run_training(1, steps, batch, seq, seed);
    let (parallel_params, step_parallel_secs, forward_secs, backward_secs, optimizer_secs) =
        run_training(0, steps, batch, seq, seed);

    RealPlaneBench {
        host_threads,
        parallel_threads: host_threads,
        matmul_n,
        matmul_serial_secs,
        matmul_parallel_secs,
        tokens_per_step: batch * seq,
        step_serial_secs,
        step_parallel_secs,
        bit_identical: serial_params == parallel_params,
        forward_secs,
        backward_secs,
        optimizer_secs,
    }
}

/// Runs the real-plane measurement with the default step count and seed
/// (the `repro -- all` entry point), prints a summary, and writes
/// `BENCH_realplane.json` in the working directory.
pub fn print_realplane() {
    print_realplane_with(REALPLANE_STEPS, REALPLANE_SEED);
}

/// Like [`print_realplane`], but with caller-chosen step count and seed
/// (`repro -- realbench --steps N --seed N`).
pub fn print_realplane_with(steps: u64, seed: u64) {
    let bench = realplane(512, steps, seed);
    println!("# Real numeric plane: serial vs parallel (this host, {steps} steps, seed {seed})");
    println!(
        "host threads: {} (parallel runs use {})",
        bench.host_threads, bench.parallel_threads
    );
    if bench.degraded_host() {
        // A single-core host cannot demonstrate parallel speedup — the
        // "parallel" numbers are the serial path plus pool overhead, so
        // printing a < 1.0x speedup would be a silent artifact.
        println!(
            "single hardware thread: skipping the parallel-speedup claim \
             (snapshot marked degraded_host)"
        );
        println!(
            "matmul {0}x{0}x{0}: serial {1:.4}s",
            bench.matmul_n, bench.matmul_serial_secs
        );
        println!(
            "train step ({} tokens): serial {:.4}s ({:.0} tokens/sec)",
            bench.tokens_per_step,
            bench.step_serial_secs,
            bench.tokens_per_sec_serial()
        );
    } else {
        println!(
            "matmul {0}x{0}x{0}: serial {1:.4}s, parallel {2:.4}s ({3:.2}x)",
            bench.matmul_n,
            bench.matmul_serial_secs,
            bench.matmul_parallel_secs,
            bench.matmul_speedup()
        );
        println!(
            "train step ({} tokens): serial {:.4}s, parallel {:.4}s ({:.2}x)",
            bench.tokens_per_step,
            bench.step_serial_secs,
            bench.step_parallel_secs,
            bench.step_speedup()
        );
        println!(
            "tokens/sec: serial {:.0}, parallel {:.0}",
            bench.tokens_per_sec_serial(),
            bench.tokens_per_sec_parallel()
        );
    }
    println!(
        "step breakdown (parallel): forward {:.4}s, backward {:.4}s, optimizer {:.4}s",
        bench.forward_secs, bench.backward_secs, bench.optimizer_secs
    );
    println!(
        "parallel output bit-identical to serial: {}",
        bench.bit_identical
    );
    match std::fs::write("BENCH_realplane.json", bench.to_json()) {
        Ok(()) => println!("wrote BENCH_realplane.json"),
        Err(e) => eprintln!("could not write BENCH_realplane.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_latency_ordering_holds_on_this_host() {
        let _cpu = crate::cpu_heavy_test_guard();
        // The paper's Table 3 ordering: GraceAdam < CPU-Adam < PT-CPU.
        // Use a size big enough to be memory-bound but quick.
        let row = adam_latency(8_000_000, 2);
        assert!(
            row.grace_adam_secs < row.pt_cpu_secs,
            "GraceAdam ({}) should beat PT-CPU ({})",
            row.grace_adam_secs,
            row.pt_cpu_secs
        );
        assert!(row.pt_speedup() > 1.0);
    }

    #[test]
    fn fig14_training_converges_with_rollbacks() {
        let _cpu = crate::cpu_heavy_test_guard();
        let run = fig14_run(120, 7);
        assert!(run.exact_vs_sync, "STV diverged from the reference");
        assert!(
            !run.rollback_iters.is_empty(),
            "high initial scale should force early rollbacks"
        );
        // Warm-up rollbacks dominate: more in the first half than second.
        let mid = run.iterations / 2;
        let early = run.rollback_iters.iter().filter(|&&i| i < mid).count();
        let late = run.rollback_iters.len() - early;
        assert!(early >= late, "early {early} vs late {late}");
        // Loss decreases.
        let first = run.losses.first().unwrap().1;
        let last_avg: f32 = run
            .losses
            .iter()
            .rev()
            .take(5)
            .map(|&(_, l)| l)
            .sum::<f32>()
            / 5.0;
        assert!(last_avg < first, "loss {first} -> {last_avg}");
    }
}
