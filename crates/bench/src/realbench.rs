//! Real-execution measurements: Table 3 (optimizer latency) and Fig. 14
//! (training loss + rollback occurrences under STV).
//!
//! Unlike [`crate::experiments`], nothing here is simulated: Table 3 times
//! the three real Adam implementations of `grace-optim` on the host CPU,
//! and Fig. 14 trains a real miniature GPT with the real multi-threaded
//! speculation-then-validation engine, counting actual rollbacks.

use std::time::Instant;

use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, CpuAdam, GraceAdam, NaiveAdam};
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::engine::{EngineConfig, StepOutcome, StvEngine, SyncEngine};

/// One Table 3 row: seconds per optimizer step for each implementation at a
/// given parameter count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamLatencyRow {
    /// Parameters stepped.
    pub params: usize,
    /// Framework-native style (multi-pass) Adam.
    pub pt_cpu_secs: f64,
    /// Fused single-thread CPU-Adam.
    pub cpu_adam_secs: f64,
    /// Tiled multi-threaded GraceAdam.
    pub grace_adam_secs: f64,
}

impl AdamLatencyRow {
    /// PT-CPU / GraceAdam speedup.
    pub fn pt_speedup(&self) -> f64 {
        self.pt_cpu_secs / self.grace_adam_secs
    }

    /// CPU-Adam / GraceAdam speedup.
    pub fn cpu_adam_speedup(&self) -> f64 {
        self.cpu_adam_secs / self.grace_adam_secs
    }
}

fn time_stepper(stepper: &dyn AdamStepper, params: usize, reps: u32) -> f64 {
    let cfg = AdamConfig::default();
    let mut p: Vec<f32> = (0..params).map(|i| (i as f32 * 0.001).sin()).collect();
    let g: Vec<f32> = (0..params)
        .map(|i| (i as f32 * 0.002).cos() * 0.01)
        .collect();
    let mut state = AdamState::new(params);
    // Warm up caches and page in the buffers.
    stepper.step(&cfg, 1, &mut p, &g, &mut state);
    let start = Instant::now();
    for t in 0..reps {
        stepper.step(&cfg, t as u64 + 2, &mut p, &g, &mut state);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measures real optimizer latency at `params` parameters (Table 3,
/// scaled to sizes that fit host memory: 4 f32 buffers per parameter).
pub fn adam_latency(params: usize, reps: u32) -> AdamLatencyRow {
    AdamLatencyRow {
        params,
        pt_cpu_secs: time_stepper(&NaiveAdam, params, reps),
        cpu_adam_secs: time_stepper(&CpuAdam, params, reps),
        grace_adam_secs: time_stepper(&GraceAdam::default(), params, reps),
    }
}

/// Runs the Table 3 measurement ladder (parameter counts scaled to host
/// memory; the paper's 1B–8B ladder maps to 32M–256M here).
pub fn table3(sizes: &[usize], reps: u32) -> Vec<AdamLatencyRow> {
    sizes.iter().map(|&n| adam_latency(n, reps)).collect()
}

/// Prints Table 3 with both measured (real) and modeled (simulator)
/// latencies.
pub fn print_table3() {
    println!("# Table 3: Adam latency — REAL measured on this host (scaled sizes)");
    println!(
        "{:>12} {:>10} {:>10} {:>11} {:>8} {:>8}",
        "#params", "pt-cpu s", "cpu-adam s", "grace-adam s", "pt/ga", "ca/ga"
    );
    for row in table3(&[32_000_000, 64_000_000, 128_000_000, 256_000_000], 3) {
        println!(
            "{:>12} {:>10.4} {:>10.4} {:>11.4} {:>7.2}x {:>7.2}x",
            row.params,
            row.pt_cpu_secs,
            row.cpu_adam_secs,
            row.grace_adam_secs,
            row.pt_speedup(),
            row.cpu_adam_speedup()
        );
    }
    println!("(paper on Grace: pt-cpu ~3x and cpu-adam ~1.24x the GraceAdam latency)");

    println!("\n# Table 3 (modeled on simulated Grace CPU, paper's 1B-8B ladder)");
    let cpu = superchip_sim::presets::grace_cpu(480 * superchip_sim::GB);
    println!(
        "{:>10} {:>10} {:>10} {:>11}",
        "#params", "pt-cpu s", "cpu-adam s", "grace-adam s"
    );
    for billions in [1u64, 2, 4, 8] {
        let n = billions * 1_000_000_000;
        use superoffload::costs::OptimizerImpl;
        println!(
            "{:>9}B {:>10.3} {:>10.3} {:>11.3}",
            billions,
            OptimizerImpl::PtCpu.step_time(&cpu, n).as_secs(),
            OptimizerImpl::CpuAdam.step_time(&cpu, n).as_secs(),
            OptimizerImpl::GraceAdam.step_time(&cpu, n).as_secs(),
        );
    }
    println!("(paper: 1B = 0.289 / 0.098 / 0.082 s; 8B = 1.834 / 0.769 / 0.608 s)");
}

/// Result of the Fig. 14 training run.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// `(iteration, loss)` samples.
    pub losses: Vec<(u64, f32)>,
    /// Iterations at which a rollback occurred (skip or clip).
    pub rollback_iters: Vec<u64>,
    /// Total iterations executed.
    pub iterations: u64,
    /// Whether the STV engine stayed bit-identical to the synchronous
    /// reference throughout.
    pub exact_vs_sync: bool,
}

impl TrainingRun {
    /// Rollback rate over the stable phase (after `warmup` iterations).
    pub fn stable_rollback_rate(&self, warmup: u64) -> f64 {
        let stable_rollbacks = self.rollback_iters.iter().filter(|&&i| i >= warmup).count() as f64;
        stable_rollbacks / (self.iterations.saturating_sub(warmup).max(1)) as f64
    }
}

/// Fig. 14: trains a real GPT with the real STV engine for `iterations`
/// steps, tracking loss and rollbacks, and verifying exactness against the
/// synchronous engine every step.
///
/// The loss scale starts deliberately high so the warm-up phase exhibits
/// the paper's frequent early rollbacks before stabilizing.
pub fn fig14_run(iterations: u64, seed: u64) -> TrainingRun {
    let model_cfg = GptConfig {
        vocab: 64,
        hidden: 32,
        layers: 2,
        heads: 2,
        max_seq: 32,
    };
    let engine_cfg = EngineConfig {
        adam: AdamConfig {
            lr: 3e-3,
            ..AdamConfig::default()
        },
        // Loose enough that clipping fires only on genuine spikes once
        // training stabilizes (the paper observes 0.12% after warm-up).
        max_grad_norm: 6.0,
        // High initial scale: early iterations overflow FP16 and roll back,
        // like the paper's first ~1000 iterations.
        initial_loss_scale: 4_194_304.0,
        buckets: 4,
        precision: superoffload::engine::Precision::F16,
    };
    let mut stv = StvEngine::new(GptModel::new(model_cfg.clone(), seed), engine_cfg);
    let mut sync = SyncEngine::new(GptModel::new(model_cfg, seed), engine_cfg);
    let mut pile = SyntheticPile::new(64, seed);

    let mut losses = Vec::new();
    let mut rollback_iters = Vec::new();
    let mut exact = true;
    for it in 0..iterations {
        let batch = pile.next_batch(2, 24);
        let out = stv.train_step(&batch).expect("training step");
        let sync_out = sync.train_step(&batch).expect("reference step");
        if stv.model().params() != sync.model().params() {
            exact = false;
        }
        let _ = sync_out;
        if out.rolled_back() {
            rollback_iters.push(it);
        }
        if it % 5 == 0 || matches!(out, StepOutcome::Applied { .. }) {
            losses.push((it, out.loss()));
        }
    }
    TrainingRun {
        losses,
        rollback_iters,
        iterations,
        exact_vs_sync: exact,
    }
}

/// Prints Fig. 14 (ASCII loss curve with rollback markers).
pub fn print_fig14() {
    let iters = 400;
    let run = fig14_run(iters, 42);
    println!("# Fig. 14: REAL STV training run ({iters} iterations, real GPT + real rollbacks)");
    println!(
        "rollbacks: {} total; warm-up (first 10%): {}; stable-phase rate {:.2}%",
        run.rollback_iters.len(),
        run.rollback_iters
            .iter()
            .filter(|&&i| i < iters / 10)
            .count(),
        run.stable_rollback_rate(iters / 10) * 100.0
    );
    println!(
        "STV bit-identical to synchronous reference: {}",
        run.exact_vs_sync
    );
    // Coarse ASCII curve: bucket losses into 20 columns.
    let cols = 20usize;
    let per = (iters as usize).div_ceil(cols);
    println!(
        "\n{:>10} {:>8}  loss (o = rollback in window)",
        "iters", "loss"
    );
    for c in 0..cols {
        let lo = (c * per) as u64;
        let hi = ((c + 1) * per) as u64;
        let window: Vec<f32> = run
            .losses
            .iter()
            .filter(|(i, _)| *i >= lo && *i < hi)
            .map(|&(_, l)| l)
            .collect();
        if window.is_empty() {
            continue;
        }
        let avg = window.iter().sum::<f32>() / window.len() as f32;
        let rollbacks = run
            .rollback_iters
            .iter()
            .filter(|&&i| i >= lo && i < hi)
            .count();
        let bar_len = (avg / 4.5 * 40.0).clamp(0.0, 60.0) as usize;
        println!(
            "{:>4}-{:<5} {:>8.3}  {}{}",
            lo,
            hi,
            avg,
            "#".repeat(bar_len),
            if rollbacks > 0 {
                format!(" o x{rollbacks}")
            } else {
                String::new()
            }
        );
    }
    println!("(paper: rollbacks frequent before iteration ~1000, then 0.12% of iterations)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_latency_ordering_holds_on_this_host() {
        // The paper's Table 3 ordering: GraceAdam < CPU-Adam < PT-CPU.
        // Use a size big enough to be memory-bound but quick.
        let row = adam_latency(8_000_000, 2);
        assert!(
            row.grace_adam_secs < row.pt_cpu_secs,
            "GraceAdam ({}) should beat PT-CPU ({})",
            row.grace_adam_secs,
            row.pt_cpu_secs
        );
        assert!(row.pt_speedup() > 1.0);
    }

    #[test]
    fn fig14_training_converges_with_rollbacks() {
        let run = fig14_run(120, 7);
        assert!(run.exact_vs_sync, "STV diverged from the reference");
        assert!(
            !run.rollback_iters.is_empty(),
            "high initial scale should force early rollbacks"
        );
        // Warm-up rollbacks dominate: more in the first half than second.
        let mid = run.iterations / 2;
        let early = run.rollback_iters.iter().filter(|&&i| i < mid).count();
        let late = run.rollback_iters.len() - early;
        assert!(early >= late, "early {early} vs late {late}");
        // Loss decreases.
        let first = run.losses.first().unwrap().1;
        let last_avg: f32 = run
            .losses
            .iter()
            .rev()
            .take(5)
            .map(|&(_, l)| l)
            .sum::<f32>()
            / 5.0;
        assert!(last_avg < first, "loss {first} -> {last_avg}");
    }
}
