//! The `repro -- compare <baseline.json> <current.json>` subcommand: diff
//! two analysis / metrics / bench snapshots and exit non-zero when a metric
//! regresses beyond a tolerance.
//!
//! Works on any of the repo's hand-rolled snapshot formats
//! (`superoffload.analysis/v1`, `superoffload.metrics/v1`,
//! `BENCH_realplane.json`): both files are parsed with
//! [`superchip_sim::telemetry::parse_json`], every numeric leaf is flattened
//! to a dotted path, and paths present in both snapshots are compared.
//!
//! ## Direction rules
//!
//! A metric only gates if its path says which direction is better:
//!
//! * **lower is better** — paths containing `idle`, `makespan`, `stall`,
//!   `-us` / `_us` / `secs` time suffixes, or `iter-time`: a regression is
//!   `current > baseline × (1 + tolerance)`.
//! * **higher is better** — paths containing `tflops`, `mfu`, `util`,
//!   `speedup`, `tokens_per_sec`, or `bandwidth`: a regression is
//!   `current < baseline × (1 − tolerance)`.
//! * anything else is reported as drift but never gates.
//!
//! A numeric path present in the baseline but missing from the current
//! snapshot is always a regression (silent coverage loss). If either
//! snapshot carries `"degraded_host": true` (written by `repro -- realbench`
//! on single-core hosts), `speedup`/`tokens_per_sec`/`parallel` metrics are
//! skipped — a one-thread host cannot demonstrate parallel speedup, so the
//! 0.79× it measures is an artifact, not a regression.
//!
//! The default tolerance is 2% ([`DEFAULT_TOLERANCE`]) — the snapshots are
//! deterministic simulated time, so byte-identical inputs always report
//! zero regressions, and the tolerance only absorbs intentional small model
//! recalibrations.

use superchip_sim::telemetry::{parse_json, JsonValue};

/// Relative tolerance used when the CLI does not pass `--tolerance`:
/// a metric may move 2% in the worse direction before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Informational,
}

fn direction_of(path: &str) -> Direction {
    let p = path.to_ascii_lowercase();
    // Critical-path step listings are positional detail (task ids, start
    // offsets): interesting to diff, wrong to gate on.
    if p.contains("top_steps") || p.contains(".task") {
        return Direction::Informational;
    }
    // Higher-is-better patterns first: "util" would otherwise never match
    // after the broad time-suffix checks below.
    for pat in [
        "tflops",
        "mfu",
        "util",
        "speedup",
        "tokens_per_sec",
        "bandwidth",
    ] {
        if p.contains(pat) {
            return Direction::HigherIsBetter;
        }
    }
    for pat in [
        "idle",
        "makespan",
        "stall",
        "iter-time",
        "_us",
        "-us",
        "secs",
    ] {
        if p.contains(pat) {
            return Direction::LowerIsBetter;
        }
    }
    Direction::Informational
}

/// Flattens every numeric leaf of a snapshot into `(dotted path, value)`
/// pairs. Array elements are keyed by their `name` / `resource` / `system` /
/// `label` member when present (so reordering a resource list does not
/// invalidate a baseline), falling back to the numeric index.
pub fn flatten_numbers(v: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &JsonValue, path: String, out: &mut Vec<(String, f64)>) {
    let join = |path: &str, seg: &str| {
        if path.is_empty() {
            seg.to_string()
        } else {
            format!("{path}.{seg}")
        }
    };
    match v {
        JsonValue::Num(n) => out.push((path, *n)),
        JsonValue::Obj(members) => {
            for (k, val) in members {
                walk(val, join(&path, k), out);
            }
        }
        JsonValue::Arr(items) => {
            let keys: Vec<String> = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    ["name", "resource", "system", "label"]
                        .iter()
                        .find_map(|k| item.get(k).and_then(JsonValue::as_str))
                        .map_or_else(|| i.to_string(), str::to_string)
                })
                .collect();
            for (i, item) in items.iter().enumerate() {
                // A `name` key is only a stable address if it is unique in
                // this array; duplicate keys fall back to positional form so
                // distinct elements never collide in the flattened map.
                let unique = keys.iter().filter(|k| **k == keys[i]).count() == 1;
                let seg = if unique {
                    keys[i].clone()
                } else {
                    format!("{}#{i}", keys[i])
                };
                walk(item, join(&path, &seg), out);
            }
        }
        _ => {}
    }
}

/// Whether either snapshot declares itself as coming from a host that
/// cannot support parallel-speedup claims.
fn degraded_host(v: &JsonValue) -> bool {
    v.get("degraded_host").and_then(JsonValue::as_bool) == Some(true)
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Dotted path of the metric.
    pub path: String,
    /// Baseline value (`None` when the metric is new).
    pub baseline: Option<f64>,
    /// Current value (`None` when the metric disappeared).
    pub current: Option<f64>,
    /// Whether this delta fails the gate.
    pub regression: bool,
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct CompareResult {
    /// Gating failures, in baseline path order.
    pub regressions: Vec<Delta>,
    /// Non-gating drifts (informational metrics, or in-tolerance moves of
    /// gating metrics that still changed value).
    pub drifts: Vec<Delta>,
    /// Metrics skipped because a snapshot is marked `degraded_host`.
    pub skipped: usize,
    /// Metrics compared (present in both snapshots).
    pub compared: usize,
}

impl CompareResult {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares two snapshot documents (already parsed). See the module docs
/// for the direction rules and the `degraded_host` escape hatch.
pub fn compare_values(baseline: &JsonValue, current: &JsonValue, tolerance: f64) -> CompareResult {
    let skip_parallel = degraded_host(baseline) || degraded_host(current);
    let base = flatten_numbers(baseline);
    let cur = flatten_numbers(current);
    let cur_map: std::collections::BTreeMap<&str, f64> =
        cur.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut result = CompareResult {
        regressions: Vec::new(),
        drifts: Vec::new(),
        skipped: 0,
        compared: 0,
    };
    for (path, b) in &base {
        let parallel_metric = {
            let p = path.to_ascii_lowercase();
            p.contains("speedup") || p.contains("tokens_per_sec") || p.contains("parallel")
        };
        if skip_parallel && parallel_metric {
            result.skipped += 1;
            continue;
        }
        let Some(&c) = cur_map.get(path.as_str()) else {
            result.regressions.push(Delta {
                path: path.clone(),
                baseline: Some(*b),
                current: None,
                regression: true,
            });
            continue;
        };
        result.compared += 1;
        if c == *b {
            continue;
        }
        let worse = match direction_of(path) {
            Direction::LowerIsBetter => c > b * (1.0 + tolerance) + f64::EPSILON,
            Direction::HigherIsBetter => c < b * (1.0 - tolerance) - f64::EPSILON,
            Direction::Informational => false,
        };
        let delta = Delta {
            path: path.clone(),
            baseline: Some(*b),
            current: Some(c),
            regression: worse,
        };
        if worse {
            result.regressions.push(delta);
        } else {
            result.drifts.push(delta);
        }
    }
    result
}

/// Compares two snapshot files.
///
/// # Errors
/// A CLI-ready message when a file cannot be read or parsed.
pub fn compare_files(
    baseline_path: &str,
    current_path: &str,
    tolerance: f64,
) -> Result<CompareResult, String> {
    let read_parse = |path: &str| -> Result<JsonValue, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_json(&body).map_err(|e| format!("{path} is not valid JSON: {e}"))
    };
    let baseline = read_parse(baseline_path)?;
    let current = read_parse(current_path)?;
    Ok(compare_values(&baseline, &current, tolerance))
}

/// Entry point for `repro -- compare <baseline> <current> [--tolerance t]`.
/// Prints a summary and returns `Err` (non-zero exit for the CLI) when any
/// metric regresses beyond the tolerance.
///
/// # Errors
/// A CLI-ready message on I/O / parse failure or when the gate fails.
pub fn run(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<(), String> {
    let result = compare_files(baseline_path, current_path, tolerance)?;
    println!(
        "# Compare: {current_path} vs baseline {baseline_path} (tolerance {:.1}%)",
        tolerance * 100.0
    );
    println!(
        "compared {} metrics, {} skipped (degraded host), {} drifted in-tolerance",
        result.compared,
        result.skipped,
        result.drifts.len()
    );
    for d in result.drifts.iter().take(10) {
        println!(
            "  drift {:<52} {} -> {}",
            d.path,
            d.baseline.unwrap_or(f64::NAN),
            d.current.unwrap_or(f64::NAN)
        );
    }
    if result.passed() {
        println!("OK: no regressions beyond tolerance");
        Ok(())
    } else {
        for d in &result.regressions {
            match d.current {
                Some(c) => println!(
                    "  REGRESSION {:<45} {} -> {c}",
                    d.path,
                    d.baseline.unwrap_or(f64::NAN)
                ),
                None => println!(
                    "  REGRESSION {:<45} {} -> (missing)",
                    d.path,
                    d.baseline.unwrap_or(f64::NAN)
                ),
            }
        }
        Err(format!(
            "{} metric(s) regressed beyond {:.1}% tolerance",
            result.regressions.len(),
            tolerance * 100.0
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> JsonValue {
        parse_json(s).unwrap()
    }

    #[test]
    fn identical_snapshots_report_zero_regressions() {
        let snap = v(r#"{"makespan_us": 100, "stalls": {"total_idle_us": 40}, "x": 1.5}"#);
        let r = compare_values(&snap, &snap, DEFAULT_TOLERANCE);
        assert!(r.passed());
        assert!(r.drifts.is_empty());
        assert_eq!(r.compared, 3);
    }

    #[test]
    fn lower_is_better_regresses_upward_only() {
        let base = v(r#"{"makespan_us": 100}"#);
        let worse = v(r#"{"makespan_us": 103}"#);
        let better = v(r#"{"makespan_us": 90}"#);
        let within = v(r#"{"makespan_us": 101}"#);
        assert!(!compare_values(&base, &worse, 0.02).passed());
        assert!(compare_values(&base, &better, 0.02).passed());
        assert!(compare_values(&base, &within, 0.02).passed());
    }

    #[test]
    fn higher_is_better_regresses_downward_only() {
        let base = v(r#"{"report.tflops": 100}"#);
        let worse = v(r#"{"report.tflops": 95}"#);
        let better = v(r#"{"report.tflops": 120}"#);
        assert!(!compare_values(&base, &worse, 0.02).passed());
        assert!(compare_values(&base, &better, 0.02).passed());
    }

    #[test]
    fn informational_metrics_never_gate() {
        let base = v(r#"{"critical_path": {"tasks": 40}}"#);
        let moved = v(r#"{"critical_path": {"tasks": 80}}"#);
        let r = compare_values(&base, &moved, 0.02);
        assert!(r.passed());
        assert_eq!(r.drifts.len(), 1);
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = v(r#"{"makespan_us": 100, "extra_us": 5}"#);
        let cur = v(r#"{"makespan_us": 100}"#);
        let r = compare_values(&base, &cur, 0.02);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].path, "extra_us");
        assert_eq!(r.regressions[0].current, None);
    }

    #[test]
    fn degraded_host_skips_parallel_claims() {
        let base =
            v(r#"{"degraded_host": false, "train_step": {"speedup": 1.9, "serial_secs": 1.0}}"#);
        let degraded =
            v(r#"{"degraded_host": true, "train_step": {"speedup": 0.79, "serial_secs": 1.0}}"#);
        // Without the marker this would be a 58% speedup regression.
        let r = compare_values(&base, &degraded, 0.02);
        assert!(r.passed(), "{:?}", r.regressions);
        assert!(r.skipped >= 1);
        // serial_secs still gates.
        let slower =
            v(r#"{"degraded_host": true, "train_step": {"speedup": 0.8, "serial_secs": 9.0}}"#);
        assert!(!compare_values(&base, &slower, 0.02).passed());
    }

    #[test]
    fn array_elements_key_by_name() {
        let base =
            v(r#"{"resources": [{"name": "gpu", "idle_us": 10}, {"name": "cpu", "idle_us": 50}]}"#);
        // Same values, reordered: no regression.
        let reordered =
            v(r#"{"resources": [{"name": "cpu", "idle_us": 50}, {"name": "gpu", "idle_us": 10}]}"#);
        assert!(compare_values(&base, &reordered, 0.0).passed());
        let flat = flatten_numbers(&base);
        assert!(flat.iter().any(|(k, _)| k == "resources.gpu.idle_us"));
    }

    #[test]
    fn duplicate_array_keys_do_not_collide() {
        // All steps share resource "gpu" (as real top_steps listings do):
        // identical docs must flatten identically and report nothing.
        let snap = v(r#"{"top_steps": [{"resource": "gpu", "start_us": 0},
                               {"resource": "gpu", "start_us": 500}]}"#);
        let r = compare_values(&snap, &snap, 0.0);
        assert!(r.passed(), "{:?}", r.regressions);
        assert!(r.drifts.is_empty());
        assert_eq!(r.compared, 2);
        let flat = flatten_numbers(&snap);
        assert!(flat.iter().any(|(k, _)| k == "top_steps.gpu#0.start_us"));
    }

    #[test]
    fn top_steps_detail_never_gates() {
        let base = v(r#"{"critical_path": {"top_steps": [{"resource": "gpu", "start_us": 10}]}}"#);
        let moved = v(r#"{"critical_path": {"top_steps": [{"resource": "gpu", "start_us": 99}]}}"#);
        let r = compare_values(&base, &moved, 0.0);
        assert!(r.passed());
        assert_eq!(r.drifts.len(), 1);
    }

    #[test]
    fn run_reports_missing_file() {
        let err = run("/no/such/baseline.json", "/no/such/current.json", 0.02).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
