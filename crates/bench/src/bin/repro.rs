//! Regenerates every table and figure of the SuperOffload paper.
//!
//! ```text
//! cargo run --release -p superoffload-bench --bin repro -- all
//! cargo run --release -p superoffload-bench --bin repro -- fig10 table2
//! cargo run --release -p superoffload-bench --bin repro -- profile superoffload
//! cargo run --release -p superoffload-bench --bin repro -- analyze superoffload
//! cargo run --release -p superoffload-bench --bin repro -- compare base.json cur.json
//! cargo run --release -p superoffload-bench --bin repro -- journal --steps 24 --seed 42
//! cargo run --release -p superoffload-bench --bin repro -- realbench --steps 8
//! cargo run --release -p superoffload-bench --bin repro -- scale --nodes 1..8
//! ```

use superoffload_bench::{analyze, compare, experiments, journal, profile, realbench, scale};

const EXPERIMENTS: &[(&str, fn())] = &[
    ("table1", experiments::print_table1),
    ("fig4", experiments::print_fig4),
    ("fig6", experiments::print_fig6),
    ("fig7", experiments::print_fig7),
    ("fig9", experiments::print_fig9),
    ("fig10", experiments::print_fig10),
    ("fig11", print_fig11_both),
    ("fig12", experiments::print_fig12),
    ("fig13", experiments::print_fig13),
    ("table2", experiments::print_table2),
    ("table3", realbench::print_table3),
    ("fig14", realbench::print_fig14),
    ("realbench", realbench::print_realplane),
    ("fig15", experiments::print_fig15),
    ("timelines", experiments::print_timelines),
    ("numa", experiments::print_numa),
    ("bucket-sweep", experiments::print_bucket_sweep),
    ("pipeline", experiments::print_pipeline),
    ("systems", experiments::print_systems),
];

fn print_fig11_both() {
    experiments::print_fig11(4);
    println!();
    experiments::print_fig11(16);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <subcommand> [flags]");
        eprintln!();
        eprintln!("subcommands:");
        eprintln!("  <experiment>...                  print one or more figure/table experiments");
        eprintln!("  all                              print every experiment in order");
        eprintln!("  profile <system>                 Perfetto trace + metrics snapshot");
        eprintln!("                                   -> profile_<system>.trace.json, profile_<system>.json");
        eprintln!("  analyze <system>                 critical-path + stall-attribution report");
        eprintln!("                                   -> analysis_<system>.json");
        eprintln!("  compare <baseline.json> <current.json> [--tolerance <frac>]");
        eprintln!(
            "                                   exit 1 if metrics regress beyond the tolerance \
             (default {})",
            compare::DEFAULT_TOLERANCE
        );
        eprintln!("  journal [--steps <N>] [--seed <N>] [--peak-flops <F>]");
        eprintln!(
            "                                   real journaled training run -> journal.jsonl, \
             journal_timing.json,"
        );
        eprintln!(
            "                                   journal_snapshot.json, journal_dashboard.html \
             (defaults: --steps {} --seed {})",
            journal::DEFAULT_STEPS,
            journal::DEFAULT_SEED
        );
        eprintln!("  realbench [--steps <N>] [--seed <N>]");
        eprintln!(
            "                                   real-plane measurement -> BENCH_realplane.json \
             (defaults: --steps {} --seed {})",
            realbench::REALPLANE_STEPS,
            realbench::REALPLANE_SEED
        );
        eprintln!("  scale [--nodes <A..B|N>] [--system <name>]");
        eprintln!(
            "                                   multi-Superchip scaling sweep -> scale_sweep.json \
             (or scale_<system>.json;"
        );
        eprintln!(
            "                                   defaults: --nodes {}..{}, systems {})",
            scale::DEFAULT_NODES.0,
            scale::DEFAULT_NODES.1,
            scale::DEFAULT_SYSTEMS.join(" ")
        );
        eprintln!();
        eprintln!(
            "experiments: {} all",
            EXPERIMENTS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        eprintln!("system names accept both spellings: zero-offload == zero_offload");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    // `journal` takes flags, unlike the fn() table.
    if args[0] == "journal" {
        if let Err(msg) = journal::run(&args[1..]) {
            eprintln!("journal failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    // `realbench` as the leading subcommand accepts `--steps`/`--seed`
    // overrides (inside an experiment list, e.g. `repro -- all`, it runs
    // with the defaults).
    if args[0] == "realbench" && args.len() > 1 {
        let parse = |name| journal::parse_flag(&args[1..], name, |v| str::parse::<u64>(v).ok());
        match (parse("steps"), parse("seed")) {
            (Ok(steps), Ok(seed)) => {
                if steps == Some(0) {
                    eprintln!("realbench: --steps must be at least 1");
                    std::process::exit(2);
                }
                realbench::print_realplane_with(
                    steps.unwrap_or(realbench::REALPLANE_STEPS),
                    seed.unwrap_or(realbench::REALPLANE_SEED),
                );
            }
            (Err(msg), _) | (_, Err(msg)) => {
                eprintln!("realbench: {msg}");
                std::process::exit(2);
            }
        }
        return;
    }

    // `scale` takes flags, like `journal`.
    if args[0] == "scale" {
        if let Err(msg) = scale::run(&args[1..]) {
            eprintln!("scale failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    // `profile` takes a system-name argument, unlike the fn() table.
    if args[0] == "profile" {
        let Some(system) = args.get(1) else {
            eprintln!("usage: repro profile <system>  (see `repro systems` for names)");
            std::process::exit(2);
        };
        if let Err(msg) = profile::run(system) {
            eprintln!("profile failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    // `analyze` also takes a system-name argument.
    if args[0] == "analyze" {
        let Some(system) = args.get(1) else {
            eprintln!("usage: repro analyze <system>  (see `repro systems` for names)");
            std::process::exit(2);
        };
        if let Err(msg) = analyze::run(system) {
            eprintln!("analyze failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    // `compare` takes two snapshot paths and an optional tolerance.
    if args[0] == "compare" {
        let (Some(baseline), Some(current)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: repro compare <baseline.json> <current.json> [--tolerance frac]");
            std::process::exit(2);
        };
        let tolerance = match args.iter().position(|a| a == "--tolerance") {
            Some(i) => match args.get(i + 1).and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => t,
                _ => {
                    eprintln!("--tolerance needs a non-negative fraction, e.g. 0.02");
                    std::process::exit(2);
                }
            },
            None => compare::DEFAULT_TOLERANCE,
        };
        if let Err(msg) = compare::run(baseline, current, tolerance) {
            eprintln!("compare failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    let selected: Vec<&(&str, fn())> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(n, _)| n == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment `{a}`; run with --help");
                    std::process::exit(2)
                })
            })
            .collect()
    };

    for (i, (_, f)) in selected.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        f();
    }
}
