//! Benchmark harness for the SuperOffload reproduction.
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation section (run via the `repro` binary: `cargo run -p
//! superoffload-bench --bin repro -- all`). [`realbench`] hosts the
//! real-execution measurements (GraceAdam latencies on the host CPU, the
//! STV training run) that back Table 3 and Fig. 14.

#![warn(missing_docs)]

pub mod analyze;
pub mod compare;
pub mod experiments;
pub mod journal;
pub mod profile;
pub mod realbench;
pub mod scale;

/// Serializes CPU-hungry or timing-sensitive tests within this binary:
/// the realbench latency-ordering test measures wall time, and the journal
/// tests run real multi-threaded training loops — running them on the same
/// cores at once makes the measurement lie.
#[cfg(test)]
pub(crate) fn cpu_heavy_test_guard() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock, PoisonError};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}
