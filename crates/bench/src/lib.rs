//! Benchmark harness for the SuperOffload reproduction.
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation section (run via the `repro` binary: `cargo run -p
//! superoffload-bench --bin repro -- all`). [`realbench`] hosts the
//! real-execution measurements (GraceAdam latencies on the host CPU, the
//! STV training run) that back Table 3 and Fig. 14.

#![warn(missing_docs)]

pub mod analyze;
pub mod compare;
pub mod experiments;
pub mod profile;
pub mod realbench;
