//! The `repro -- analyze <system>` subcommand: run any registered system on
//! the smoke workload, feed its trace through the critical-path / stall-
//! attribution analyzer, and emit a human table plus a versioned
//! `superoffload.analysis/v1` JSON snapshot.
//!
//! The snapshot is derived purely from simulated time, so repeated runs are
//! byte-identical — which is what lets `repro -- compare` gate CI against a
//! committed baseline (see `ci/baselines/`).

use baselines::standard_registry;
use superchip_sim::analysis::AnalysisReport;
use superchip_sim::telemetry::validate_json;
use superoffload::report::RunProfile;

use crate::profile::profile_system;

/// Maps user-facing spellings onto registry names: underscores become
/// hyphens (`zero_offload` → `zero-offload`), so both conventions work.
pub fn normalize_system_name(system: &str) -> String {
    system.replace('_', "-")
}

/// Runs `system` on the smoke workload and analyzes its trace.
///
/// Returns the normalized system name, the run profile, and the analysis.
///
/// # Errors
/// A CLI-ready message for unknown systems or infeasible workloads.
pub fn analyze_system(system: &str) -> Result<(String, RunProfile, AnalysisReport), String> {
    let name = normalize_system_name(system);
    let profile = profile_system(&name).map_err(|e| match e {
        None => {
            let reg = standard_registry();
            let names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
            format!(
                "unknown system '{system}'; registered systems: {}",
                names.join(", ")
            )
        }
        Some(reason) => format!("'{name}' is infeasible on the smoke workload: {reason}"),
    })?;
    let report = profile.analyze();
    Ok((name, profile, report))
}

/// File name for a system's analysis snapshot.
pub fn analysis_path(system: &str) -> String {
    format!("analysis_{system}.json")
}

/// Entry point for `repro -- analyze <system>`: runs the analyzer, prints
/// the human table, and writes `analysis_<system>.json` (validated before
/// writing).
///
/// # Errors
/// A CLI-ready message on unknown system, infeasible workload, or I/O
/// failure.
pub fn run(system: &str) -> Result<(), String> {
    let (name, profile, report) = analyze_system(system)?;
    println!(
        "# Analysis: {name} ({}, batch {}, 1 chip)",
        crate::profile::PROFILE_MODEL,
        crate::experiments::FIG10_BATCH
    );
    println!();
    print!("{}", report.render_table());
    let json = profile.analysis_json();
    if let Err(e) = validate_json(&json) {
        panic!("generated analysis output is not valid JSON: {e}");
    }
    let path = analysis_path(&name);
    std::fs::write(&path, &json).map_err(|e| format!("write failed: {e}"))?;
    println!(
        "\nwrote {path} (schema {})",
        superchip_sim::analysis::ANALYSIS_SCHEMA
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use superchip_sim::engine::ResourceId;

    #[test]
    fn underscore_names_normalize() {
        assert_eq!(normalize_system_name("zero_offload"), "zero-offload");
        assert_eq!(
            normalize_system_name("deep_optimizer_states"),
            "deep-optimizer-states"
        );
        assert_eq!(normalize_system_name("superoffload"), "superoffload");
    }

    #[test]
    fn unknown_system_lists_registry() {
        let msg = analyze_system("no-such-system").unwrap_err();
        assert!(msg.contains("superoffload"), "{msg}");
    }

    #[test]
    fn analysis_is_exact_and_deterministic_for_headline_systems() {
        for system in ["superoffload", "zero_offload"] {
            let (name, profile, report) = analyze_system(system).unwrap();
            // Stall attribution must partition the simulator's idle ledger
            // bit-exactly, per resource.
            for (ridx, stalls) in report.stalls.iter().enumerate() {
                let sum: u64 = stalls.by_class.iter().sum();
                assert_eq!(sum, stalls.idle_us, "{name}/{}", stalls.name);
                assert_eq!(
                    stalls.idle_us,
                    profile.trace.idle_us(ResourceId::from_index(ridx)),
                    "{name}/{}",
                    stalls.name
                );
            }
            // Critical-path invariants.
            assert!(report.cp_len_us <= report.makespan_us, "{name}");
            for ridx in 0..profile.trace.resource_names().len() {
                assert!(
                    report.cp_len_us >= profile.trace.busy_us(ResourceId::from_index(ridx)),
                    "{name}: cp shorter than busy time of resource {ridx}"
                );
            }
            // Snapshot is valid JSON and byte-stable.
            let a = profile.analysis_json();
            validate_json(&a).unwrap();
            let (_, profile2, _) = analyze_system(system).unwrap();
            assert_eq!(a, profile2.analysis_json(), "{name}");
            assert!(a.contains("superoffload.analysis/v1"));
        }
    }

    #[test]
    fn zero_offload_exposes_optimizer_stall() {
        // The whole point of the paper: ZeRO-Offload's CPU optimizer step
        // leaves the GPU idle. The analyzer must attribute GPU idle time to
        // the optimizer-exposed class.
        let (_, _, report) = analyze_system("zero-offload").unwrap();
        let gpu = report
            .stalls
            .iter()
            .find(|s| s.name == "gpu")
            .expect("gpu resource");
        assert!(
            gpu.class_us(superchip_sim::StallClass::OptimizerExposed) > 0,
            "zero-offload GPU idle should include optimizer-exposed time: {:?}",
            gpu.by_class
        );
    }
}
