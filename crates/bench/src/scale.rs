//! The `repro -- scale [--nodes A..B] [--system <name>]` subcommand: the
//! multi-Superchip scaling sweep (the paper's §5.1 testbed, 4×GH200 over an
//! HPE Slingshot 11 fabric, generalized to `A..B` nodes).
//!
//! Every point runs a registered system on a [`gh200_superchip_fleet`]
//! cluster of `n` single-Superchip nodes with `ranks = n` and a weakly
//! scaled workload (the smoke model at `FIG10_BATCH × n` global batch, so
//! the per-node batch stays constant). The `n = 1` point is therefore the
//! exact profile smoke configuration — byte-identical to
//! `repro -- profile`, which is what `tests/scale_guardrail.rs` enforces.
//!
//! Per point the sweep reports throughput-per-node (TFLOPS; one Superchip
//! per node, so per-GPU and per-node coincide) and **communication-exposed
//! time**: the GPU's `waiting-on-transfer` stall class from the
//! critical-path analyzer, i.e. GPU idle microseconds bound by a transfer,
//! cast, or collective in flight. All numbers are simulated time, so the
//! emitted `superoffload.scale/v1` snapshot is byte-identical across reruns
//! and gates CI via `repro -- compare` (see `ci/baselines/`).
//!
//! [`gh200_superchip_fleet`]: superchip_sim::presets::gh200_superchip_fleet

use baselines::standard_registry;
use llm_model::workload::Workload;
use llm_model::ModelConfig;
use superchip_sim::presets;
use superchip_sim::telemetry::{escape_json, validate_json};
use superchip_sim::StallClass;

use crate::analyze::normalize_system_name;
use crate::experiments::{FIG10_BATCH, SEQ};
use crate::profile::PROFILE_MODEL;

use std::fmt::Write as _;

/// Schema identifier stamped into [`sweep_json`] output.
pub const SCALE_SCHEMA: &str = "superoffload.scale/v1";

/// Systems swept when no `--system` is given: the paper's headline system
/// plus the two strongest baselines of its multi-chip evaluation.
pub const DEFAULT_SYSTEMS: [&str; 3] = ["superoffload", "zero-3", "zero-offload"];

/// Node range used when no `--nodes` is given.
pub const DEFAULT_NODES: (u32, u32) = (1, 4);

/// Upper bound on the sweep's node count (keeps a typo'd `--nodes 1..9999`
/// from grinding through thousands of simulations).
pub const MAX_NODES: u32 = 64;

/// Metrics of one feasible sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleMetrics {
    /// Steady-state time per optimizer step, microseconds.
    pub iter_time_us: f64,
    /// Effective TFLOPS per node (== per GPU: one Superchip per node).
    pub tflops_per_node: f64,
    /// Aggregate training throughput, tokens per second across the fleet.
    pub tokens_per_sec: f64,
    /// GPU busy fraction over the steady-state iteration.
    pub gpu_util: f64,
    /// GPU idle microseconds charged to [`StallClass::WaitingOnTransfer`]
    /// over the whole traced run — the communication-exposed time.
    pub comm_exposed_us: u64,
    /// `comm_exposed_us` as a fraction of the traced run's makespan.
    pub comm_exposed_frac: f64,
}

/// One point of a system's sweep: the node count and either its metrics or
/// the typed infeasibility reason, rendered for the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Fleet size (nodes == ranks; one Superchip per node).
    pub nodes: u32,
    /// Metrics when feasible, the [`Infeasible`] display string otherwise.
    ///
    /// [`Infeasible`]: superoffload::system::Infeasible
    pub outcome: Result<ScaleMetrics, String>,
}

/// A system's full sweep over the node range.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSweep {
    /// Registry name of the system.
    pub name: String,
    /// One point per node count, ascending.
    pub points: Vec<ScalePoint>,
}

/// Parses a `--nodes` spec: either a single count (`"4"`) or an inclusive
/// range (`"1..8"`).
///
/// # Errors
/// A CLI-ready message for malformed specs, zero counts, inverted ranges,
/// or counts beyond [`MAX_NODES`].
pub fn parse_nodes(spec: &str) -> Result<(u32, u32), String> {
    let (lo, hi) = match spec.split_once("..") {
        Some((a, b)) => {
            let parse = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| format!("--nodes range bound `{s}` is not a count"))
            };
            (parse(a)?, parse(b)?)
        }
        None => {
            let n = spec
                .parse::<u32>()
                .map_err(|_| format!("--nodes `{spec}` is neither a count nor an `A..B` range"))?;
            (n, n)
        }
    };
    if lo == 0 {
        return Err("--nodes counts start at 1".into());
    }
    if lo > hi {
        return Err(format!("--nodes range {lo}..{hi} is inverted"));
    }
    if hi > MAX_NODES {
        return Err(format!("--nodes caps at {MAX_NODES} (asked for {hi})"));
    }
    Ok((lo, hi))
}

/// Resolves the optional `--system` argument into the list of systems to
/// sweep and the artifact path: the default trio writes `scale_sweep.json`,
/// a named system (underscore spellings normalized, as in `repro --
/// profile`) writes `scale_<name>.json`.
pub fn resolve(system: Option<&str>) -> (Vec<String>, String) {
    match system {
        None => (
            DEFAULT_SYSTEMS.iter().map(|s| s.to_string()).collect(),
            "scale_sweep.json".to_string(),
        ),
        Some(s) => {
            let name = normalize_system_name(s);
            let path = format!("scale_{name}.json");
            (vec![name], path)
        }
    }
}

/// The weakly scaled sweep workload for `nodes` nodes: the profile smoke
/// model and sequence length at `FIG10_BATCH × nodes` global batch, so each
/// node keeps the single-chip smoke batch.
pub fn sweep_workload(nodes: u32) -> Workload {
    Workload::new(
        ModelConfig::by_name(PROFILE_MODEL).expect("smoke model registered"),
        FIG10_BATCH * nodes,
        SEQ,
    )
}

/// Runs `system` over `lo..=hi` nodes on the Superchip fleet.
///
/// # Errors
/// A CLI-ready message when the name is not in the registry (infeasible
/// points are *not* errors — they become typed-reason points).
pub fn sweep_system(system: &str, lo: u32, hi: u32) -> Result<SystemSweep, String> {
    let reg = standard_registry();
    let sys = reg.get(system).ok_or_else(|| {
        format!(
            "unknown system '{system}'; registered systems: {}",
            reg.names().join(", ")
        )
    })?;
    let mut points = Vec::new();
    for nodes in lo..=hi {
        let cluster = presets::gh200_superchip_fleet(nodes);
        let workload = sweep_workload(nodes);
        let outcome = match sys.simulate_profiled(&cluster, nodes, &workload) {
            Err(reason) => Err(reason.to_string()),
            Ok(profile) => {
                let analysis = profile.analyze();
                let gpu = analysis
                    .stalls
                    .iter()
                    .find(|s| s.name == "gpu")
                    .or_else(|| analysis.stalls.iter().find(|s| s.name.starts_with("gpu")))
                    .expect("every schedule registers a gpu resource");
                let comm_exposed_us = gpu.class_us(StallClass::WaitingOnTransfer);
                let r = &profile.report;
                let iter_secs = r.iter_time.as_secs();
                let tokens = (workload.global_batch as u64 * workload.seq) as f64;
                points.push(ScalePoint {
                    nodes,
                    outcome: Ok(ScaleMetrics {
                        iter_time_us: r.iter_time.as_micros(),
                        tflops_per_node: r.tflops,
                        tokens_per_sec: if iter_secs > 0.0 {
                            tokens / iter_secs
                        } else {
                            0.0
                        },
                        gpu_util: r.gpu_util,
                        comm_exposed_us,
                        comm_exposed_frac: if analysis.makespan_us > 0 {
                            comm_exposed_us as f64 / analysis.makespan_us as f64
                        } else {
                            0.0
                        },
                    }),
                });
                continue;
            }
        };
        points.push(ScalePoint { nodes, outcome });
    }
    Ok(SystemSweep {
        name: system.to_string(),
        points,
    })
}

/// Serializes a sweep as the deterministic, versioned
/// [`SCALE_SCHEMA`] JSON document.
///
/// Point objects carry a stable `"name": "nodes-N"` key (so `repro --
/// compare` addresses them by name, not position) and metric keys whose
/// spelling picks the gate direction: `iter-time-us` / `comm-exposed-us`
/// gate lower-is-better, `tflops-per-node` / `tokens_per_sec` / `gpu-util`
/// gate higher-is-better. Infeasible points carry the typed reason as a
/// (non-gating) string; their missing metrics make a feasibility regression
/// fail the gate.
pub fn sweep_json(sweeps: &[SystemSweep], lo: u32, hi: u32) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape_json(SCALE_SCHEMA));
    out.push_str("  \"meta\": {\n");
    let _ = writeln!(out, "    \"model\": \"{}\",", escape_json(PROFILE_MODEL));
    let _ = writeln!(out, "    \"seq\": \"{SEQ}\",");
    let _ = writeln!(out, "    \"batch-per-node\": \"{FIG10_BATCH}\",");
    let _ = writeln!(out, "    \"nodes\": \"{lo}..{hi}\"");
    out.push_str("  },\n");
    out.push_str("  \"systems\": [");
    for (i, sweep) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"name\": \"{}\",\n      \"points\": [",
            escape_json(&sweep.name)
        );
        for (j, p) in sweep.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"name\": \"nodes-{}\", \"nodes\": {}, ",
                p.nodes, p.nodes
            );
            match &p.outcome {
                Ok(m) => {
                    let _ = write!(
                        out,
                        "\"feasible\": true, \"iter-time-us\": {}, \"tflops-per-node\": {}, \
                         \"tokens_per_sec\": {}, \"gpu-util\": {}, \"comm-exposed-us\": {}, \
                         \"comm-exposed-frac\": {}}}",
                        m.iter_time_us,
                        m.tflops_per_node,
                        m.tokens_per_sec,
                        m.gpu_util,
                        m.comm_exposed_us,
                        m.comm_exposed_frac,
                    );
                }
                Err(reason) => {
                    let _ = write!(
                        out,
                        "\"feasible\": false, \"reason\": \"{}\"}}",
                        escape_json(reason)
                    );
                }
            }
        }
        out.push_str("\n      ]\n    }");
    }
    if !sweeps.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Prints the human table for one system's sweep.
pub fn print_sweep(sweep: &SystemSweep) {
    println!("## {}", sweep.name);
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>9} {:>16}",
        "nodes", "iter ms", "TFLOPS/node", "tokens/s", "gpu util", "comm-exposed"
    );
    for p in &sweep.points {
        match &p.outcome {
            Ok(m) => println!(
                "{:>5} {:>10.1} {:>12.1} {:>12.0} {:>8.1}% {:>10.1} ms {:>3.0}%",
                p.nodes,
                m.iter_time_us / 1e3,
                m.tflops_per_node,
                m.tokens_per_sec,
                m.gpu_util * 100.0,
                m.comm_exposed_us as f64 / 1e3,
                m.comm_exposed_frac * 100.0,
            ),
            Err(reason) => println!("{:>5} infeasible: {reason}", p.nodes),
        }
    }
}

/// Entry point for `repro -- scale [--nodes A..B] [--system <name>]`: runs
/// the sweep, prints the tables, and writes the validated snapshot.
///
/// # Errors
/// A CLI-ready message on malformed flags, unknown systems, or I/O failure.
pub fn run(args: &[String]) -> Result<(), String> {
    let (lo, hi) = match crate::journal::parse_flag(args, "nodes", |v| Some(v.to_string()))? {
        Some(spec) => parse_nodes(&spec)?,
        None => DEFAULT_NODES,
    };
    let system = crate::journal::parse_flag(args, "system", |v| Some(v.to_string()))?;
    let (systems, path) = resolve(system.as_deref());

    println!(
        "# Scale sweep: {PROFILE_MODEL}, seq {SEQ}, batch {FIG10_BATCH}/node (weak scaling), \
         {lo}..{hi} GH200 nodes over Slingshot 11"
    );
    let mut sweeps = Vec::new();
    for s in &systems {
        let sweep = sweep_system(s, lo, hi)?;
        println!();
        print_sweep(&sweep);
        sweeps.push(sweep);
    }

    let json = sweep_json(&sweeps, lo, hi);
    if let Err(e) = validate_json(&json) {
        panic!("generated scale output is not valid JSON: {e}");
    }
    std::fs::write(&path, &json).map_err(|e| format!("write failed: {e}"))?;
    println!("\nwrote {path} (schema {SCALE_SCHEMA})");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_system;

    #[test]
    fn parse_nodes_accepts_counts_and_ranges() {
        assert_eq!(parse_nodes("4"), Ok((4, 4)));
        assert_eq!(parse_nodes("1..8"), Ok((1, 8)));
        assert_eq!(parse_nodes("2..2"), Ok((2, 2)));
    }

    #[test]
    fn parse_nodes_rejects_bad_specs() {
        for bad in ["0", "0..4", "8..1", "abc", "1..q", "1..9999", ""] {
            assert!(parse_nodes(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn artifact_names_normalize_underscores() {
        let (systems, path) = resolve(Some("zero_offload"));
        assert_eq!(systems, vec!["zero-offload"]);
        assert_eq!(path, "scale_zero-offload.json");
        let (systems, path) = resolve(None);
        assert_eq!(systems, DEFAULT_SYSTEMS.to_vec());
        assert_eq!(path, "scale_sweep.json");
    }

    #[test]
    fn unknown_system_lists_registry() {
        let msg = sweep_system("no-such-system", 1, 1).unwrap_err();
        assert!(msg.contains("superoffload"), "{msg}");
        assert!(msg.contains("zero-offload"), "{msg}");
    }

    #[test]
    fn single_node_point_matches_the_profile_smoke() {
        // The sweep's n = 1 point is the profile smoke run, bit for bit:
        // same cluster shape, same workload, same report numbers.
        let sweep = sweep_system("superoffload", 1, 1).unwrap();
        let m = sweep.points[0].outcome.as_ref().expect("smoke fits");
        let profile = profile_system("superoffload").unwrap();
        assert_eq!(m.iter_time_us, profile.report.iter_time.as_micros());
        assert_eq!(m.tflops_per_node, profile.report.tflops);
        assert_eq!(m.gpu_util, profile.report.gpu_util);
    }

    #[test]
    fn sweep_json_is_valid_and_deterministic() {
        let sweeps = vec![sweep_system("superoffload", 1, 2).unwrap()];
        let a = sweep_json(&sweeps, 1, 2);
        validate_json(&a).unwrap();
        assert!(a.contains(SCALE_SCHEMA), "{a}");
        assert!(a.contains("\"name\": \"nodes-2\""), "{a}");
        let b = sweep_json(&[sweep_system("superoffload", 1, 2).unwrap()], 1, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_node_points_expose_communication() {
        // ZeRO-3 all-gathers parameters on the critical path at every
        // micro-step: going from one node to two must surface nonzero
        // communication-exposed time and a longer iteration (weak scaling
        // holds per-node batch constant, so comm is the only growth).
        let sweep = sweep_system("zero-3", 1, 2).unwrap();
        let one = sweep.points[0].outcome.as_ref().expect("fits on one node");
        let two = sweep.points[1].outcome.as_ref().expect("fits on two nodes");
        assert!(two.comm_exposed_us > 0, "no comm exposure at 2 nodes");
        assert!(
            two.iter_time_us >= one.iter_time_us,
            "communication should not speed up a weakly scaled iteration: \
             {} < {}",
            two.iter_time_us,
            one.iter_time_us
        );
    }

    #[test]
    fn infeasible_points_carry_typed_reasons() {
        // pytorch-ddp replicates all 16Ψ state per GPU; the smoke model
        // fits, so force a fabric-capacity miss instead: more ranks than
        // the sweep's fleet provides cannot happen through `run` (ranks ==
        // nodes), so exercise the JSON path with a synthetic point.
        let sweeps = vec![SystemSweep {
            name: "demo".into(),
            points: vec![ScalePoint {
                nodes: 2,
                outcome: Err("collective spans 2 ranks but the fabric connects \
                              only 1 GPU endpoints"
                    .into()),
            }],
        }];
        let json = sweep_json(&sweeps, 2, 2);
        validate_json(&json).unwrap();
        assert!(json.contains("\"feasible\": false"), "{json}");
        assert!(json.contains("fabric connects"), "{json}");
    }
}
