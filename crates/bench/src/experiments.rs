//! Simulated-plane experiments: one function per paper table/figure.
//!
//! Each function returns structured rows *and* can print them in a layout
//! that mirrors the paper, so `repro -- <experiment>` output is directly
//! comparable with the published numbers (see `EXPERIMENTS.md`).

use baselines::common::single_chip_cluster;
use baselines::{standard_registry, zero_offload};
use llm_model::workload::Workload;
use llm_model::ModelConfig;
use superchip_sim::prelude::*;
use superchip_sim::{presets, GIB, KIB, MIB};
use superoffload::casting::CastPlacement;
use superoffload::policy::flow_efficiency;
use superoffload::report::TrainReport;
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};
use superoffload::system::{Infeasible, SystemRegistry};
use superoffload::ulysses::{max_sequence_length, simulate_ulysses, SequenceSystem};

/// The default per-GPU batch/seq used by the single-chip experiments.
pub const FIG10_BATCH: u32 = 8;
/// Sequence length used by throughput experiments.
pub const SEQ: u64 = 2048;

fn wl(name: &str, batch: u32) -> Workload {
    Workload::new(
        ModelConfig::by_name(name).unwrap_or_else(|| panic!("unknown model {name}")),
        batch,
        SEQ,
    )
}

fn fmt(r: &TrainReport) -> String {
    if r.feasible() {
        format!("{:.1}", r.tflops)
    } else {
        "OOM".to_string()
    }
}

/// Table 1: node-architecture comparison.
pub fn table1() -> Vec<(String, f64, f64, u32, f64, f64, f64)> {
    [
        presets::dgx2_chip(),
        presets::dgx_a100_chip(),
        presets::gh200_chip(),
    ]
    .into_iter()
    .map(|c| {
        (
            c.name.clone(),
            c.cpu.mem_bandwidth / 1e9,
            c.c2c.peak_bandwidth() / 1e9 * if c.name == "GH200" { 2.0 } else { 1.0 },
            c.cpu.cores,
            c.cpu.peak_flops / 1e12,
            c.gpu.peak_flops / 1e12,
            c.flops_ratio(),
        )
    })
    .collect()
}

/// Prints Table 1.
pub fn print_table1() {
    println!("# Table 1: GPU node comparison");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>12} {:>14}",
        "node", "cpu GB/s", "c2c GB/s", "cores", "cpu TFLOPS", "gpu TFLOPS", "gpu/cpu"
    );
    for (name, cpu_bw, c2c, cores, cpu_tf, gpu_tf, ratio) in table1() {
        println!(
            "{name:<10} {cpu_bw:>10.0} {c2c:>12.0} {cores:>10} {cpu_tf:>12.2} {gpu_tf:>12.1} {ratio:>14.1}"
        );
    }
}

/// Fig. 4: GPU/CPU idle fractions of ZeRO-Offload at its largest feasible
/// model, on one Superchip and on one NVL2 node.
pub fn fig4() -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    let single = single_chip_cluster(&presets::gh200_chip());
    let r1 = zero_offload::simulate(&single, 1, &wl("13B", FIG10_BATCH));
    rows.push((
        "1x GH200 (13B)".to_string(),
        1.0 - r1.gpu_util,
        1.0 - r1.cpu_util,
    ));
    let node = presets::gh200_nvl2_cluster(1);
    let r2 = zero_offload::simulate(&node, 2, &wl("13B", 2 * FIG10_BATCH));
    rows.push((
        "1x NVL2 node (13B)".to_string(),
        1.0 - r2.gpu_util,
        1.0 - r2.cpu_util,
    ));
    rows
}

/// Prints Fig. 4.
pub fn print_fig4() {
    println!("# Fig. 4: ZeRO-Offload idle time (paper: GPU idle 40-50%)");
    println!("{:<22} {:>10} {:>10}", "setting", "gpu idle", "cpu idle");
    for (name, gpu_idle, cpu_idle) in fig4() {
        println!(
            "{name:<22} {:>9.1}% {:>9.1}%",
            gpu_idle * 100.0,
            cpu_idle * 100.0
        );
    }
}

/// Fig. 6: weight-flow efficiency vs uni-directional bandwidth for batch
/// sizes 1..16 at seq 1024.
pub fn fig6() -> Vec<(f64, Vec<(u32, f64)>)> {
    let peak = presets::gh200_chip().gpu.peak_flops;
    [32e9, 64e9, 128e9, 256e9, 450e9, 900e9]
        .into_iter()
        .map(|bw| {
            let per_batch = [1u32, 2, 4, 8, 16]
                .into_iter()
                .map(|b| (b, flow_efficiency(b, 1024, bw, peak)))
                .collect();
            (bw, per_batch)
        })
        .collect()
}

/// Prints Fig. 6.
pub fn print_fig6() {
    println!("# Fig. 6: impact of bandwidth on weight-flow efficiency (seq 1024)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bw GB/s", "b=1", "b=2", "b=4", "b=8", "b=16"
    );
    for (bw, per_batch) in fig6() {
        print!("{:<10.0}", bw / 1e9);
        for (_, eff) in per_batch {
            print!(" {:>7.1}%", eff * 100.0);
        }
        println!();
    }
    println!("(paper: at 450 GB/s, batch >= 4 needed to exceed 60%)");
}

/// Fig. 7: effective C2C bandwidth vs message size.
pub fn fig7() -> Vec<(u64, f64)> {
    let c2c = presets::nvlink_c2c();
    [
        64 * KIB,
        256 * KIB,
        MIB,
        4 * MIB,
        16 * MIB,
        64 * MIB,
        256 * MIB,
        GIB,
        4 * GIB,
    ]
    .into_iter()
    .map(|bytes| (bytes, c2c.effective_bandwidth(bytes) / 1e9))
    .collect()
}

/// Prints Fig. 7.
pub fn print_fig7() {
    println!("# Fig. 7: GH200 C2C bandwidth vs tensor size (saturates ~64 MiB)");
    println!("{:<12} {:>12}", "size", "GB/s");
    for (bytes, bw) in fig7() {
        let label = if bytes >= GIB {
            format!("{} GiB", bytes / GIB)
        } else if bytes >= MIB {
            format!("{} MiB", bytes / MIB)
        } else {
            format!("{} KiB", bytes / KIB)
        };
        println!("{label:<12} {bw:>12.1}");
    }
}

/// Fig. 9: round-trip time of the two casting strategies per tensor size.
pub fn fig9() -> Vec<(u64, f64, f64, f64)> {
    let chip = presets::gh200_chip();
    [
        MIB,
        16 * MIB,
        64 * MIB,
        256 * MIB,
        512 * MIB,
        GIB,
        2 * GIB,
        4 * GIB,
    ]
    .into_iter()
    .map(|bytes| {
        let elems = bytes / 4;
        let gpu = CastPlacement::GpuCastMoveFp32
            .round_trip_time(&chip, elems)
            .as_millis();
        let cpu = CastPlacement::CpuCastMoveFp16Pageable
            .round_trip_time(&chip, elems)
            .as_millis();
        (bytes, gpu, cpu, cpu / gpu)
    })
    .collect()
}

/// Prints Fig. 9.
pub fn print_fig9() {
    println!("# Fig. 9: casting cost, Cast_gpu+Move_fp32 vs Cast_cpu+Move_fp16");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "tensor", "gpu-cast ms", "cpu-cast ms", "ratio"
    );
    for (bytes, gpu_ms, cpu_ms, ratio) in fig9() {
        let label = if bytes >= GIB {
            format!("{} GiB", bytes / GIB)
        } else {
            format!("{} MiB", bytes / MIB)
        };
        println!("{label:<10} {gpu_ms:>14.2} {cpu_ms:>14.2} {ratio:>7.2}x");
    }
    println!("(paper: CPU-side casting takes ~2x longer on Superchips)");
}

/// Models used in the Fig. 10 single-chip sweep.
pub const FIG10_MODELS: [&str; 11] = [
    "1B", "2B", "3B", "4B", "5B", "8B", "10B", "13B", "15B", "20B", "25B",
];

/// Registry names of the systems in the Fig. 10 single-chip sweep, in
/// column order. The last column is SuperOffload; the one before it is the
/// ZeRO-Offload reference the speedup column compares against.
pub const FIG10_SYSTEMS: [&str; 5] = [
    "pytorch-ddp",
    "fsdp-offload",
    "zero-infinity",
    "zero-offload",
    "superoffload",
];

/// Registry names of the systems in the Fig. 11 multi-chip sweep.
pub const FIG11_SYSTEMS: [&str; 5] = [
    "megatron",
    "zero-2",
    "zero-3",
    "zero-offload",
    "superoffload",
];

/// Runs each named system from `reg` on the same workload, in order.
fn sweep(
    reg: &SystemRegistry,
    names: &[&str],
    cluster: &ClusterSpec,
    ranks: u32,
    w: &Workload,
) -> Vec<TrainReport> {
    names
        .iter()
        .map(|n| reg.expect(n).simulate(cluster, ranks, w))
        .collect()
}

/// Fig. 10: single-Superchip throughput, one report per [`FIG10_SYSTEMS`]
/// column.
pub fn fig10() -> Vec<(String, Vec<TrainReport>)> {
    let reg = standard_registry();
    let c = single_chip_cluster(&presets::gh200_chip());
    FIG10_MODELS
        .iter()
        .map(|name| {
            let w = wl(name, FIG10_BATCH);
            (name.to_string(), sweep(&reg, &FIG10_SYSTEMS, &c, 1, &w))
        })
        .collect()
}

/// Prints Fig. 10.
pub fn print_fig10() {
    println!("# Fig. 10: single-Superchip throughput (TFLOPS), batch {FIG10_BATCH}");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "ddp", "fsdp-off", "zero-inf", "zero-off", "super", "vs zoff"
    );
    for (name, reports) in fig10() {
        let so_r = reports.last().expect("superoffload column");
        let zo_r = &reports[reports.len() - 2];
        let speedup = if zo_r.feasible() {
            format!("{:.2}x", so_r.tflops / zo_r.tflops)
        } else {
            "-".into()
        };
        print!("{name:>5}");
        for r in &reports {
            print!(" {:>9}", fmt(r));
        }
        println!(" {speedup:>9}");
    }
}

/// Fig. 11: per-GPU throughput on 4 and 16 Superchips, one report per
/// [`FIG11_SYSTEMS`] column.
pub fn fig11(ranks: u32) -> Vec<(String, Vec<TrainReport>)> {
    assert!(ranks == 4 || ranks == 16, "paper evaluates 4 and 16 GPUs");
    let reg = standard_registry();
    let cluster = presets::gh200_nvl2_cluster(ranks / 2);
    let batch = if ranks == 4 { 16 } else { 128 };
    let models: &[&str] = if ranks == 4 {
        &["5B", "8B", "10B", "13B", "15B", "20B", "25B", "50B"]
    } else {
        &["10B", "20B", "25B", "50B", "80B", "150B", "200B"]
    };
    models
        .iter()
        .map(|name| {
            let w = wl(name, batch);
            (
                name.to_string(),
                sweep(&reg, &FIG11_SYSTEMS, &cluster, ranks, &w),
            )
        })
        .collect()
}

/// Prints Fig. 11 for one rank count.
pub fn print_fig11(ranks: u32) {
    let batch = if ranks == 4 { 16 } else { 128 };
    println!("# Fig. 11: per-GPU throughput (TFLOPS) on {ranks} GH200, batch {batch}");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "megatron", "zero-2", "zero-3", "zero-off", "super"
    );
    for (name, reports) in fig11(ranks) {
        print!("{name:>6}");
        for r in &reports {
            print!(" {:>9}", fmt(r));
        }
        println!();
    }
}

/// A ~30B configuration (the paper's second long-sequence model size).
pub fn model_30b() -> ModelConfig {
    let mut cfg = ModelConfig::new("30B", 36, 8192);
    cfg.max_seq = 1 << 21;
    cfg
}

/// One Fig. 12 ladder entry: `(seq, ulysses MFU, superoffload-ulysses MFU)`.
pub type MfuLadder = Vec<(u64, Option<f64>, Option<f64>)>;

/// One Fig. 12 row: `(model, ranks, ulysses max seq, so-ulysses max seq, MFU ladder)`.
pub type Fig12Row = (String, u32, Option<u64>, Option<u64>, MfuLadder);

/// Fig. 12 rows: per (model, ranks): max sequence for both systems and MFU
/// at a ladder of sequence lengths.
pub fn fig12() -> Vec<Fig12Row> {
    let opts = SuperOffloadOptions::default();
    let cluster = presets::gh200_nvl2_cluster(4);
    let mut cfg13 = ModelConfig::by_name("13B").unwrap();
    cfg13.max_seq = 1 << 21;
    let cfg30 = model_30b();
    let ceiling = 1u64 << 21;

    let mut rows = Vec::new();
    for (cfg, ranks) in [(&cfg13, 4u32), (&cfg13, 8), (&cfg30, 4), (&cfg30, 8)] {
        let max_v = max_sequence_length(
            &cluster,
            ranks,
            cfg,
            SequenceSystem::Ulysses,
            ceiling,
            &opts,
        );
        let max_s = max_sequence_length(
            &cluster,
            ranks,
            cfg,
            SequenceSystem::SuperOffloadUlysses,
            ceiling,
            &opts,
        );
        let ladder: MfuLadder = (0..)
            .map(|i| (16 * 1024u64) << i)
            .take_while(|&s| s <= ceiling)
            .map(|s| {
                let v = simulate_ulysses(&cluster, ranks, cfg, s, SequenceSystem::Ulysses, &opts);
                let o = simulate_ulysses(
                    &cluster,
                    ranks,
                    cfg,
                    s,
                    SequenceSystem::SuperOffloadUlysses,
                    &opts,
                );
                (
                    s,
                    v.feasible().then_some(v.mfu),
                    o.feasible().then_some(o.mfu),
                )
            })
            .collect();
        rows.push((cfg.name.clone(), ranks, max_v, max_s, ladder));
    }
    rows
}

/// Prints Fig. 12.
pub fn print_fig12() {
    println!("# Fig. 12: max sequence length and MFU, Ulysses vs SuperOffload-Ulysses");
    for (model, ranks, max_v, max_s, ladder) in fig12() {
        let f = |x: Option<u64>| {
            x.map(|v| format!("{}k", v / 1024))
                .unwrap_or_else(|| "OOM".into())
        };
        let ratio = match (max_v, max_s) {
            (Some(v), Some(s)) => format!("{:.0}x", s as f64 / v as f64),
            _ => "-".into(),
        };
        println!(
            "\n{model} on {ranks} chips: ulysses max {} | superoffload-ulysses max {} ({ratio} longer)",
            f(max_v),
            f(max_s)
        );
        println!(
            "{:>8} {:>14} {:>14}",
            "seq", "ulysses MFU", "so-ulysses MFU"
        );
        for (s, v, o) in ladder {
            let p = |m: Option<f64>| {
                m.map(|x| format!("{:.1}%", x * 100.0))
                    .unwrap_or_else(|| "OOM".into())
            };
            println!("{:>7}k {:>14} {:>14}", s / 1024, p(v), p(o));
        }
    }
}

/// One Fig. 13 cell: the largest feasible Appendix-A model at a rank
/// count, plus the smallest infeasible model above it and the structured
/// reason it does not fit.
#[derive(Debug, Clone)]
pub struct Fig13Cell {
    /// Largest feasible model name, if any model fits.
    pub best: Option<String>,
    /// `(model, reason)` for the smallest model above `best` that fails.
    pub blocker: Option<(String, Infeasible)>,
}

/// The rank counts of the three Fig. 13 columns.
pub const FIG13_RANKS: [u32; 3] = [1, 4, 16];

/// One Fig. 13 column: walks every registered system up the (sorted)
/// Appendix-A ladder at `ranks` chips, recording the largest feasible model
/// and the structured reason the first larger model fails.
pub fn fig13_column(ranks: u32) -> Vec<(String, Fig13Cell)> {
    let reg = standard_registry();
    let mut ladder = ModelConfig::appendix_a();
    ladder.sort_by_key(|c| c.param_count());
    let cluster = if ranks == 1 {
        single_chip_cluster(&presets::gh200_chip())
    } else {
        presets::gh200_nvl2_cluster(ranks / 2)
    };
    let batch = match ranks {
        1 => FIG10_BATCH,
        4 => 16,
        _ => 128,
    };

    reg.iter()
        .map(|sys| {
            let mut cell = Fig13Cell {
                best: None,
                blocker: None,
            };
            for cfg in &ladder {
                let w = Workload::new(cfg.clone(), batch, SEQ);
                match sys.simulate_traced(&cluster, ranks, &w) {
                    Ok((r, _)) if r.feasible() => {
                        cell.best = Some(cfg.name.clone());
                        cell.blocker = None;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        if cell.blocker.is_none() {
                            cell.blocker = Some((cfg.name.clone(), e));
                        }
                    }
                }
            }
            (sys.name().to_string(), cell)
        })
        .collect()
}

/// Fig. 13: largest trainable Appendix-A model per registered system at
/// 1/4/16 chips, with the structured [`Infeasible`] reason for the first
/// model size that no longer fits.
pub fn fig13() -> Vec<(String, [Fig13Cell; 3])> {
    let columns: Vec<Vec<(String, Fig13Cell)>> =
        FIG13_RANKS.iter().map(|&r| fig13_column(r)).collect();
    columns[0]
        .iter()
        .enumerate()
        .map(|(i, (name, cell1))| {
            (
                name.clone(),
                [
                    cell1.clone(),
                    columns[1][i].1.clone(),
                    columns[2][i].1.clone(),
                ],
            )
        })
        .collect()
}

/// Prints Fig. 13, including why each system's next model size up fails.
pub fn print_fig13() {
    let rows = fig13();
    println!("# Fig. 13: largest trainable model (Appendix-A ladder)");
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "system", "1 chip", "4 chips", "16 chips"
    );
    for (name, cells) in &rows {
        let p = |c: &Fig13Cell| c.best.clone().unwrap_or_else(|| "-".into());
        println!(
            "{name:<22} {:>8} {:>8} {:>8}",
            p(&cells[0]),
            p(&cells[1]),
            p(&cells[2])
        );
    }
    println!("\n## why the next size up does not fit");
    for (name, cells) in &rows {
        for (cell, ranks) in cells.iter().zip(FIG13_RANKS) {
            if let Some((model, reason)) = &cell.blocker {
                println!("{name} @ {ranks} chip(s): {model} infeasible: {reason}");
            }
        }
    }
}

/// Table 2: the ablation ladder at 5B on one Superchip.
pub fn table2() -> Vec<(&'static str, TrainReport)> {
    let chip = presets::gh200_chip();
    let w = wl("5B", FIG10_BATCH);
    vec![
        (
            "baseline (all off)",
            simulate_single_chip(
                &chip,
                &w,
                &SuperOffloadOptions::ablation(false, false, false, false),
            ),
        ),
        (
            "+ GraceAdam",
            simulate_single_chip(
                &chip,
                &w,
                &SuperOffloadOptions::ablation(true, false, false, false),
            ),
        ),
        (
            "+ SAC",
            simulate_single_chip(
                &chip,
                &w,
                &SuperOffloadOptions::ablation(true, true, false, false),
            ),
        ),
        (
            "+ STV",
            simulate_single_chip(
                &chip,
                &w,
                &SuperOffloadOptions::ablation(true, true, true, false),
            ),
        ),
        (
            "+ bucket repart.",
            simulate_single_chip(
                &chip,
                &w,
                &SuperOffloadOptions::ablation(true, true, true, true),
            ),
        ),
    ]
}

/// Prints Table 2.
pub fn print_table2() {
    println!("# Table 2: ablation at 5B (paper: 116.2 -> 128.2 -> 144.5 -> 209.4 -> 238.9)");
    println!("{:<20} {:>10} {:>8}", "configuration", "TFLOPS", "gain");
    let rows = table2();
    let mut prev: Option<f64> = None;
    for (name, r) in rows {
        let gain = prev
            .map(|p| format!("+{:.1}%", (r.tflops / p - 1.0) * 100.0))
            .unwrap_or_else(|| "-".into());
        println!("{name:<20} {:>10.2} {:>8}", r.tflops, gain);
        prev = Some(r.tflops);
    }
}

/// Fig. 15: SuperOffload utilization in the Fig. 4 setting.
pub fn fig15() -> (f64, f64) {
    let chip = presets::gh200_chip();
    let r = simulate_single_chip(
        &chip,
        &wl("13B", FIG10_BATCH),
        &SuperOffloadOptions::default(),
    );
    (r.gpu_util, r.cpu_util)
}

/// Prints Fig. 15.
pub fn print_fig15() {
    let (gpu, cpu) = fig15();
    println!("# Fig. 15: SuperOffload utilization (13B, batch {FIG10_BATCH})");
    println!(
        "gpu busy {:.1}% (idle {:.1}%)",
        gpu * 100.0,
        (1.0 - gpu) * 100.0
    );
    println!("cpu busy {:.1}%", cpu * 100.0);
    println!("(paper: near-complete GPU utilization; compare Fig. 4's 40-50% idle)");
}

/// Fig. 3 (schedule diagram): the ZeRO-Offload timeline at 5B, rendered as
/// an ASCII Gantt chart plus a Chrome-trace JSON for Perfetto.
pub fn fig3_timeline() -> Option<(String, String)> {
    let chip = presets::gh200_chip();
    let c = single_chip_cluster(&chip);
    let (_report, trace) = zero_offload::simulate_traced(&c, 1, &wl("5B", FIG10_BATCH)).ok()?;
    let ascii = trace.render_ascii(100);
    let chrome =
        superchip_sim::chrome_trace::to_chrome_trace(&trace, &baselines::zero_offload::RESOURCES);
    Some((ascii, chrome))
}

/// Fig. 8 (schedule diagram): the SuperOffload STV timeline at 5B.
pub fn fig8_timeline() -> Option<(String, String)> {
    let chip = presets::gh200_chip();
    let (_report, trace) = superoffload::schedule::simulate_single_chip_traced(
        &chip,
        &wl("5B", FIG10_BATCH),
        &SuperOffloadOptions::default(),
    )
    .ok()?;
    let ascii = trace.render_ascii(100);
    let chrome = superchip_sim::chrome_trace::to_chrome_trace(
        &trace,
        &superoffload::schedule::SINGLE_CHIP_RESOURCES,
    );
    Some((ascii, chrome))
}

/// Prints the Fig. 3 vs Fig. 8 schedule comparison and writes Chrome traces
/// next to the working directory.
pub fn print_timelines() {
    println!("# Fig. 3 vs Fig. 8: schedule timelines (5B, batch {FIG10_BATCH}, 4 iterations)");
    if let Some((ascii, chrome)) = fig3_timeline() {
        println!("\n## ZeRO-Offload (synchronize-then-execute) — note the GPU gaps:\n");
        print!("{ascii}");
        if std::fs::write("zero_offload_timeline.json", chrome).is_ok() {
            println!("(chrome trace written to zero_offload_timeline.json)");
        }
    }
    if let Some((ascii, chrome)) = fig8_timeline() {
        println!("\n## SuperOffload (speculation-then-validation) — near-solid GPU row:\n");
        print!("{ascii}");
        if std::fs::write("superoffload_timeline.json", chrome).is_ok() {
            println!("(chrome trace written to superoffload_timeline.json)");
        }
    }
}

/// §4.7 NUMA binding: the penalty of a rank whose CPU affinity lands on a
/// remote Superchip. Returns `(colocated, remote, remote_adaptive)` TFLOPS.
///
/// The first two pin the placement (weights stationary, no GPU retention) so
/// the raw link penalty is visible; the third lets the adaptive planner see
/// the degraded link — it responds by retaining optimizer state on the GPU,
/// largely routing around the bad binding (an emergent behaviour worth
/// reporting alongside the paper's explicit-binding fix).
pub fn numa_penalty() -> (f64, f64, f64) {
    let chip = presets::gh200_chip();
    let w = wl("13B", FIG10_BATCH);
    // The victim of a bad binding is the conventional STE pipeline, whose
    // exposed transfers sit on the critical path (SuperOffload's STV overlap
    // hides even an 18x slower link behind backward + optimizer work).
    let pinned = SuperOffloadOptions {
        retained_buckets: Some(0),
        weight_policy: Some(superoffload::policy::WeightPolicy::Stationary),
        ..SuperOffloadOptions::ablation(false, false, false, false)
    };
    let colocated = simulate_single_chip(&chip, &w, &pinned);

    // An unbound process: every GPU<->CPU transfer crosses the fabric.
    let mut remote_chip = chip.clone();
    remote_chip.c2c = *chip.gpu_cpu_link(superchip_sim::topology::NumaBinding::Remote);
    let remote = simulate_single_chip(&remote_chip, &w, &pinned);
    let remote_adaptive = simulate_single_chip(&remote_chip, &w, &SuperOffloadOptions::default());

    (colocated.tflops, remote.tflops, remote_adaptive.tflops)
}

/// Prints the NUMA-binding experiment.
pub fn print_numa() {
    let (colocated, remote, remote_adaptive) = numa_penalty();
    let link_ratio = superoffload::numa::binding_penalty(
        &presets::gh200_chip(),
        superchip_sim::topology::NumaBinding::Remote,
    );
    println!("# NUMA binding (§4.7): co-located vs scattered rank placement, 13B");
    println!("co-located (NVLink-C2C path):        {colocated:>8.1} TFLOPS");
    println!("scattered  (fabric path, pinned):    {remote:>8.1} TFLOPS");
    println!("scattered  (fabric path, adaptive):  {remote_adaptive:>8.1} TFLOPS");
    println!(
        "raw penalty: {:.2}x slower (link bandwidth ratio {link_ratio:.0}x)",
        colocated / remote.max(1e-9)
    );
    println!("(the paper binds each rank to its local Grace cores to avoid this;");
    println!(" the adaptive planner also partially routes around a bad binding)");
}

/// §4.3 design-choice ablation: throughput as a function of transfer bucket
/// size (the paper picks 64 MiB at the C2C saturation knee).
pub fn bucket_sweep() -> Vec<(u64, f64)> {
    let chip = presets::gh200_chip();
    let w = wl("5B", FIG10_BATCH);
    [MIB, 4 * MIB, 16 * MIB, 64 * MIB, 256 * MIB, GIB]
        .into_iter()
        .map(|bytes| {
            let opts = SuperOffloadOptions {
                bucket_bytes: bytes,
                ..SuperOffloadOptions::default()
            };
            (bytes, simulate_single_chip(&chip, &w, &opts).tflops)
        })
        .collect()
}

/// Prints the bucket-size sweep.
pub fn print_bucket_sweep() {
    println!("# Bucket-size sweep (design choice of §4.3; paper picks 64 MiB)");
    println!("{:<10} {:>10}", "bucket", "TFLOPS");
    let rows = bucket_sweep();
    let best = rows
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::NEG_INFINITY, f64::max);
    // The design point: the smallest bucket already on the throughput
    // plateau — beyond it, bigger buckets only cost staging memory and
    // coarsen the rollback/overlap granularity.
    let knee = rows
        .iter()
        .find(|&&(_, t)| t >= 0.985 * best)
        .expect("non-empty sweep")
        .0;
    for (bytes, tflops) in &rows {
        let label = if *bytes >= GIB {
            format!("{} GiB", bytes / GIB)
        } else {
            format!("{} MiB", bytes / MIB)
        };
        let marker = if *bytes == knee {
            "  <- knee (smallest bucket on the plateau)"
        } else {
            ""
        };
        println!("{label:<10} {tflops:>10.1}{marker}");
    }
}

/// Pipeline-parallelism characterization (background §2.2, built as part of
/// the system inventory): bubble fraction vs micro-batch count, and the
/// capacity pipeline stages buy.
pub fn pipeline_rows() -> Vec<(u32, f64, f64, f64)> {
    let cluster = presets::gh200_nvl2_cluster(2);
    [4u32, 8, 16, 32]
        .into_iter()
        .map(|micro| {
            let w = wl("10B", micro);
            let r = baselines::pipeline::simulate(&cluster, 4, &w);
            (
                micro,
                baselines::pipeline::bubble_fraction(4, micro),
                r.gpu_util,
                r.tflops,
            )
        })
        .collect()
}

/// Prints the system registry: every simulated system the experiment
/// drivers iterate, with a smoke-test report on a small single-chip
/// workload so each row proves the system actually runs.
pub fn print_systems() {
    let reg = standard_registry();
    let c = single_chip_cluster(&presets::gh200_chip());
    let w = wl("3B", FIG10_BATCH);
    println!(
        "# Registered systems ({}); smoke workload: 3B, 1 chip",
        reg.len()
    );
    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "system", "TFLOPS", "peak hbm (GiB)", "peak ddr (GiB)"
    );
    let gib = |b: Option<u64>| match b {
        Some(b) => format!("{:.2}", b as f64 / GIB as f64),
        None => "-".to_string(),
    };
    for sys in reg.iter() {
        match sys.simulate_profiled(&c, 1, &w) {
            Ok(p) => println!(
                "{:<22} {:>10.1} {:>14} {:>14}",
                sys.name(),
                p.report.tflops,
                gib(p.report.peak_bytes("hbm")),
                gib(p.report.peak_bytes("ddr"))
            ),
            Err(e) => println!("{:<22} {:>10} ({e})", sys.name(), "-"),
        }
    }
    println!("(to add a system: implement OffloadSystem and register it in");
    println!(" baselines::registry::standard_registry — see DESIGN.md §6)");
}

/// Prints the pipeline-parallelism characterization.
pub fn print_pipeline() {
    println!("# Pipeline parallelism (background system, 4 stages, 10B)");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "micro-batch", "bubble (anal)", "gpu util (sim)", "TFLOPS"
    );
    for (micro, bubble, util, tflops) in pipeline_rows() {
        println!(
            "{micro:>12} {:>13.1}% {:>13.1}% {tflops:>10.1}",
            bubble * 100.0,
            util * 100.0
        );
    }
    println!("(the simulated utilization tracks 1 - bubble, validating the simulator)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_nodes_with_gh200_ratio() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        let gh = rows.iter().find(|r| r.0 == "GH200").unwrap();
        assert!((gh.6 - 330.0).abs() < 5.0);
        assert_eq!(gh.2, 900.0); // bidirectional C2C
    }

    #[test]
    fn fig4_idle_band_matches_paper() {
        let rows = fig4();
        // Single Superchip: the paper's 40-50% idle band (with margin).
        assert!(
            (0.30..0.60).contains(&rows[0].1),
            "single chip GPU idle {} outside band",
            rows[0].1
        );
        // NVL2 node: per-rank CPU shards halve, so idle shrinks but remains
        // substantial.
        assert!(
            rows[1].1 > 0.15,
            "node GPU idle {} should remain substantial",
            rows[1].1
        );
    }

    #[test]
    fn fig7_is_monotone_and_saturates() {
        let rows = fig7();
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        let last = rows.last().unwrap();
        assert!(last.1 > 400.0, "4 GiB should be near peak, got {}", last.1);
    }

    #[test]
    fn fig9_cpu_cast_about_2x() {
        for (bytes, _, _, ratio) in fig9() {
            if bytes >= 256 * MIB {
                assert!((1.8..3.4).contains(&ratio), "{bytes}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn fig10_superoffload_wins_everywhere_it_fits() {
        for (name, reports) in fig10() {
            let (so_r, others) = reports.split_last().expect("superoffload column");
            assert_eq!(so_r.system, "superoffload");
            assert!(so_r.feasible(), "{name}: SuperOffload OOM");
            for other in others {
                if other.feasible() {
                    assert!(
                        so_r.tflops >= other.tflops * 0.99,
                        "{name}: {} ({:.1}) beat superoffload ({:.1})",
                        other.system,
                        other.tflops,
                        so_r.tflops
                    );
                }
            }
        }
    }

    #[test]
    fn fig13_blockers_are_structured() {
        // Every system tops out below the largest Appendix-A model on one
        // chip and must report a typed reason for the first size that fails.
        for (name, cell) in fig13_column(1) {
            assert!(cell.best.is_some(), "{name}: nothing fits on one chip");
            let (model, reason) = cell
                .blocker
                .as_ref()
                .unwrap_or_else(|| panic!("{name}: no blocker on one chip"));
            assert!(
                !format!("{reason}").is_empty(),
                "{name}: blocker for {model} has an empty reason"
            );
        }
    }

    #[test]
    fn table2_is_monotone_and_roughly_2x() {
        let rows = table2();
        for w in rows.windows(2) {
            assert!(
                w[1].1.tflops >= w[0].1.tflops * 0.98,
                "{} regressed vs {}",
                w[1].0,
                w[0].0
            );
        }
        let total = rows.last().unwrap().1.tflops / rows[0].1.tflops;
        assert!((1.5..2.8).contains(&total), "total gain {total}");
    }

    #[test]
    fn fig15_near_full_utilization() {
        let (gpu, _) = fig15();
        assert!(gpu > 0.8, "gpu util {gpu}");
    }

    #[test]
    fn numa_scatter_hurts_conventional_but_adaptive_recovers() {
        let (colocated, remote, remote_adaptive) = numa_penalty();
        assert!(
            colocated / remote > 1.3,
            "penalty {:.2}",
            colocated / remote
        );
        assert!(remote_adaptive > remote, "adaptive should route around");
    }

    #[test]
    fn timelines_show_the_fig3_vs_fig8_contrast() {
        let (zo_ascii, zo_json) = fig3_timeline().expect("zero-offload timeline");
        let (so_ascii, so_json) = fig8_timeline().expect("superoffload timeline");
        // The ZeRO-Offload GPU row has visible idle gaps; SuperOffload's is
        // nearly solid.
        let gpu_row = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("gpu"))
                .unwrap()
                .to_string()
        };
        let idle = |row: &str| row.chars().filter(|&c| c == '.').count();
        assert!(idle(&gpu_row(&zo_ascii)) > 3 * idle(&gpu_row(&so_ascii)));
        assert!(zo_json.contains("global-norm-sync"));
        assert!(so_json.contains("validate"));
    }
}
