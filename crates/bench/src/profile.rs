//! The `repro -- profile <system>` subcommand: run any registered system
//! on the smoke workload and emit a machine-readable run profile —
//! a Perfetto-loadable Chrome trace (slices + counter tracks) and a
//! versioned JSON metrics snapshot.
//!
//! Both outputs are derived purely from simulated time, so repeated runs
//! are byte-identical (see `tests/telemetry.rs`).

use baselines::common::single_chip_cluster;
use baselines::standard_registry;
use llm_model::workload::Workload;
use llm_model::ModelConfig;
use superchip_sim::presets;
use superchip_sim::telemetry::validate_json;
use superoffload::report::RunProfile;
use superoffload::system::Infeasible;

use crate::experiments::FIG10_BATCH;

/// Model used by the profile smoke workload (matches `repro -- systems`).
pub const PROFILE_MODEL: &str = "3B";

/// Runs `system` (a name from [`standard_registry`]) on the single-chip
/// smoke workload and returns its [`RunProfile`].
///
/// Returns `Err(None)` when the name is unknown, `Err(Some(reason))` when
/// the workload is infeasible on the smoke configuration.
pub fn profile_system(system: &str) -> Result<RunProfile, Option<Infeasible>> {
    let reg = standard_registry();
    let sys = reg.get(system).ok_or(None)?;
    let cluster = single_chip_cluster(&presets::gh200_chip());
    let workload = Workload::new(
        ModelConfig::by_name(PROFILE_MODEL).expect("smoke model registered"),
        FIG10_BATCH,
        crate::experiments::SEQ,
    );
    sys.simulate_profiled(&cluster, 1, &workload).map_err(Some)
}

/// File names for a system's profile outputs:
/// `(chrome trace, metrics snapshot)`.
pub fn profile_paths(system: &str) -> (String, String) {
    (
        format!("profile_{system}.trace.json"),
        format!("profile_{system}.json"),
    )
}

/// Writes `profile_<system>.trace.json` and `profile_<system>.json` to the
/// current directory, self-validating both as JSON before returning the
/// written paths.
pub fn write_profile(system: &str, profile: &RunProfile) -> std::io::Result<(String, String)> {
    let (trace_path, metrics_path) = profile_paths(system);
    let trace = profile.chrome_trace_json();
    let metrics = profile.snapshot_json();
    for (what, body) in [("trace", &trace), ("metrics", &metrics)] {
        if let Err(e) = validate_json(body) {
            panic!("generated {what} output is not valid JSON: {e}");
        }
    }
    std::fs::write(&trace_path, &trace)?;
    std::fs::write(&metrics_path, &metrics)?;
    Ok((trace_path, metrics_path))
}

/// Prints a human summary of a profile: throughput, pool peaks, and the
/// busiest counters.
pub fn print_profile(system: &str, profile: &RunProfile) {
    let r = &profile.report;
    println!("# Profile: {system} ({PROFILE_MODEL}, batch {FIG10_BATCH}, 1 chip)");
    println!(
        "  iter {:.1} ms, {:.1} TFLOPS, gpu util {:.1}%",
        r.iter_time.as_secs() * 1e3,
        r.tflops,
        r.gpu_util * 100.0
    );
    for (pool, peak) in &r.peaks {
        println!(
            "  peak {pool:<4} {:>8.2} GiB",
            *peak as f64 / (1u64 << 30) as f64
        );
    }
    let mut counters: Vec<(&String, &u64)> = profile.metrics.counters().iter().collect();
    counters.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (name, value) in counters.iter().take(8) {
        println!("  counter {name:<28} {value}");
    }
}

/// Normalizes the user-facing spelling (underscores → hyphens, matching
/// `repro -- analyze`) and runs the profile, returning the registry name
/// actually used — so artifacts are always named for the canonical
/// spelling (`profile_zero-offload.json`, never `profile_zero_offload.json`).
///
/// # Errors
/// A CLI-ready message for unknown systems or infeasible workloads.
pub fn resolve_and_profile(system: &str) -> Result<(String, RunProfile), String> {
    let name = crate::analyze::normalize_system_name(system);
    let profile = profile_system(&name).map_err(|e| match e {
        None => {
            let reg = standard_registry();
            let names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
            format!(
                "unknown system '{system}'; registered systems: {}",
                names.join(", ")
            )
        }
        Some(reason) => format!("'{name}' is infeasible on the smoke workload: {reason}"),
    })?;
    Ok((name, profile))
}

/// Entry point for `repro -- profile <system>`: runs, writes, and
/// summarizes the profile. Returns an error message suitable for the CLI
/// on failure.
pub fn run(system: &str) -> Result<(), String> {
    let (name, profile) = resolve_and_profile(system)?;
    print_profile(&name, &profile);
    let (trace_path, metrics_path) =
        write_profile(&name, &profile).map_err(|e| format!("write failed: {e}"))?;
    println!("  wrote {trace_path} (open in https://ui.perfetto.dev)");
    println!(
        "  wrote {metrics_path} (schema {})",
        superchip_sim::telemetry::METRICS_SCHEMA
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_system_lists_registry() {
        let err = profile_system("no-such-system");
        assert!(matches!(err, Err(None)));
        let msg = run("no-such-system").unwrap_err();
        assert!(msg.contains("superoffload"), "{msg}");
        assert!(msg.contains("zero-offload"), "{msg}");
    }

    #[test]
    fn superoffload_profile_has_counters_slices_and_pools() {
        let p = profile_system("superoffload").expect("smoke workload fits");
        let trace = p.chrome_trace_json();
        assert!(trace.contains("\"ph\":\"X\""), "missing slices");
        assert!(trace.contains("\"ph\":\"C\""), "missing counters");
        assert!(trace.contains("mem:hbm"), "missing memory pool track");
        assert!(trace.contains("bw:"), "missing link bandwidth track");
        validate_json(&trace).expect("trace JSON");
        let snap = p.snapshot_json();
        validate_json(&snap).expect("snapshot JSON");
        assert!(snap.contains("\"system\": \"superoffload\""), "{snap}");
        assert!(p.report.peak_bytes("hbm").unwrap_or(0) > 0);
    }

    #[test]
    fn underscore_spellings_normalize_to_registry_names() {
        // The registry is hyphenated; the raw underscore spelling misses…
        assert!(matches!(profile_system("zero_offload"), Err(None)));
        // …but the CLI path normalizes it and names artifacts canonically.
        let (name, profile) = resolve_and_profile("zero_offload").expect("normalized");
        assert_eq!(name, "zero-offload");
        assert!(profile
            .snapshot_json()
            .contains("\"system\": \"zero-offload\""));
        let (trace, metrics) = profile_paths(&name);
        assert_eq!(trace, "profile_zero-offload.trace.json");
        assert_eq!(metrics, "profile_zero-offload.json");
        // Still-unknown names keep reporting the user's own spelling.
        let msg = resolve_and_profile("no_such_system").unwrap_err();
        assert!(msg.contains("unknown system 'no_such_system'"), "{msg}");
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = profile_system("superoffload").unwrap();
        let b = profile_system("superoffload").unwrap();
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }
}
