//! Fig. 13 benchmark: the capacity-search machinery (largest trainable
//! model per system and rank count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use superchip_sim::presets;
use superoffload::schedule::SuperOffloadOptions;
use superoffload::zero_dp;

fn bench_model_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_capacity_search");
    group.sample_size(10);
    let opts = SuperOffloadOptions::default();
    for ranks in [4u32, 16] {
        let cluster = presets::gh200_nvl2_cluster(ranks / 2);
        let batch = if ranks == 4 { 16 } else { 128 };
        group.bench_with_input(
            BenchmarkId::new("superoffload_max_model", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| zero_dp::max_trainable_model(&cluster, ranks, batch, 2048, &opts));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_scale);
criterion_main!(benches);
