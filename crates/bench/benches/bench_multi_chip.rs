//! Fig. 11 benchmark: multi-Superchip schedules (4 and 16 GPUs) for
//! SuperOffload + ZeRO-DP and the distributed baselines.

use baselines::standard_registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload_bench::experiments::FIG11_SYSTEMS;

fn bench_multi_chip(c: &mut Criterion) {
    let reg = standard_registry();
    let mut group = c.benchmark_group("fig11_multi_chip");
    group.sample_size(10);
    for (ranks, batch) in [(4u32, 16u32), (16, 128)] {
        let cluster = presets::gh200_nvl2_cluster(ranks / 2);
        let w = Workload::new(ModelConfig::by_name("10B").unwrap(), batch, 2048);
        for sys_name in FIG11_SYSTEMS {
            let sys = reg.expect(sys_name);
            group.bench_with_input(BenchmarkId::new(sys_name, ranks), &w, |b, w| {
                b.iter(|| sys.simulate(&cluster, ranks, w));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multi_chip);
criterion_main!(benches);
