//! Fig. 11 benchmark: multi-Superchip schedules (4 and 16 GPUs) for
//! SuperOffload + ZeRO-DP and the distributed baselines.

use baselines::zero::ZeroStage;
use baselines::{megatron, zero, zero_offload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload::schedule::SuperOffloadOptions;
use superoffload::zero_dp;

fn bench_multi_chip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_multi_chip");
    group.sample_size(10);
    for (ranks, batch) in [(4u32, 16u32), (16, 128)] {
        let cluster = presets::gh200_nvl2_cluster(ranks / 2);
        let w = Workload::new(ModelConfig::by_name("10B").unwrap(), batch, 2048);
        group.bench_with_input(
            BenchmarkId::new("superoffload", ranks),
            &w,
            |b, w| {
                b.iter(|| zero_dp::simulate_cluster(&cluster, ranks, w, &SuperOffloadOptions::default()));
            },
        );
        group.bench_with_input(BenchmarkId::new("megatron", ranks), &w, |b, w| {
            b.iter(|| megatron::simulate(&cluster, ranks, w));
        });
        group.bench_with_input(BenchmarkId::new("zero-2", ranks), &w, |b, w| {
            b.iter(|| zero::simulate(&cluster, ranks, w, ZeroStage::Two));
        });
        group.bench_with_input(BenchmarkId::new("zero-3", ranks), &w, |b, w| {
            b.iter(|| zero::simulate(&cluster, ranks, w, ZeroStage::Three));
        });
        group.bench_with_input(BenchmarkId::new("zero-offload", ranks), &w, |b, w| {
            b.iter(|| zero_offload::simulate(&cluster, ranks, w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_chip);
criterion_main!(benches);
