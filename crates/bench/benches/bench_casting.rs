//! Fig. 9 benchmark: the three cast-placement strategies' modeled costs,
//! plus real f32<->f16 conversion throughput from the numeric plane.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use superchip_sim::{presets, MIB};
use superoffload::casting::CastPlacement;
use tensorlite::{f16_to_f32_slice, f32_to_f16_slice};

fn bench_casting(c: &mut Criterion) {
    let chip = presets::gh200_chip();

    let mut group = c.benchmark_group("fig9_cast_strategy_model");
    for mb in [16u64, 256, 1024] {
        let elems = mb * MIB / 4;
        for (name, strategy) in [
            ("gpu-cast-fp32", CastPlacement::GpuCastMoveFp32),
            (
                "cpu-cast-fp16-pageable",
                CastPlacement::CpuCastMoveFp16Pageable,
            ),
            ("cpu-cast-fp16-fused", CastPlacement::CpuCastMoveFp16Fused),
        ] {
            group.bench_with_input(BenchmarkId::new(name, mb), &elems, |b, &elems| {
                b.iter(|| strategy.round_trip_time(&chip, elems));
            });
        }
    }
    group.finish();

    // Real software half-precision conversion throughput.
    let mut group = c.benchmark_group("real_f16_cast");
    for n in [1usize << 16, 1 << 20] {
        group.throughput(Throughput::Elements(n as u64));
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 1e-4).sin()).collect();
        group.bench_with_input(BenchmarkId::new("f32_to_f16", n), &data, |b, data| {
            b.iter(|| f32_to_f16_slice(data));
        });
        let halves = f32_to_f16_slice(&data);
        group.bench_with_input(BenchmarkId::new("f16_to_f32", n), &halves, |b, halves| {
            b.iter(|| f16_to_f32_slice(halves));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_casting);
criterion_main!(benches);
