//! Numeric-substrate benchmark: the kernels the miniature GPT is built on
//! (matmul, softmax, layernorm, GELU, cross-entropy), plus serial-vs-parallel
//! comparisons of the pooled GEMM / attention paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llm_model::transformer::{GptConfig, GptModel};
use tensorlite::pool::with_threads;
use tensorlite::{ops, Tensor, XorShiftRng};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(17);

    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b_mat = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b_mat).unwrap());
        });
    }
    group.finish();

    let rows = 256usize;
    let cols = 512usize;
    let x = Tensor::randn(&[rows, cols], 1.0, &mut rng);
    let gamma = vec![1.0f32; cols];
    let beta = vec![0.0f32; cols];
    let targets: Vec<usize> = (0..rows).map(|i| i % cols).collect();

    let mut group = c.benchmark_group("nn_kernels");
    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function("softmax_rows", |b| {
        b.iter(|| ops::softmax_rows(&x).unwrap());
    });
    group.bench_function("layer_norm", |b| {
        b.iter(|| ops::layer_norm(&x, &gamma, &beta, 1e-5).unwrap());
    });
    group.bench_function("gelu", |b| {
        b.iter(|| ops::gelu(&x));
    });
    group.bench_function("cross_entropy", |b| {
        b.iter(|| ops::cross_entropy(&x, &targets).unwrap());
    });
    group.finish();
}

/// Serial (one worker) vs parallel (all workers) GEMM, plus the fused
/// transpose-free variants against their composed equivalents.
fn bench_parallel_gemm(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(23);

    let mut group = c.benchmark_group("matmul_threads");
    for n in [128usize, 256] {
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b_mat = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bench, _| {
            bench.iter(|| with_threads(1, || a.matmul(&b_mat).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| with_threads(0, || a.matmul(&b_mat).unwrap()));
        });
    }
    group.finish();

    let n = 192usize;
    let a = Tensor::randn(&[n, n], 1.0, &mut rng);
    let b_mat = Tensor::randn(&[n, n], 1.0, &mut rng);
    let mut group = c.benchmark_group("fused_vs_composed");
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function("at_composed", |b| {
        b.iter(|| a.transpose().unwrap().matmul(&b_mat).unwrap());
    });
    group.bench_function("at_fused", |b| {
        b.iter(|| a.matmul_at(&b_mat).unwrap());
    });
    group.bench_function("bt_composed", |b| {
        b.iter(|| a.matmul(&b_mat.transpose().unwrap()).unwrap());
    });
    group.bench_function("bt_fused", |b| {
        b.iter(|| a.matmul_bt(&b_mat).unwrap());
    });
    group.finish();
}

/// Serial vs parallel full transformer forward+backward (the per-head
/// attention fan-out plus every pooled kernel underneath it).
fn bench_parallel_attention(c: &mut Criterion) {
    let cfg = GptConfig {
        vocab: 128,
        hidden: 64,
        layers: 2,
        heads: 4,
        max_seq: 64,
    };
    let mut model = GptModel::new(cfg, 99);
    let tokens: Vec<usize> = (0..48).map(|i| (i * 7) % 128).collect();
    let targets: Vec<usize> = (0..48).map(|i| (i * 11 + 3) % 128).collect();

    let mut group = c.benchmark_group("train_step_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tokens.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| {
            with_threads(1, || {
                model.zero_grads();
                let cache = model.forward(&tokens, &targets).unwrap();
                model.backward(&cache).unwrap();
            })
        });
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            with_threads(0, || {
                model.zero_grads();
                let cache = model.forward(&tokens, &targets).unwrap();
                model.backward(&cache).unwrap();
            })
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor_ops,
    bench_parallel_gemm,
    bench_parallel_attention
);
criterion_main!(benches);
