//! Numeric-substrate benchmark: the kernels the miniature GPT is built on
//! (matmul, softmax, layernorm, GELU, cross-entropy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tensorlite::{ops, Tensor, XorShiftRng};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(17);

    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b_mat = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b_mat).unwrap());
        });
    }
    group.finish();

    let rows = 256usize;
    let cols = 512usize;
    let x = Tensor::randn(&[rows, cols], 1.0, &mut rng);
    let gamma = vec![1.0f32; cols];
    let beta = vec![0.0f32; cols];
    let targets: Vec<usize> = (0..rows).map(|i| i % cols).collect();

    let mut group = c.benchmark_group("nn_kernels");
    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function("softmax_rows", |b| {
        b.iter(|| ops::softmax_rows(&x).unwrap());
    });
    group.bench_function("layer_norm", |b| {
        b.iter(|| ops::layer_norm(&x, &gamma, &beta, 1e-5).unwrap());
    });
    group.bench_function("gelu", |b| {
        b.iter(|| ops::gelu(&x));
    });
    group.bench_function("cross_entropy", |b| {
        b.iter(|| ops::cross_entropy(&x, &targets).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
