//! Fig. 7 benchmark: bandwidth-curve evaluation and transfer-pipeline
//! simulation across message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use superchip_sim::prelude::*;
use superchip_sim::{presets, MIB};

fn bench_bandwidth(c: &mut Criterion) {
    let c2c = presets::nvlink_c2c();

    let mut group = c.benchmark_group("fig7_bandwidth_curve");
    for mb in [1u64, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(mb), &(mb * MIB), |b, &bytes| {
            b.iter(|| c2c.effective_bandwidth(bytes));
        });
    }
    group.finish();

    // A bucketized transfer pipeline: N buckets queued on one link direction.
    let mut group = c.benchmark_group("bucketized_transfer_pipeline");
    group.sample_size(20);
    for buckets in [8u32, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buckets),
            &buckets,
            |b, &buckets| {
                b.iter(|| {
                    let mut sim = Simulator::new();
                    let link = sim.add_resource("d2h");
                    let mut prev = None;
                    for _ in 0..buckets {
                        let mut spec = TaskSpec::transfer(link, c2c.transfer_time(64 * MIB));
                        if let Some(p) = prev {
                            spec = spec.after(p);
                        }
                        prev = Some(sim.add_task(spec).unwrap());
                    }
                    sim.run().unwrap().makespan()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
