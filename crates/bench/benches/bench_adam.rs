//! Table 3 benchmark: real optimizer-step latency of the three Adam
//! implementations (PT-CPU-style, CPU-Adam, GraceAdam) across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grace_optim::adam::{AdamConfig, AdamState, AdamStepper, CpuAdam, GraceAdam, NaiveAdam};

fn bench_adam(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam_step");
    group.sample_size(10);
    for &n in &[1_000_000usize, 8_000_000, 32_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        let cfg = AdamConfig::default();
        let steppers: [(&str, Box<dyn AdamStepper>); 3] = [
            ("pt-cpu", Box::new(NaiveAdam)),
            ("cpu-adam", Box::new(CpuAdam)),
            ("grace-adam", Box::new(GraceAdam::default())),
        ];
        for (name, stepper) in steppers {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut p: Vec<f32> = (0..n).map(|i| (i as f32 * 1e-3).sin()).collect();
                let g: Vec<f32> = (0..n).map(|i| (i as f32 * 2e-3).cos() * 0.01).collect();
                let mut state = AdamState::new(n);
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    stepper.step(&cfg, t, &mut p, &g, &mut state);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adam);
criterion_main!(benches);
