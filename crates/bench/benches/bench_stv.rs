//! Fig. 14 / §4.4 benchmark: real training-step latency of the STV engine
//! vs the synchronous reference (both run the same numerics; STV overlaps
//! speculative optimizer work with validation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::transformer::{GptConfig, GptModel};
use llm_model::SyntheticPile;
use superoffload::engine::{EngineConfig, StvEngine, SyncEngine};

fn model() -> GptModel {
    GptModel::new(
        GptConfig {
            vocab: 128,
            hidden: 64,
            layers: 4,
            heads: 4,
            max_seq: 64,
        },
        99,
    )
}

fn bench_stv(c: &mut Criterion) {
    let mut group = c.benchmark_group("stv_vs_sync_train_step");
    group.sample_size(10);
    for buckets in [2usize, 8] {
        let cfg = EngineConfig {
            buckets,
            ..EngineConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("stv", buckets), &cfg, |b, cfg| {
            let mut engine = StvEngine::new(model(), *cfg);
            let mut pile = SyntheticPile::new(128, 3);
            b.iter(|| {
                let batch = pile.next_batch(2, 48);
                engine.train_step(&batch).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sync", buckets), &cfg, |b, cfg| {
            let mut engine = SyncEngine::new(model(), *cfg);
            let mut pile = SyntheticPile::new(128, 3);
            b.iter(|| {
                let batch = pile.next_batch(2, 48);
                engine.train_step(&batch).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stv);
criterion_main!(benches);
