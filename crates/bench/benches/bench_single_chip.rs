//! Fig. 10 benchmark: end-to-end schedule simulation of every system on a
//! single Superchip (measures our simulator's own cost; the throughput
//! numbers themselves come from `repro -- fig10`).

use baselines::{common::single_chip_cluster, ddp, fsdp_offload, zero_infinity, zero_offload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

fn bench_single_chip(c: &mut Criterion) {
    let chip = presets::gh200_chip();
    let cluster = single_chip_cluster(&chip);
    let mut group = c.benchmark_group("fig10_single_chip");
    group.sample_size(10);
    for name in ["1B", "5B", "13B"] {
        let w = Workload::new(ModelConfig::by_name(name).unwrap(), 8, 2048);
        group.bench_with_input(BenchmarkId::new("superoffload", name), &w, |b, w| {
            b.iter(|| simulate_single_chip(&chip, w, &SuperOffloadOptions::default()));
        });
        group.bench_with_input(BenchmarkId::new("zero-offload", name), &w, |b, w| {
            b.iter(|| zero_offload::simulate(&cluster, 1, w));
        });
        group.bench_with_input(BenchmarkId::new("ddp", name), &w, |b, w| {
            b.iter(|| ddp::simulate(&cluster, 1, w));
        });
        group.bench_with_input(BenchmarkId::new("zero-infinity", name), &w, |b, w| {
            b.iter(|| zero_infinity::simulate(&cluster, 1, w));
        });
        group.bench_with_input(BenchmarkId::new("fsdp-offload", name), &w, |b, w| {
            b.iter(|| fsdp_offload::simulate(&cluster, 1, w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_chip);
criterion_main!(benches);
