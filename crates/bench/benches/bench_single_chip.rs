//! Fig. 10 benchmark: end-to-end schedule simulation of every system on a
//! single Superchip (measures our simulator's own cost; the throughput
//! numbers themselves come from `repro -- fig10`).

use baselines::{common::single_chip_cluster, standard_registry};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superoffload_bench::experiments::FIG10_SYSTEMS;

fn bench_single_chip(c: &mut Criterion) {
    let cluster = single_chip_cluster(&presets::gh200_chip());
    let reg = standard_registry();
    let mut group = c.benchmark_group("fig10_single_chip");
    group.sample_size(10);
    for name in ["1B", "5B", "13B"] {
        let w = Workload::new(ModelConfig::by_name(name).unwrap(), 8, 2048);
        for sys_name in FIG10_SYSTEMS {
            let sys = reg.expect(sys_name);
            group.bench_with_input(BenchmarkId::new(sys_name, name), &w, |b, w| {
                b.iter(|| sys.simulate(&cluster, 1, w));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_chip);
criterion_main!(benches);
