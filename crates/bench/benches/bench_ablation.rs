//! Table 2 benchmark: the ablation ladder (each SuperOffload technique
//! toggled cumulatively) plus a bucket-size sweep for the §4.3 design
//! choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::{ModelConfig, Workload};
use superchip_sim::presets;
use superchip_sim::MIB;
use superoffload::schedule::{simulate_single_chip, SuperOffloadOptions};

fn bench_ablation(c: &mut Criterion) {
    let chip = presets::gh200_chip();
    let w = Workload::new(ModelConfig::appendix_a_5b(), 8, 2048);
    let mut group = c.benchmark_group("table2_ablation");
    group.sample_size(10);
    let rows = [
        (
            "baseline",
            SuperOffloadOptions::ablation(false, false, false, false),
        ),
        (
            "grace_adam",
            SuperOffloadOptions::ablation(true, false, false, false),
        ),
        (
            "sac",
            SuperOffloadOptions::ablation(true, true, false, false),
        ),
        (
            "stv",
            SuperOffloadOptions::ablation(true, true, true, false),
        ),
        (
            "repartition",
            SuperOffloadOptions::ablation(true, true, true, true),
        ),
    ];
    for (name, opts) in rows {
        group.bench_function(name, |b| {
            b.iter(|| simulate_single_chip(&chip, &w, &opts));
        });
    }
    group.finish();

    // Bucket-size ablation (the 64 MiB design point of §4.3).
    let mut group = c.benchmark_group("bucket_size_sweep");
    group.sample_size(10);
    for mb in [4u64, 16, 64, 256] {
        let opts = SuperOffloadOptions {
            bucket_bytes: mb * MIB,
            ..SuperOffloadOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(mb), &opts, |b, opts| {
            b.iter(|| simulate_single_chip(&chip, &w, opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
