//! Fig. 12 benchmark: long-sequence schedules (Ulysses vs
//! SuperOffload-Ulysses) across sequence lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_model::ModelConfig;
use superchip_sim::presets;
use superoffload::schedule::SuperOffloadOptions;
use superoffload::ulysses::{simulate_ulysses, SequenceSystem};

fn bench_ulysses(c: &mut Criterion) {
    let cluster = presets::gh200_nvl2_cluster(4);
    let mut cfg = ModelConfig::by_name("13B").unwrap();
    cfg.max_seq = 1 << 21;
    let opts = SuperOffloadOptions::default();

    let mut group = c.benchmark_group("fig12_ulysses");
    group.sample_size(10);
    for seq_k in [32u64, 128, 1024] {
        let seq = seq_k * 1024;
        group.bench_with_input(
            BenchmarkId::new("superoffload-ulysses", seq_k),
            &seq,
            |b, &seq| {
                b.iter(|| {
                    simulate_ulysses(
                        &cluster,
                        8,
                        &cfg,
                        seq,
                        SequenceSystem::SuperOffloadUlysses,
                        &opts,
                    )
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("ulysses", seq_k), &seq, |b, &seq| {
            b.iter(|| simulate_ulysses(&cluster, 8, &cfg, seq, SequenceSystem::Ulysses, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ulysses);
criterion_main!(benches);
