//! Fleet-refactor guardrail: the single-node path must be bit-identical to
//! the pre-refactor single-chip path for every registered system.
//!
//! The lease refactor moved every schedule builder from ambient
//! `CPU_USABLE`/`GPU_USABLE` globals onto per-node
//! [`NodeLease`](superoffload::fleet::NodeLease)s, and the scale sweep runs
//! its `--nodes 1` point on `gh200_superchip_fleet(1)` instead of the
//! single-chip cluster the profile/analyze subcommands use. Those two
//! cluster spellings are structurally identical, so *every* artifact a
//! system emits — metrics snapshot, Chrome trace, analysis snapshot — must
//! come out byte-equal. Any drift here means the refactor changed the
//! modeled numbers, which it must not.

use baselines::common::single_chip_cluster;
use baselines::standard_registry;
use llm_model::workload::Workload;
use llm_model::ModelConfig;
use superchip_sim::presets;
use superoffload_bench::experiments::{FIG10_BATCH, SEQ};
use superoffload_bench::profile::PROFILE_MODEL;

#[test]
fn every_system_is_bit_identical_on_a_one_node_fleet() {
    let reg = standard_registry();
    let workload = Workload::new(
        ModelConfig::by_name(PROFILE_MODEL).expect("smoke model registered"),
        FIG10_BATCH,
        SEQ,
    );
    let chip_cluster = single_chip_cluster(&presets::gh200_chip());
    let fleet = presets::gh200_superchip_fleet(1);
    for sys in reg.iter() {
        let name = sys.name();
        let legacy = sys.simulate_profiled(&chip_cluster, 1, &workload);
        let leased = sys.simulate_profiled(&fleet, 1, &workload);
        match (legacy, leased) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.snapshot_json(),
                    b.snapshot_json(),
                    "{name}: metrics snapshot drifted"
                );
                assert_eq!(
                    a.chrome_trace_json(),
                    b.chrome_trace_json(),
                    "{name}: chrome trace drifted"
                );
                assert_eq!(
                    a.analysis_json(),
                    b.analysis_json(),
                    "{name}: analysis snapshot drifted"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{name}: reason drifted");
            }
            (a, b) => panic!(
                "{name}: feasibility diverged between cluster spellings: \
                 single-chip {:?} vs fleet {:?}",
                a.map(|p| p.report.feasible()),
                b.map(|p| p.report.feasible()),
            ),
        }
    }
}
