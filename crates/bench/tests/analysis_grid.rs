//! Grid test: the analyzer's contracts hold for every system in the
//! standard registry, not just the headline pair.
//!
//! For each registered system that fits the smoke workload, the run's trace
//! is analyzed and the critical-path and stall-attribution invariants are
//! checked: cp length within [max per-resource busy, makespan], stall-class
//! sums bit-exact against the simulator's idle ledger, and a valid,
//! deterministic `superoffload.analysis/v1` snapshot.

use baselines::standard_registry;
use superchip_sim::engine::ResourceId;
use superchip_sim::telemetry::{parse_json, validate_json};
use superoffload_bench::profile::profile_system;

#[test]
fn analyzer_invariants_hold_across_the_registry() {
    let registry = standard_registry();
    assert_eq!(registry.len(), 10, "registry grew; extend this grid");
    let mut feasible = 0;
    for sys in registry.iter() {
        let name = sys.name();
        let profile = match profile_system(name) {
            Ok(p) => p,
            Err(Some(_)) => continue, // infeasible on the smoke workload
            Err(None) => panic!("{name} vanished from the registry"),
        };
        feasible += 1;
        let report = profile.analyze();

        // Critical path sandwiched between max busy and makespan.
        assert!(
            report.cp_len_us <= report.makespan_us,
            "{name}: cp {} > makespan {}",
            report.cp_len_us,
            report.makespan_us
        );
        for (ridx, stalls) in report.stalls.iter().enumerate() {
            assert!(
                report.cp_len_us >= stalls.busy_us,
                "{name}: cp {} < busy {} on {}",
                report.cp_len_us,
                stalls.busy_us,
                stalls.name
            );

            // Stall classes partition the recorded idle bit-exactly.
            let sum: u64 = stalls.by_class.iter().sum();
            assert_eq!(sum, stalls.idle_us, "{name}: class sum on {}", stalls.name);
            assert_eq!(
                stalls.idle_us,
                profile.trace.idle_us(ResourceId::from_index(ridx)),
                "{name}: idle ledger on {}",
                stalls.name
            );
        }

        // Every critical step has zero slack and the steps sum to cp length.
        let step_sum: u64 = report.critical_path.iter().map(|s| s.dur_us).sum();
        assert_eq!(
            step_sum, report.cp_len_us,
            "{name}: path does not telescope"
        );
        for step in &report.critical_path {
            assert_eq!(
                report.slack_us[step.task.index()],
                0,
                "{name}: critical step {} has slack",
                step.label
            );
        }

        // Snapshot is schema-stamped, valid, parseable, and deterministic.
        let json = profile.analysis_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{name}: invalid snapshot: {e}"));
        let doc = parse_json(&json).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("superoffload.analysis/v1"),
            "{name}"
        );
        let again = profile_system(name).unwrap().analysis_json();
        assert_eq!(json, again, "{name}: snapshot not deterministic");
    }
    assert!(
        feasible >= 5,
        "only {feasible} registry systems fit the smoke workload; grid lost coverage"
    );
}
