//! Round-trip tests for the hand-rolled JSON layer on real analysis and
//! metrics snapshots: adversarial string escaping, empty tracks, and deep
//! nesting. `validate_json` must accept everything the emitters produce and
//! `parse_json` must recover the exact values.

use proptest::prelude::*;
use superchip_sim::prelude::*;
use superchip_sim::telemetry::{parse_json, validate_json, JsonValue, MetricsRecorder};

/// A trace whose task labels contain every character class the escaper has
/// to handle: quotes, backslashes, control characters, and non-ASCII.
fn adversarial_trace() -> Trace {
    let mut sim = Simulator::new();
    let gpu = sim.add_resource("gpu \"0\"");
    let labels = [
        "quote \" backslash \\ slash /",
        "control \u{1} tab \t newline \n",
        "unicode µs → 终 𝄞",
        "", // empty label
    ];
    let mut prev = None;
    for (i, label) in labels.iter().enumerate() {
        let mut spec =
            TaskSpec::compute(gpu, SimTime::from_millis(1.0 + i as f64)).with_label(*label);
        if let Some(p) = prev {
            spec = spec.after(p);
        }
        prev = Some(sim.add_task(spec).unwrap());
    }
    sim.run().unwrap()
}

#[test]
fn analysis_snapshot_with_hostile_labels_round_trips() {
    let trace = adversarial_trace();
    let report = analyze(&trace);
    let json = report.to_json(&[
        ("system", "escape \"test\" \\ suite".to_string()),
        ("note", "line1\nline2\t\u{7f}".to_string()),
    ]);
    validate_json(&json).expect("emitter produced invalid JSON");
    let doc = parse_json(&json).expect("validator accepted what parser rejects");
    assert_eq!(
        doc.get("meta")
            .and_then(|m| m.get("system"))
            .and_then(JsonValue::as_str),
        Some("escape \"test\" \\ suite")
    );
    assert_eq!(
        doc.get("meta")
            .and_then(|m| m.get("note"))
            .and_then(JsonValue::as_str),
        Some("line1\nline2\t\u{7f}")
    );
    // The hostile labels survive into the critical-path step list.
    let steps = doc
        .get("critical_path")
        .and_then(|c| c.get("top_steps"))
        .expect("top_steps present");
    let JsonValue::Arr(items) = steps else {
        panic!("top_steps is not an array")
    };
    let labels: Vec<&str> = items
        .iter()
        .filter_map(|s| s.get("label").and_then(JsonValue::as_str))
        .collect();
    assert!(labels.contains(&"unicode µs → 终 𝄞"), "{labels:?}");
    assert!(
        labels.contains(&"control \u{1} tab \t newline \n"),
        "{labels:?}"
    );
}

#[test]
fn metrics_snapshot_with_empty_tracks_round_trips() {
    let mut metrics = MetricsRecorder::new();
    // Declare tracks without ever sampling them: the snapshot must still be
    // valid JSON with empty sample arrays, and counters of zero must emit.
    metrics.sample("empty:track", "unit", SimTime::ZERO, 0.0);
    let mut metrics2 = MetricsRecorder::new();
    metrics2.add("touched.never", 0);
    for m in [&metrics, &metrics2] {
        let json = m.snapshot_json(&[("kind", "empty-case".to_string())]);
        validate_json(&json).unwrap();
        let doc = parse_json(&json).unwrap();
        assert!(doc.get("schema").is_some());
    }
    // A recorder with nothing at all.
    let blank = MetricsRecorder::new().snapshot_json(&[]);
    validate_json(&blank).unwrap();
    parse_json(&blank).unwrap();
}

#[test]
fn deeply_nested_documents_validate_and_parse() {
    // 64 levels of arrays wrapping one analysis-like object.
    let core = r#"{"schema": "superoffload.analysis/v1", "makespan_us": 1}"#;
    let deep = format!("{}{}{}", "[".repeat(64), core, "]".repeat(64));
    validate_json(&deep).unwrap();
    let mut v = &parse_json(&deep).unwrap();
    let mut depth = 0;
    while let JsonValue::Arr(items) = v {
        assert_eq!(items.len(), 1);
        v = &items[0];
        depth += 1;
    }
    assert_eq!(depth, 64);
    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some("superoffload.analysis/v1")
    );

    // Unbalanced nesting must be rejected by both layers, identically.
    let broken = format!("{}{}{}", "[".repeat(5), core, "]".repeat(4));
    assert!(validate_json(&broken).is_err());
    assert!(parse_json(&broken).is_err());
}

/// Arbitrary unicode strings (controls, quotes, surrogate-range code points
/// folded to U+FFFD, astral plane) — the vendored proptest has no regex
/// strategies, so build from raw code points.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x2_0000, 0..40).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// ASCII byte soup heavy in JSON punctuation, for grammar fuzzing.
fn arb_noise() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..128, 0..80)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    /// Any string, however hostile, survives a meta-field round trip
    /// through an analysis snapshot.
    #[test]
    fn arbitrary_meta_strings_round_trip(s in arb_string()) {
        let trace = {
            let mut sim = Simulator::new();
            let r = sim.add_resource("r");
            sim.add_task(TaskSpec::compute(r, SimTime::from_millis(1.0))).unwrap();
            sim.run().unwrap()
        };
        let json = analyze(&trace).to_json(&[("blob", s.clone())]);
        prop_assert!(validate_json(&json).is_ok(), "invalid for {s:?}");
        let doc = parse_json(&json).unwrap();
        let got = doc.get("meta").and_then(|m| m.get("blob")).and_then(JsonValue::as_str);
        prop_assert_eq!(got, Some(s.as_str()));
    }

    /// parse_json and validate_json agree on arbitrary byte soup.
    #[test]
    fn parser_and_validator_agree_on_noise(s in arb_noise()) {
        prop_assert_eq!(parse_json(&s).is_ok(), validate_json(&s).is_ok(), "disagree on {:?}", &s);
    }
}
