//! Property-based tests of the simulator's scheduling invariants.

use proptest::prelude::*;
use superchip_sim::prelude::*;

/// Strategy: a random DAG of up to `n` tasks over `r` resources, where each
/// task may depend only on earlier tasks (guaranteeing acyclicity, the same
/// invariant `add_task` enforces).
fn arb_dag(
    max_tasks: usize,
    resources: usize,
) -> impl Strategy<Value = Vec<(usize, f64, Vec<usize>)>> {
    prop::collection::vec(
        (
            0..resources,
            0.0f64..10.0,
            prop::collection::vec(0usize..max_tasks.max(1), 0..4),
        ),
        1..max_tasks,
    )
    .prop_map(|tasks| {
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, (res, dur, deps))| {
                let deps: Vec<usize> = deps.into_iter().filter(|&d| d < i).collect();
                (res, dur, deps)
            })
            .collect()
    })
}

fn build_and_run(
    dag: &[(usize, f64, Vec<usize>)],
    resources: usize,
) -> (Vec<TaskId>, Vec<ResourceId>, Trace) {
    let mut sim = Simulator::new();
    let rids: Vec<_> = (0..resources)
        .map(|i| sim.add_resource(format!("r{i}")))
        .collect();
    let mut ids = Vec::new();
    for (res, dur, deps) in dag {
        let mut spec = TaskSpec::compute(rids[*res], SimTime::from_millis(*dur));
        for &d in deps {
            spec = spec.after(ids[d]);
        }
        ids.push(sim.add_task(spec).unwrap());
    }
    let trace = sim.run().unwrap();
    (ids, rids, trace)
}

proptest! {
    /// Every task starts no earlier than all of its dependencies finish.
    #[test]
    fn dependencies_respected(dag in arb_dag(40, 4)) {
        let (ids, _rids, trace) = build_and_run(&dag, 4);
        for (i, (_, _, deps)) in dag.iter().enumerate() {
            let start = trace.start_time(ids[i]).unwrap();
            for &d in deps {
                let dep_end = trace.end_time(ids[d]).unwrap();
                prop_assert!(start >= dep_end, "task {i} started before dep {d} ended");
            }
        }
    }

    /// Tasks on the same resource never overlap.
    #[test]
    fn resources_are_serial(dag in arb_dag(40, 3)) {
        let (_, rids, trace) = build_and_run(&dag, 3);
        for (r, &rid) in rids.iter().enumerate() {
            let ivs = trace.intervals_on(rid);
            for w in ivs.windows(2) {
                prop_assert!(w[1].start >= w[0].end,
                    "overlap on resource {r}: [{}, {}) then [{}, {})",
                    w[0].start, w[0].end, w[1].start, w[1].end);
            }
        }
    }

    /// Makespan equals the max task end time and is at least the critical-path
    /// lower bound (sum of durations along any dependency chain).
    #[test]
    fn makespan_bounds(dag in arb_dag(30, 3)) {
        let (ids, _rids, trace) = build_and_run(&dag, 3);
        let max_end = ids.iter().map(|&id| trace.end_time(id).unwrap()).max().unwrap();
        prop_assert_eq!(trace.makespan(), max_end);

        // Critical path: longest dep chain by duration.
        let mut longest = vec![SimTime::ZERO; dag.len()];
        for (i, (_, dur, deps)) in dag.iter().enumerate() {
            let base = deps.iter().map(|&d| longest[d]).max().unwrap_or(SimTime::ZERO);
            longest[i] = base + SimTime::from_millis(*dur);
        }
        let critical = longest.iter().copied().max().unwrap_or(SimTime::ZERO);
        prop_assert!(trace.makespan() >= critical - SimTime::from_nanos(1.0));
    }

    /// Utilization is in [0, 1] and busy + idle == makespan for every resource.
    #[test]
    fn utilization_is_consistent(dag in arb_dag(30, 3)) {
        let (_, _rids, trace) = build_and_run(&dag, 3);
        for stats in trace.all_stats() {
            prop_assert!(stats.utilization >= 0.0 && stats.utilization <= 1.0 + 1e-9);
            let total = (stats.busy + stats.idle).as_secs();
            prop_assert!((total - trace.makespan().as_secs()).abs() < 1e-9);
        }
    }

    /// Simulation runs are deterministic: same DAG, same trace.
    #[test]
    fn runs_are_deterministic(dag in arb_dag(25, 3)) {
        let (ids1, _r1, t1) = build_and_run(&dag, 3);
        let (ids2, _r2, t2) = build_and_run(&dag, 3);
        prop_assert_eq!(t1.makespan(), t2.makespan());
        for (a, b) in ids1.iter().zip(&ids2) {
            prop_assert_eq!(t1.start_time(*a), t2.start_time(*b));
        }
    }

    /// Bandwidth curves are monotone: bigger messages achieve >= bandwidth.
    #[test]
    fn bandwidth_monotone(peak in 1e9f64..1e12, lat in 0.0f64..1e-3,
                          a in 1u64..u32::MAX as u64, b in 1u64..u32::MAX as u64) {
        let curve = BandwidthCurve::new(peak, lat);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(curve.effective_bandwidth(lo) <= curve.effective_bandwidth(hi) + 1e-6);
        prop_assert!(curve.effective_bandwidth(hi) <= peak + 1e-6);
    }

    /// Memory pools never go negative or exceed capacity.
    #[test]
    fn memory_pool_invariants(ops in prop::collection::vec((any::<bool>(), 0u64..1000), 0..100)) {
        let mut pool = MemoryPool::new("p", 10_000);
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let _ = pool.allocate(bytes);
            } else {
                let _ = pool.free(bytes);
            }
            prop_assert!(pool.allocated() <= pool.capacity());
            prop_assert_eq!(pool.allocated() + pool.available(), pool.capacity());
            prop_assert!(pool.peak() >= pool.allocated());
        }
    }
}
