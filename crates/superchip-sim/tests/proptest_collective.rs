//! Property-based tests of the collective cost model over the fabric.
//!
//! These pin the invariants the fleet scale sweep leans on: collective cost
//! must grow with payload, shrink (or hold) as the fabric gets faster, and
//! the ring `all_reduce` must decompose exactly into `reduce_scatter`
//! followed by `all_gather` of the reduced shard.

use proptest::prelude::*;
use superchip_sim::prelude::*;
use superchip_sim::topology::link_gbps;

fn fabric(gbps: f64, latency_us: f64) -> Link {
    link_gbps(LinkKind::Fabric, gbps, latency_us)
}

proptest! {
    /// Cost is monotone (non-decreasing) in payload bytes for every
    /// collective primitive.
    #[test]
    fn cost_monotone_in_bytes(
        ranks in 1u32..64,
        gbps in 1.0f64..500.0,
        latency_us in 0.1f64..100.0,
        small in 0u64..(1 << 32),
        extra in 0u64..(1 << 32),
    ) {
        let coll = CollectiveCost::new(fabric(gbps, latency_us), ranks);
        let large = small + extra;
        prop_assert!(coll.all_reduce(small) <= coll.all_reduce(large));
        prop_assert!(coll.all_gather(small) <= coll.all_gather(large));
        prop_assert!(coll.reduce_scatter(small) <= coll.reduce_scatter(large));
        prop_assert!(coll.all_to_all(small) <= coll.all_to_all(large));
        prop_assert!(coll.broadcast(small) <= coll.broadcast(large));
    }

    /// Per-rank time never increases when the fabric gets faster (same
    /// latency, higher bandwidth).
    #[test]
    fn cost_non_increasing_in_bandwidth(
        ranks in 1u32..64,
        gbps in 1.0f64..400.0,
        boost in 0.0f64..400.0,
        latency_us in 0.1f64..100.0,
        bytes in 0u64..(1 << 34),
    ) {
        let slow = CollectiveCost::new(fabric(gbps, latency_us), ranks);
        let fast = CollectiveCost::new(fabric(gbps + boost, latency_us), ranks);
        prop_assert!(fast.all_reduce(bytes) <= slow.all_reduce(bytes));
        prop_assert!(fast.all_gather(bytes) <= slow.all_gather(bytes));
        prop_assert!(fast.reduce_scatter(bytes) <= slow.reduce_scatter(bytes));
        prop_assert!(fast.all_to_all(bytes) <= slow.all_to_all(bytes));
        prop_assert!(fast.broadcast(bytes) <= slow.broadcast(bytes));
    }

    /// Ring all-reduce is exactly reduce-scatter of the full buffer plus
    /// all-gather of the reduced `total / ranks` shard — the decomposition
    /// ZeRO relies on. Exact `SimTime` equality because both sides compute
    /// `ring_steps(total / ranks)` twice over the same link.
    #[test]
    fn all_reduce_decomposes(
        ranks in 1u32..64,
        gbps in 1.0f64..500.0,
        latency_us in 0.1f64..100.0,
        shard in 0u64..(1 << 28),
    ) {
        let coll = CollectiveCost::new(fabric(gbps, latency_us), ranks);
        // Pick `total` divisible by `ranks` so the shard size is exact.
        let total = shard * ranks as u64;
        let composed = coll.reduce_scatter(total) + coll.all_gather(total / ranks as u64);
        prop_assert_eq!(coll.all_reduce(total), composed);
    }

    /// A single rank never communicates, whatever the fabric looks like.
    #[test]
    fn single_rank_is_free(
        gbps in 1.0f64..500.0,
        latency_us in 0.1f64..100.0,
        bytes in 0u64..(1 << 40),
    ) {
        let coll = CollectiveCost::new(fabric(gbps, latency_us), 1);
        prop_assert_eq!(coll.all_reduce(bytes), SimTime::ZERO);
        prop_assert_eq!(coll.all_gather(bytes), SimTime::ZERO);
        prop_assert_eq!(coll.broadcast(bytes), SimTime::ZERO);
    }
}
