//! Property-based tests of the critical-path / stall-attribution analyzer.
//!
//! Random DAGs of mixed task kinds (compute, transfer, sync gates), tags,
//! and release times are scheduled and analyzed, and the analyzer's core
//! contracts are checked on every sample:
//!
//! * critical-path length never exceeds the makespan;
//! * critical-path length is at least every resource's busy time (resource
//!   serialization is itself a path);
//! * stall-class sums partition each resource's recorded idle bit-exactly;
//! * every task on the critical path has zero slack;
//! * the versioned JSON snapshot is valid and deterministic.

use proptest::prelude::*;
use superchip_sim::prelude::*;
use superchip_sim::telemetry::validate_json;

/// One random task: `(resource, kind 0..4, duration ms, tag 0..3, deps,
/// release ms)`. Dependencies are filtered to earlier indices after the
/// fact, guaranteeing acyclicity.
type ArbTask = (usize, u8, f64, u8, Vec<usize>, f64);

fn arb_dag(max_tasks: usize, resources: usize) -> impl Strategy<Value = Vec<ArbTask>> {
    prop::collection::vec(
        (
            0..resources,
            0u8..4,
            0.0f64..8.0,
            0u8..3,
            prop::collection::vec(0usize..max_tasks.max(1), 0..4),
            0.0f64..5.0,
        ),
        1..max_tasks,
    )
    .prop_map(|tasks| {
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, (res, kind, dur, tag, deps, rel))| {
                let deps: Vec<usize> = deps.into_iter().filter(|&d| d < i).collect();
                (res, kind, dur, tag, deps, rel)
            })
            .collect()
    })
}

fn build_and_run(dag: &[ArbTask], resources: usize) -> Trace {
    let mut sim = Simulator::new();
    let rids: Vec<_> = (0..resources)
        .map(|i| sim.add_resource(format!("r{i}")))
        .collect();
    let mut ids = Vec::new();
    for (res, kind, dur, tag, deps, rel) in dag {
        let rid = rids[*res];
        let dur = SimTime::from_millis(*dur);
        let mut spec = match kind {
            0 => TaskSpec::compute(rid, dur),
            1 => TaskSpec::transfer(rid, dur),
            2 => TaskSpec::collective(rid, dur),
            _ => TaskSpec::sync(rid),
        };
        spec = match tag {
            0 => spec,
            1 => spec.tagged(TaskTag::OptimizerStep),
            _ => spec.tagged(TaskTag::Eviction),
        };
        spec = spec.not_before(SimTime::from_millis(*rel));
        for &d in deps {
            spec = spec.after(ids[d]);
        }
        ids.push(sim.add_task(spec).unwrap());
    }
    sim.run().unwrap()
}

proptest! {
    /// The critical path is sandwiched between the longest per-resource
    /// busy time and the makespan, in exact integer microseconds.
    #[test]
    fn critical_path_is_bounded(dag in arb_dag(40, 4)) {
        let trace = build_and_run(&dag, 4);
        let report = analyze(&trace);
        prop_assert!(report.cp_len_us <= report.makespan_us,
            "cp {} > makespan {}", report.cp_len_us, report.makespan_us);
        for stalls in &report.stalls {
            prop_assert!(report.cp_len_us >= stalls.busy_us,
                "cp {} < busy {} on {}", report.cp_len_us, stalls.busy_us, stalls.name);
        }
    }

    /// Stall attribution partitions each resource's recorded idle exactly:
    /// the five class buckets sum to `idle_us`, which matches the trace's
    /// own busy/idle ledger.
    #[test]
    fn stall_classes_partition_idle(dag in arb_dag(40, 4)) {
        let trace = build_and_run(&dag, 4);
        let report = analyze(&trace);
        let mut total = 0u64;
        for (ridx, stalls) in report.stalls.iter().enumerate() {
            let sum: u64 = stalls.by_class.iter().sum();
            prop_assert_eq!(sum, stalls.idle_us, "class sum mismatch on {}", &stalls.name);
            let rid = ResourceId::from_index(ridx);
            prop_assert_eq!(stalls.idle_us, trace.idle_us(rid), "ledger mismatch on {}", &stalls.name);
            prop_assert_eq!(stalls.busy_us, trace.busy_us(rid));
            total += sum;
        }
        prop_assert_eq!(total, report.total_idle_us());
    }

    /// Every task the analyzer places on the critical path has zero slack,
    /// and the path's step durations sum to the critical-path length.
    #[test]
    fn critical_path_tasks_have_zero_slack(dag in arb_dag(30, 3)) {
        let trace = build_and_run(&dag, 3);
        let report = analyze(&trace);
        let mut step_sum = 0u64;
        for step in &report.critical_path {
            prop_assert_eq!(report.slack_us[step.task.index()], 0,
                "critical step {:?} has nonzero slack", &step.label);
            step_sum += step.dur_us;
        }
        prop_assert_eq!(step_sum, report.cp_len_us);
    }

    /// The analysis snapshot is valid JSON and byte-identical across
    /// repeated runs of the same DAG.
    #[test]
    fn snapshot_is_valid_and_deterministic(dag in arb_dag(25, 3)) {
        let t1 = build_and_run(&dag, 3);
        let t2 = build_and_run(&dag, 3);
        let j1 = analyze(&t1).to_json(&[("system", "proptest".to_string())]);
        let j2 = analyze(&t2).to_json(&[("system", "proptest".to_string())]);
        prop_assert!(validate_json(&j1).is_ok(), "invalid snapshot: {}", &j1);
        prop_assert_eq!(j1, j2);
    }

    /// What-if bounds are sane: halving one resource can never make the run
    /// slower, and the speedup bound is at least 1 for the top bottleneck.
    #[test]
    fn bottleneck_headroom_is_sane(dag in arb_dag(30, 3)) {
        let trace = build_and_run(&dag, 3);
        let report = analyze(&trace);
        for b in &report.bottlenecks {
            prop_assert!(b.speedup_bound >= 1.0 - 1e-9,
                "negative headroom {} on {}", b.speedup_bound, &b.resource);
            prop_assert!(b.critical_path_us <= report.cp_len_us);
            prop_assert!(b.cp_share >= 0.0 && b.cp_share <= 1.0 + 1e-9);
        }
    }
}
