//! Event-driven task-graph scheduler.
//!
//! Training schedules are expressed as DAGs of [`TaskSpec`]s, each bound to a
//! named resource (a GPU stream, a CPU worker pool, one direction of a link).
//! The [`Simulator`] executes the DAG with an event-driven list scheduler:
//! a task starts as soon as all its dependencies have finished *and* its
//! resource is free; resources execute one task at a time, in the order tasks
//! become ready (ties broken by insertion order, so runs are deterministic).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::error::SimError;
use crate::telemetry::MetricsRecorder;
use crate::time::SimTime;
use crate::trace::{Interval, Trace};

/// Opaque identifier of a simulated resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// Index of this resource in registration order (its trace row / tid).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs the id of the resource registered at index `i` (the
    /// inverse of [`ResourceId::index`]). Ids for indices that were never
    /// registered are harmless: every accessor treats them as unknown.
    pub fn from_index(i: usize) -> Self {
        ResourceId(i)
    }
}

/// Opaque identifier of a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Index of this task in submission order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs the id of the task submitted at index `i` (the inverse
    /// of [`TaskId::index`]). Ids for indices that were never submitted are
    /// harmless: every accessor treats them as unknown.
    pub fn from_index(i: usize) -> Self {
        TaskId(i)
    }
}

/// The broad category of work a task represents, used for trace analysis
/// (e.g. "how much of the GPU timeline is data movement?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TaskKind {
    /// Numeric computation (forward, backward, optimizer step).
    Compute,
    /// Data movement over a link.
    Transfer,
    /// Type casting / format conversion.
    Cast,
    /// Collective communication (all-gather, reduce-scatter, ...).
    Collective,
    /// Synchronization / bookkeeping with negligible cost of its own.
    Sync,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskKind::Compute => "compute",
            TaskKind::Transfer => "transfer",
            TaskKind::Cast => "cast",
            TaskKind::Collective => "collective",
            TaskKind::Sync => "sync",
        };
        f.write_str(s)
    }
}

/// Semantic role of a task, beyond its [`TaskKind`], used by the stall
/// attribution in [`crate::analysis`]: idle time bound by a tagged task is
/// charged to the matching stall class (optimizer-exposed,
/// capacity-evicted) instead of the generic waiting-on-* classes.
///
/// Schedule builders opt in with [`TaskSpec::tagged`]; untagged tasks
/// classify by kind alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum TaskTag {
    /// No special role (the default).
    #[default]
    Generic,
    /// An optimizer step (CPU or GPU): idle time waiting on it is the
    /// paper's "exposed optimizer" stall.
    OptimizerStep,
    /// A transfer that exists only because state could not stay resident
    /// (weight streaming, NVMe spill/fill, offloaded optimizer-state
    /// fetch): idle time waiting on it is a capacity-eviction stall.
    Eviction,
}

impl fmt::Display for TaskTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskTag::Generic => "generic",
            TaskTag::OptimizerStep => "optimizer-step",
            TaskTag::Eviction => "eviction",
        };
        f.write_str(s)
    }
}

/// Specification of one task in the graph.
///
/// Build with the kind-specific constructors and chain [`TaskSpec::after`] /
/// [`TaskSpec::with_label`]:
///
/// ```
/// use superchip_sim::prelude::*;
/// let mut sim = Simulator::new();
/// let gpu = sim.add_resource("gpu");
/// let t = sim
///     .add_task(TaskSpec::compute(gpu, SimTime::from_millis(3.0)).with_label("fwd"))
///     .unwrap();
/// let _ = sim
///     .add_task(TaskSpec::compute(gpu, SimTime::from_millis(6.0)).with_label("bwd").after(t))
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct TaskSpec {
    pub(crate) resource: ResourceId,
    pub(crate) duration: SimTime,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) label: String,
    pub(crate) kind: TaskKind,
    pub(crate) tag: TaskTag,
    /// Earliest time the task may start regardless of dependencies.
    pub(crate) not_before: SimTime,
}

impl TaskSpec {
    /// Creates a task of the given kind.
    pub fn new(resource: ResourceId, kind: TaskKind, duration: SimTime) -> Self {
        TaskSpec {
            resource,
            duration,
            deps: Vec::new(),
            label: String::new(),
            kind,
            tag: TaskTag::Generic,
            not_before: SimTime::ZERO,
        }
    }

    /// Creates a compute task.
    pub fn compute(resource: ResourceId, duration: SimTime) -> Self {
        Self::new(resource, TaskKind::Compute, duration)
    }

    /// Creates a data-transfer task.
    pub fn transfer(resource: ResourceId, duration: SimTime) -> Self {
        Self::new(resource, TaskKind::Transfer, duration)
    }

    /// Creates a type-casting task.
    pub fn cast(resource: ResourceId, duration: SimTime) -> Self {
        Self::new(resource, TaskKind::Cast, duration)
    }

    /// Creates a collective-communication task.
    pub fn collective(resource: ResourceId, duration: SimTime) -> Self {
        Self::new(resource, TaskKind::Collective, duration)
    }

    /// Creates a zero-or-tiny-duration synchronization task.
    pub fn sync(resource: ResourceId) -> Self {
        Self::new(resource, TaskKind::Sync, SimTime::ZERO)
    }

    /// Adds a dependency: this task may not start before `dep` finishes.
    #[must_use]
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds several dependencies at once.
    #[must_use]
    pub fn after_all<I: IntoIterator<Item = TaskId>>(mut self, deps: I) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Sets a human-readable label shown in traces.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Constrains the task to start no earlier than `t`.
    #[must_use]
    pub fn not_before(mut self, t: SimTime) -> Self {
        self.not_before = t;
        self
    }

    /// Marks the semantic role of this task for stall attribution (see
    /// [`TaskTag`]).
    #[must_use]
    pub fn tagged(mut self, tag: TaskTag) -> Self {
        self.tag = tag;
        self
    }
}

#[derive(Debug, Clone)]
struct Task {
    spec: TaskSpec,
    /// Number of dependencies not yet finished.
    pending_deps: usize,
    /// Tasks that depend on this one.
    dependents: Vec<TaskId>,
    /// Earliest start implied by finished dependencies.
    ready_at: SimTime,
}

/// Deterministic discrete-event simulator executing a task DAG on resources.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Default)]
pub struct Simulator {
    resources: Vec<String>,
    tasks: Vec<Task>,
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource (a serial execution timeline) under `name`.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a resource in node `node`'s namespace: node 0 keeps the
    /// bare `name` (so single-node schedules are indistinguishable from the
    /// pre-fleet layout, byte for byte), while nodes 1+ get a
    /// `node<N>/<name>` prefix. This is how per-node resource namespaces
    /// share one simulator without colliding.
    pub fn add_node_resource(&mut self, node: u32, name: impl Into<String>) -> ResourceId {
        let name = name.into();
        if node == 0 {
            self.add_resource(name)
        } else {
            self.add_resource(format!("node{node}/{name}"))
        }
    }

    /// Returns the name a resource was registered under.
    pub fn resource_name(&self, id: ResourceId) -> Option<&str> {
        self.resources.get(id.0).map(String::as_str)
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of submitted tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Submits a task to the graph.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownResource`] if the task's resource was never
    /// registered, or [`SimError::UnknownTask`] if a dependency refers to a
    /// task that has not been submitted (dependencies must be submitted
    /// first, which also guarantees the graph is acyclic).
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<TaskId, SimError> {
        if spec.resource.0 >= self.resources.len() {
            return Err(SimError::UnknownResource(spec.resource));
        }
        let id = TaskId(self.tasks.len());
        for &dep in &spec.deps {
            if dep.0 >= self.tasks.len() {
                return Err(SimError::UnknownTask(dep));
            }
        }
        let pending = spec.deps.len();
        for &dep in &spec.deps {
            self.tasks[dep.0].dependents.push(id);
        }
        self.tasks.push(Task {
            ready_at: spec.not_before,
            pending_deps: pending,
            dependents: Vec::new(),
            spec,
        });
        Ok(id)
    }

    /// Executes the task graph and returns the resulting trace.
    ///
    /// The schedule is a deterministic list schedule: among ready tasks
    /// contending for the same resource, the one that became ready earliest
    /// runs first (ties broken by submission order).
    ///
    /// # Errors
    /// Returns [`SimError::DependencyCycle`] if some tasks can never become
    /// ready. (This is defensive: `add_task` already prevents forward
    /// references, so a cycle cannot normally be constructed.)
    pub fn run(&mut self) -> Result<Trace, SimError> {
        self.run_inner(None)
    }

    /// Executes the task graph like [`Simulator::run`] while feeding
    /// telemetry into `rec`.
    ///
    /// The resulting trace is identical to an uninstrumented run. Recorded:
    ///
    /// * `tasks.<kind>` counters (executed task count per [`TaskKind`]),
    /// * `queue-wait:<resource>` tracks (µs a transfer/collective task spent
    ///   waiting for its resource after its dependencies finished — the
    ///   link-contention queueing delay),
    /// * `busy-us:<resource>` and `makespan-us` gauges.
    ///
    /// # Errors
    /// Same failure modes as [`Simulator::run`].
    pub fn run_instrumented(&mut self, rec: &mut MetricsRecorder) -> Result<Trace, SimError> {
        self.run_inner(Some(rec))
    }

    fn run_inner(&mut self, mut rec: Option<&mut MetricsRecorder>) -> Result<Trace, SimError> {
        let n = self.tasks.len();
        // Ready queue: (ready_at, task id), minimum first.
        let mut ready: BinaryHeap<Reverse<(SimTime, TaskId)>> = BinaryHeap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.pending_deps == 0 {
                ready.push(Reverse((t.ready_at, TaskId(i))));
            }
        }

        let mut resource_free = vec![SimTime::ZERO; self.resources.len()];
        let mut intervals: Vec<Option<Interval>> = vec![None; n];
        let mut done = 0usize;

        while let Some(Reverse((ready_at, id))) = ready.pop() {
            let (start, end, resource, kind, tag, label);
            {
                let task = &self.tasks[id.0];
                resource = task.spec.resource;
                kind = task.spec.kind;
                tag = task.spec.tag;
                label = task.spec.label.clone();
                let s = ready_at.max(resource_free[resource.0]);
                start = s;
                end = s + task.spec.duration;
            }
            if let Some(rec) = rec.as_deref_mut() {
                rec.add(&format!("tasks.{kind}"), 1);
                if matches!(kind, TaskKind::Transfer | TaskKind::Collective) {
                    let res_name = &self.resources[resource.0];
                    rec.sample(
                        &format!("queue-wait:{res_name}"),
                        "us",
                        start,
                        start.saturating_sub(ready_at).as_micros(),
                    );
                }
            }
            resource_free[resource.0] = end;
            intervals[id.0] = Some(Interval {
                task: id,
                resource,
                kind,
                tag,
                label,
                start,
                end,
            });
            done += 1;

            let dependents = self.tasks[id.0].dependents.clone();
            for dep_id in dependents {
                let t = &mut self.tasks[dep_id.0];
                t.ready_at = t.ready_at.max(end);
                t.pending_deps -= 1;
                if t.pending_deps == 0 {
                    ready.push(Reverse((t.ready_at, dep_id)));
                }
            }
        }

        if done != n {
            return Err(SimError::DependencyCycle {
                unscheduled: n - done,
            });
        }

        let intervals: Vec<Interval> = intervals.into_iter().map(Option::unwrap).collect();
        let deps: Vec<Vec<TaskId>> = self.tasks.iter().map(|t| t.spec.deps.clone()).collect();
        let not_before: Vec<SimTime> = self.tasks.iter().map(|t| t.spec.not_before).collect();
        let trace = Trace::new(self.resources.clone(), intervals, deps, not_before);
        if let Some(rec) = rec {
            let mut busy = vec![SimTime::ZERO; self.resources.len()];
            for iv in trace.intervals() {
                busy[iv.resource.0] += iv.duration();
            }
            for (name, b) in self.resources.iter().zip(&busy) {
                rec.set_gauge(&format!("busy-us:{name}"), b.as_micros());
            }
            rec.set_gauge("makespan-us", trace.makespan().as_micros());
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn single_task_runs_at_zero() {
        let mut sim = Simulator::new();
        let r = sim.add_resource("gpu");
        let t = sim.add_task(TaskSpec::compute(r, ms(5.0))).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.start_time(t).unwrap(), SimTime::ZERO);
        assert_eq!(trace.end_time(t).unwrap(), ms(5.0));
        assert_eq!(trace.makespan(), ms(5.0));
    }

    #[test]
    fn dependency_serializes_across_resources() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let link = sim.add_resource("link");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(2.0))).unwrap();
        let b = sim
            .add_task(TaskSpec::transfer(link, ms(3.0)).after(a))
            .unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.start_time(b).unwrap(), ms(2.0));
        assert_eq!(trace.makespan(), ms(5.0));
    }

    #[test]
    fn independent_tasks_overlap_on_distinct_resources() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let cpu = sim.add_resource("cpu");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(4.0))).unwrap();
        let b = sim.add_task(TaskSpec::compute(cpu, ms(4.0))).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.start_time(a).unwrap(), SimTime::ZERO);
        assert_eq!(trace.start_time(b).unwrap(), SimTime::ZERO);
        assert_eq!(trace.makespan(), ms(4.0));
    }

    #[test]
    fn same_resource_serializes() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(4.0))).unwrap();
        let b = sim.add_task(TaskSpec::compute(gpu, ms(4.0))).unwrap();
        let trace = sim.run().unwrap();
        let (s1, s2) = (trace.start_time(a).unwrap(), trace.start_time(b).unwrap());
        assert!(s1 == SimTime::ZERO && s2 == ms(4.0));
        assert_eq!(trace.makespan(), ms(8.0));
    }

    #[test]
    fn not_before_delays_start() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let t = sim
            .add_task(TaskSpec::compute(gpu, ms(1.0)).not_before(ms(10.0)))
            .unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.start_time(t).unwrap(), ms(10.0));
    }

    #[test]
    fn fan_in_waits_for_all_deps() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let cpu = sim.add_resource("cpu");
        let link = sim.add_resource("link");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(2.0))).unwrap();
        let b = sim.add_task(TaskSpec::compute(cpu, ms(7.0))).unwrap();
        let c = sim
            .add_task(TaskSpec::transfer(link, ms(1.0)).after(a).after(b))
            .unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.start_time(c).unwrap(), ms(7.0));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut sim = Simulator::new();
        let err = sim
            .add_task(TaskSpec::compute(ResourceId(42), ms(1.0)))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownResource(_)));
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let err = sim
            .add_task(TaskSpec::compute(gpu, ms(1.0)).after(TaskId(7)))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownTask(_)));
    }

    #[test]
    fn ready_order_is_fifo_among_ties() {
        // Two tasks ready at t=0 on the same resource: submission order wins.
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let first = sim
            .add_task(TaskSpec::compute(gpu, ms(1.0)).with_label("first"))
            .unwrap();
        let second = sim
            .add_task(TaskSpec::compute(gpu, ms(1.0)).with_label("second"))
            .unwrap();
        let trace = sim.run().unwrap();
        assert!(trace.start_time(first).unwrap() < trace.start_time(second).unwrap());
    }

    #[test]
    fn diamond_dag_schedules_correctly() {
        // a -> (b, c) -> d ; b and c on different resources overlap.
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let cpu = sim.add_resource("cpu");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(1.0))).unwrap();
        let b = sim
            .add_task(TaskSpec::compute(gpu, ms(5.0)).after(a))
            .unwrap();
        let c = sim
            .add_task(TaskSpec::compute(cpu, ms(3.0)).after(a))
            .unwrap();
        let d = sim.add_task(TaskSpec::sync(gpu).after(b).after(c)).unwrap();
        let trace = sim.run().unwrap();
        assert_eq!(trace.end_time(d).unwrap(), ms(6.0));
        assert_eq!(trace.makespan(), ms(6.0));
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_records() {
        use crate::telemetry::MetricsRecorder;
        let build = |sim: &mut Simulator| {
            let gpu = sim.add_resource("gpu");
            let link = sim.add_resource("link");
            let a = sim.add_task(TaskSpec::compute(gpu, ms(2.0))).unwrap();
            let b = sim
                .add_task(TaskSpec::transfer(link, ms(3.0)).after(a))
                .unwrap();
            // Second transfer queued behind the first: 2 ms of queueing.
            sim.add_task(TaskSpec::transfer(link, ms(1.0)).after(a))
                .unwrap();
            (a, b)
        };
        let mut plain = Simulator::new();
        build(&mut plain);
        let reference = plain.run().unwrap();

        let mut sim = Simulator::new();
        build(&mut sim);
        let mut rec = MetricsRecorder::new();
        let trace = sim.run_instrumented(&mut rec).unwrap();

        assert_eq!(trace.makespan(), reference.makespan());
        assert_eq!(rec.counter("tasks.compute"), 1);
        assert_eq!(rec.counter("tasks.transfer"), 2);
        let waits = rec.track("queue-wait:link").unwrap();
        assert_eq!(waits.samples.len(), 2);
        assert_eq!(waits.samples[0].1, 0.0); // first transfer starts immediately
        assert!((waits.samples[1].1 - 3000.0).abs() < 1e-9); // queued behind it
        assert_eq!(rec.gauge("busy-us:gpu"), Some(2000.0));
        assert_eq!(rec.gauge("makespan-us"), Some(6000.0));
    }

    #[test]
    fn kind_display() {
        assert_eq!(TaskKind::Compute.to_string(), "compute");
        assert_eq!(TaskKind::Collective.to_string(), "collective");
    }

    #[test]
    fn node_resources_namespace_by_node() {
        let mut sim = Simulator::new();
        let g0 = sim.add_node_resource(0, "gpu");
        let g1 = sim.add_node_resource(1, "gpu");
        let g2 = sim.add_node_resource(2, "gpu");
        // Node 0 keeps the bare name — bit-identical to pre-fleet layouts.
        assert_eq!(sim.resource_name(g0), Some("gpu"));
        assert_eq!(sim.resource_name(g1), Some("node1/gpu"));
        assert_eq!(sim.resource_name(g2), Some("node2/gpu"));
        assert_eq!(sim.resource_count(), 3);
    }
}
