//! Interconnect models with message-size-dependent effective bandwidth.
//!
//! The paper's Fig. 7 measures GH200 C2C bandwidth as a function of tensor
//! size: small transfers achieve as little as ~50 GB/s while large transfers
//! saturate near the link peak, with the knee around 64 MiB. We model this
//! with the classic latency/bandwidth (alpha-beta) cost:
//!
//! `time(bytes) = latency + bytes / peak`
//!
//! which yields `effective_bw(bytes) = bytes / time(bytes)`, a curve that
//! rises with message size and saturates exactly like the measurement.

use std::fmt;

use crate::telemetry::MetricsRecorder;
use crate::time::SimTime;

/// The physical technology of a link (affects presets, not the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LinkKind {
    /// NVLink Chip-2-Chip (GPU↔CPU inside a Superchip).
    NvlinkC2c,
    /// PCI Express (GPU↔CPU in loosely-coupled nodes).
    Pcie,
    /// NVLink between GPUs inside a node.
    Nvlink,
    /// Inter-node fabric (e.g. HPE Slingshot).
    Fabric,
    /// CPU memory bus (DDR/LPDDR).
    MemoryBus,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::NvlinkC2c => "nvlink-c2c",
            LinkKind::Pcie => "pcie",
            LinkKind::Nvlink => "nvlink",
            LinkKind::Fabric => "fabric",
            LinkKind::MemoryBus => "memory-bus",
        };
        f.write_str(s)
    }
}

/// An alpha-beta bandwidth curve: fixed per-message latency plus a
/// byte-proportional term at peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthCurve {
    /// Peak (asymptotic) uni-directional bandwidth in bytes/second.
    pub peak_bytes_per_sec: f64,
    /// Fixed per-message latency in seconds.
    pub latency_secs: f64,
}

impl BandwidthCurve {
    /// Creates a curve from a peak bandwidth (bytes/s) and latency (s).
    ///
    /// # Panics
    /// Panics if `peak` is not strictly positive or `latency` is negative.
    pub fn new(peak_bytes_per_sec: f64, latency_secs: f64) -> Self {
        assert!(peak_bytes_per_sec > 0.0, "peak bandwidth must be positive");
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        BandwidthCurve {
            peak_bytes_per_sec,
            latency_secs,
        }
    }

    /// Time to move `bytes` over the link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.latency_secs + bytes as f64 / self.peak_bytes_per_sec)
    }

    /// Effective bandwidth (bytes/s) achieved for a message of `bytes`.
    ///
    /// Returns 0 for empty messages.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_time(bytes).as_secs()
    }

    /// Smallest message size (bytes) that achieves `fraction` of peak
    /// bandwidth (e.g. `0.9` for the saturation knee).
    ///
    /// # Panics
    /// Panics unless `0 < fraction < 1`.
    pub fn saturation_size(&self, fraction: f64) -> u64 {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        // bytes / (lat + bytes/peak) = fraction * peak
        // => bytes = fraction * lat * peak / (1 - fraction)
        (fraction * self.latency_secs * self.peak_bytes_per_sec / (1.0 - fraction)).ceil() as u64
    }
}

/// A physical interconnect: a bandwidth curve plus host-memory interaction
/// effects (pinned vs pageable staging).
///
/// The paper (§4.5) observes that a transfer-then-cast pipeline stages
/// through an *unpinned* temporary buffer on the Grace CPU, falling off the
/// DMA fast path. [`Link::transfer_time_pageable`] models that penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Technology of the link.
    pub kind: LinkKind,
    /// Cost curve for pinned (DMA) transfers.
    pub curve: BandwidthCurve,
    /// Multiplier (< 1) applied to peak bandwidth when staging through
    /// pageable host memory.
    pub pageable_factor: f64,
}

impl Link {
    /// Creates a link with the given kind and pinned-path curve.
    ///
    /// The pageable penalty defaults to `0.25` (~112 GB/s on C2C),
    /// consistent with published GH200 measurements of pageable-vs-pinned
    /// host staging and with the paper's Fig. 9 casting-cost gap.
    pub fn new(kind: LinkKind, curve: BandwidthCurve) -> Self {
        Link {
            kind,
            curve,
            pageable_factor: 0.25,
        }
    }

    /// Overrides the pageable-staging bandwidth multiplier.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    #[must_use]
    pub fn with_pageable_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        self.pageable_factor = factor;
        self
    }

    /// Time to move `bytes` via the pinned (DMA) path.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.curve.transfer_time(bytes)
    }

    /// Time to move `bytes` when staging through pageable host memory.
    pub fn transfer_time_pageable(&self, bytes: u64) -> SimTime {
        let slowed = BandwidthCurve {
            peak_bytes_per_sec: self.curve.peak_bytes_per_sec * self.pageable_factor,
            latency_secs: self.curve.latency_secs,
        };
        slowed.transfer_time(bytes)
    }

    /// Effective pinned-path bandwidth for a message of `bytes`.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        self.curve.effective_bandwidth(bytes)
    }

    /// Peak uni-directional bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.curve.peak_bytes_per_sec
    }

    /// Per-message latency.
    pub fn latency(&self) -> SimTime {
        SimTime::from_secs(self.curve.latency_secs)
    }

    /// Records one executed transfer of `bytes` over the interval
    /// `[start, end]` into `rec` under track name `track` (typically the
    /// resource name, e.g. `c2c-d2h`):
    ///
    /// * a `bw:<track>` counter track (GB/s) sampling the *achieved*
    ///   bandwidth at `start` and dropping to 0 at `end`, so Perfetto shows
    ///   a bandwidth-over-time staircase,
    /// * `bytes:<track>` and `transfers:<track>` counters.
    ///
    /// Zero-duration transfers record the counters but no bandwidth sample.
    pub fn record_transfer(
        &self,
        rec: &mut MetricsRecorder,
        track: &str,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) {
        rec.add(&format!("transfers:{track}"), 1);
        rec.add(&format!("bytes:{track}"), bytes);
        let dur = end.saturating_sub(start).as_secs();
        if dur > 0.0 {
            let gbps = bytes as f64 / dur / 1e9;
            rec.sample(&format!("bw:{track}"), "GB/s", start, gbps);
            rec.sample(&format!("bw:{track}"), "GB/s", end, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GB, MIB};

    fn c2c() -> BandwidthCurve {
        // 450 GB/s uni-directional peak, ~18 us latency: saturates near 64 MiB.
        BandwidthCurve::new(450e9, 18e-6)
    }

    #[test]
    fn bandwidth_rises_with_size_and_saturates() {
        let c = c2c();
        let small = c.effective_bandwidth(256 * 1024);
        let medium = c.effective_bandwidth(8 * MIB);
        let large = c.effective_bandwidth(GB);
        assert!(small < medium && medium < large);
        assert!(large > 0.95 * c.peak_bytes_per_sec);
        // Small tensors drop well below peak, as in Fig. 7.
        assert!(small < 0.1 * c.peak_bytes_per_sec);
    }

    #[test]
    fn saturation_knee_near_64_mib() {
        let c = c2c();
        let knee = c.saturation_size(0.9);
        assert!(
            knee > 32 * MIB && knee < 128 * MIB,
            "knee was {} MiB",
            knee / MIB
        );
    }

    #[test]
    fn transfer_time_is_affine_in_bytes() {
        let c = c2c();
        let t1 = c.transfer_time(MIB).as_secs();
        let t2 = c.transfer_time(2 * MIB).as_secs();
        let t3 = c.transfer_time(3 * MIB).as_secs();
        assert!(((t2 - t1) - (t3 - t2)).abs() < 1e-15);
    }

    #[test]
    fn zero_bytes_zero_bandwidth() {
        assert_eq!(c2c().effective_bandwidth(0), 0.0);
        assert_eq!(c2c().transfer_time(0).as_secs(), 18e-6);
    }

    #[test]
    fn pageable_path_is_slower() {
        let link = Link::new(LinkKind::NvlinkC2c, c2c());
        let pinned = link.transfer_time(256 * MIB);
        let pageable = link.transfer_time_pageable(256 * MIB);
        assert!(pageable > pinned * 2.0);
    }

    #[test]
    #[should_panic(expected = "peak bandwidth must be positive")]
    fn zero_peak_rejected() {
        let _ = BandwidthCurve::new(0.0, 1e-6);
    }

    #[test]
    fn saturation_size_monotone_in_fraction() {
        let c = c2c();
        assert!(c.saturation_size(0.5) < c.saturation_size(0.9));
        assert!(c.saturation_size(0.9) < c.saturation_size(0.99));
    }

    #[test]
    fn record_transfer_samples_achieved_bandwidth() {
        let link = Link::new(LinkKind::NvlinkC2c, c2c());
        let mut rec = MetricsRecorder::new();
        let start = SimTime::from_micros(100.0);
        let end = start + SimTime::from_secs(0.001); // 1 ms for 100 MB -> 100 GB/s
        link.record_transfer(&mut rec, "c2c-d2h", start, end, 100_000_000);
        assert_eq!(rec.counter("transfers:c2c-d2h"), 1);
        assert_eq!(rec.counter("bytes:c2c-d2h"), 100_000_000);
        let track = rec.track("bw:c2c-d2h").unwrap();
        assert_eq!(track.unit, "GB/s");
        assert_eq!(track.samples.len(), 2);
        assert!((track.samples[0].1 - 100.0).abs() < 1e-9);
        assert_eq!(track.samples[1].1, 0.0);
        assert!(track.samples[0].0 < track.samples[1].0);
    }

    #[test]
    fn zero_duration_transfer_records_counters_only() {
        let link = Link::new(LinkKind::NvlinkC2c, c2c());
        let mut rec = MetricsRecorder::new();
        let t = SimTime::from_micros(5.0);
        link.record_transfer(&mut rec, "x", t, t, 64);
        assert_eq!(rec.counter("bytes:x"), 64);
        assert!(rec.track("bw:x").is_none());
    }

    #[test]
    fn link_kind_display() {
        assert_eq!(LinkKind::NvlinkC2c.to_string(), "nvlink-c2c");
        assert_eq!(LinkKind::Fabric.to_string(), "fabric");
    }
}
