//! Simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in seconds.
///
/// `SimTime` is a thin newtype over `f64` that provides a total order (via
/// [`f64::total_cmp`]) so it can live in priority queues, and arithmetic that
/// keeps simulation code readable.
///
/// ```
/// use superchip_sim::SimTime;
/// let a = SimTime::from_micros(500.0);
/// let b = SimTime::from_millis(1.5);
/// assert_eq!((a + b).as_secs(), 0.002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero time / zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative (simulated time is monotone).
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Returns the time in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the time rounded to the nearest integer microsecond.
    ///
    /// Trace and telemetry output uses integer timestamps so emitted files
    /// are stable across runs (no `2000.0000000000002` float jitter).
    pub fn as_micros_rounded(self) -> u64 {
        (self.0 * 1e6).round() as u64
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Saturating subtraction: returns zero instead of going negative.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics in debug builds if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_millis(1.0).as_secs(), 1e-3);
        assert_eq!(SimTime::from_micros(1.0).as_secs(), 1e-6);
        assert_eq!(SimTime::from_nanos(1.0).as_secs(), 1e-9);
        assert_eq!(SimTime::from_secs(2.0).as_millis(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.5),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 2.0).as_secs(), 4.0);
        assert_eq!((a / 2.0).as_secs(), 1.0);
        assert_eq!(a / b, 4.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn micros_round_to_integer() {
        assert_eq!(SimTime::from_secs(0.002).as_micros_rounded(), 2000);
        assert_eq!(SimTime::from_micros(2000.4).as_micros_rounded(), 2000);
        assert_eq!(SimTime::from_micros(2000.6).as_micros_rounded(), 2001);
        assert_eq!(SimTime::ZERO.as_micros_rounded(), 0);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_millis(2.0).to_string(), "2.000ms");
        assert_eq!(SimTime::from_micros(3.0).to_string(), "3.000us");
        assert_eq!(SimTime::from_nanos(40.0).to_string(), "40.0ns");
    }
}
