//! Post-hoc critical-path and stall analysis of executed traces.
//!
//! The paper's evaluation is an *attribution* story: every speedup is
//! explained by showing where GPU idle time goes (PCIe/C2C transfers, CPU
//! optimizer steps, synchronization bubbles) and which technique removes
//! each stall class. This module reconstructs that story from a finished
//! [`Trace`]:
//!
//! * **Critical path** — the longest chain of task durations through the
//!   executed DAG, where edges are the submitted dependencies *plus* the
//!   serialization order on each resource. Its length bounds the makespan
//!   from below; per-task slack says how much any task could stretch
//!   without lengthening that chain.
//! * **Stall attribution** — every idle microsecond of every resource is
//!   charged to exactly one [`StallClass`] by walking the *binding chain*:
//!   the task that eventually ran was bound by some predecessor, which was
//!   bound by another, and so on; each link's execution window classifies
//!   the idle time it covers. Class durations sum exactly (in the
//!   integer-microsecond ledger of [`Trace::idle_us`]) to the resource's
//!   idle time.
//! * **Bottleneck ranking** — resources ordered by their share of the
//!   critical path, each with a what-if headroom estimate: the speedup
//!   bound if that resource ran 2× faster, from a critical-path recompute
//!   with its durations halved (schedule shape held fixed).
//!
//! All arithmetic is on integer microseconds ([`SimTime::as_micros_rounded`],
//! the same quantization every export uses), so reports are byte-stable and
//! the attribution invariants hold exactly, not within epsilon.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::engine::{ResourceId, TaskId, TaskKind, TaskTag};
use crate::telemetry::escape_json;
use crate::trace::{Interval, Trace};

/// Schema identifier stamped into [`AnalysisReport::to_json`] output.
pub const ANALYSIS_SCHEMA: &str = "superoffload.analysis/v1";

/// Closed taxonomy of idle time. Every idle microsecond of every resource
/// falls into exactly one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallClass {
    /// Bound by a data movement task in flight — a transfer, cast, or
    /// collective. Collective wait is the "communication-exposed" time the
    /// scale sweep reports per node count.
    WaitingOnTransfer,
    /// Bound by compute on another resource (a synchronization bubble).
    WaitingOnDependency,
    /// Bound by a transfer that exists only because state could not stay
    /// resident (tagged [`TaskTag::Eviction`]).
    CapacityEvicted,
    /// Bound by an optimizer step (tagged [`TaskTag::OptimizerStep`]) —
    /// the paper's "exposed optimizer" stall.
    OptimizerExposed,
    /// Before the causal chain begins (release-time waits, time zero) or
    /// after the resource's last task (drain to makespan).
    StartupDrain,
}

/// All stall classes, in the fixed order reports list them.
pub const STALL_CLASSES: [StallClass; 5] = [
    StallClass::WaitingOnTransfer,
    StallClass::WaitingOnDependency,
    StallClass::CapacityEvicted,
    StallClass::OptimizerExposed,
    StallClass::StartupDrain,
];

impl StallClass {
    /// Stable kebab-case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::WaitingOnTransfer => "waiting-on-transfer",
            StallClass::WaitingOnDependency => "waiting-on-dependency",
            StallClass::CapacityEvicted => "capacity-evicted",
            StallClass::OptimizerExposed => "optimizer-exposed",
            StallClass::StartupDrain => "startup-drain",
        }
    }
}

impl fmt::Display for StallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One task on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// The task.
    pub task: TaskId,
    /// Resource it ran on.
    pub resource: ResourceId,
    /// Task kind.
    pub kind: TaskKind,
    /// Task label.
    pub label: String,
    /// Start, integer microseconds.
    pub start_us: u64,
    /// Duration, integer microseconds.
    pub dur_us: u64,
}

/// Stall attribution for one resource: its idle time partitioned into the
/// five [`StallClass`]es.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceStalls {
    /// Resource name.
    pub name: String,
    /// Busy microseconds ([`Trace::busy_us`]).
    pub busy_us: u64,
    /// Idle microseconds ([`Trace::idle_us`]); always equals the sum of
    /// `by_class`.
    pub idle_us: u64,
    /// Idle microseconds per class, in [`STALL_CLASSES`] order.
    pub by_class: [u64; 5],
}

impl ResourceStalls {
    /// Idle microseconds charged to `class`.
    pub fn class_us(&self, class: StallClass) -> u64 {
        self.by_class[STALL_CLASSES.iter().position(|&c| c == class).unwrap()]
    }
}

/// One entry of the bottleneck ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Resource name.
    pub resource: String,
    /// Microseconds of critical-path time spent on this resource.
    pub critical_path_us: u64,
    /// `critical_path_us` as a fraction of the critical-path length.
    pub cp_share: f64,
    /// Total busy microseconds of the resource.
    pub busy_us: u64,
    /// Upper bound on end-to-end speedup if this resource ran 2× faster:
    /// `makespan / critical-path-with-halved-durations`. The bound assumes
    /// the schedule shape is fixed and everything off the new critical
    /// path compresses perfectly — real speedup will be lower.
    pub speedup_bound: f64,
}

/// The structured result of analyzing one trace.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Makespan in integer microseconds.
    pub makespan_us: u64,
    /// Critical-path length (sum of durations along the longest chain).
    /// Invariants: `cp_len_us <= makespan_us` and `cp_len_us >=
    /// busy_us(r)` for every resource `r`.
    pub cp_len_us: u64,
    /// The critical path, in execution order.
    pub critical_path: Vec<CriticalStep>,
    /// Per-task slack in microseconds, indexed by task submission order:
    /// how much the task could stretch without lengthening the critical
    /// path. Zero for every critical-path task.
    pub slack_us: Vec<u64>,
    /// Stall attribution per resource, in registration order.
    pub stalls: Vec<ResourceStalls>,
    /// Resources ranked by critical-path share (largest first), with
    /// what-if headroom estimates. Only resources that appear on the
    /// critical path are listed.
    pub bottlenecks: Vec<Bottleneck>,
}

/// Per-task scheduling facts the analyzer derives once and reuses.
struct Graph<'a> {
    trace: &'a Trace,
    /// Interval of each task, indexed by task id.
    ivs: Vec<&'a Interval>,
    /// Previous task in serialization order on the same resource.
    resource_pred: Vec<Option<TaskId>>,
    /// Sorted interval lists per resource (by start, end, task id).
    by_resource: Vec<Vec<&'a Interval>>,
}

impl<'a> Graph<'a> {
    fn new(trace: &'a Trace) -> Self {
        let n = trace.intervals().len();
        let mut ivs: Vec<Option<&Interval>> = vec![None; n];
        for iv in trace.intervals() {
            ivs[iv.task.index()] = Some(iv);
        }
        let ivs: Vec<&Interval> = ivs.into_iter().map(Option::unwrap).collect();

        let mut by_resource: Vec<Vec<&Interval>> = vec![Vec::new(); trace.resource_names().len()];
        for iv in trace.intervals() {
            by_resource[iv.resource.index()].push(iv);
        }
        let mut resource_pred = vec![None; n];
        for row in &mut by_resource {
            row.sort_by(|a, b| {
                (a.start, a.end, a.task)
                    .partial_cmp(&(b.start, b.end, b.task))
                    .unwrap()
            });
            for pair in row.windows(2) {
                resource_pred[pair[1].task.index()] = Some(pair[0].task);
            }
        }
        Graph {
            trace,
            ivs,
            resource_pred,
            by_resource,
        }
    }

    /// All predecessors of `t`: submitted dependencies plus the previous
    /// task on the same resource.
    fn preds(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.trace
            .deps_of(t)
            .iter()
            .copied()
            .chain(self.resource_pred[t.index()])
    }

    /// The predecessor whose completion bound `t`'s start time (its end
    /// equals `t`'s start bit-exactly — the engine copies these values),
    /// or `None` when `t` started at its release time (or time zero).
    ///
    /// Ties are broken deterministically: highest task id wins, with
    /// dependency edges preferred over the resource-serialization edge.
    fn binding_pred(&self, t: TaskId) -> Option<TaskId> {
        let start = self.ivs[t.index()].start;
        let mut best: Option<TaskId> = None;
        // Resource edge first so an equal-id... ids are unique; scan deps
        // last so they win ties in `>=` below.
        for p in self.resource_pred[t.index()]
            .into_iter()
            .chain(self.trace.deps_of(t).iter().copied())
        {
            if self.ivs[p.index()].end == start && best.is_none_or(|b| p >= b) {
                best = Some(p);
            }
        }
        best
    }
}

/// Classifies the stall caused by waiting on `iv`, or `None` for a
/// zero-duration synchronization task (the walk chases through those to
/// the real cause).
fn class_of(iv: &Interval) -> Option<StallClass> {
    if iv.kind == TaskKind::Sync && iv.duration_us() == 0 {
        return None;
    }
    Some(match iv.tag {
        TaskTag::OptimizerStep => StallClass::OptimizerExposed,
        TaskTag::Eviction => StallClass::CapacityEvicted,
        TaskTag::Generic => match iv.kind {
            TaskKind::Transfer | TaskKind::Cast | TaskKind::Collective => {
                StallClass::WaitingOnTransfer
            }
            _ => StallClass::WaitingOnDependency,
        },
    })
}

/// Longest path (sum of `dur_us`) ending at each task, over dependency +
/// resource-serialization edges, with optional duration scaling for the
/// what-if recompute. `halved` selects a resource whose durations count
/// half.
fn longest_path(g: &Graph<'_>, order: &[TaskId], halved: Option<ResourceId>) -> Vec<u64> {
    let dur = |t: TaskId| -> u64 {
        let iv = g.ivs[t.index()];
        let d = iv.duration_us();
        if Some(iv.resource) == halved {
            d / 2
        } else {
            d
        }
    };
    let mut up = vec![0u64; g.ivs.len()];
    for &t in order {
        let base = g.preds(t).map(|p| up[p.index()]).max().unwrap_or(0);
        up[t.index()] = base + dur(t);
    }
    up
}

/// Analyzes an executed trace: critical path, per-task slack, stall
/// attribution, and bottleneck ranking. Deterministic — identical traces
/// produce identical reports.
pub fn analyze(trace: &Trace) -> AnalysisReport {
    let g = Graph::new(trace);
    let n = g.ivs.len();
    let makespan_us = trace.makespan_us();

    // Topological order: every edge (dependency or resource serialization)
    // goes from an earlier (start, end, id) triple to a later one, except
    // that a dependency's endpoints can share all three... they cannot:
    // ids are unique, and dependency edges always point id-upward while
    // resource edges follow the sorted serialization order. Sorting by
    // (start, end, id) with the resource rows' own order spliced in is
    // fragile, so use an explicit Kahn pass instead.
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for iv in trace.intervals() {
        let t = iv.task;
        for p in g.preds(t) {
            succs[p.index()].push(t);
            indegree[t.index()] += 1;
        }
    }
    let mut order: Vec<TaskId> = Vec::with_capacity(n);
    let mut queue: Vec<TaskId> = (0..n)
        .map(TaskId::from_index)
        .filter(|t| indegree[t.index()] == 0)
        .collect();
    while let Some(t) = queue.pop() {
        order.push(t);
        for &s in &succs[t.index()] {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "executed trace cannot contain a cycle");

    // --- Critical path and slack -----------------------------------------
    let up = longest_path(&g, &order, None);
    let mut down = vec![0u64; n];
    for &t in order.iter().rev() {
        let base = succs[t.index()]
            .iter()
            .map(|s| down[s.index()])
            .max()
            .unwrap_or(0);
        down[t.index()] = base + g.ivs[t.index()].duration_us();
    }
    let cp_len_us = up.iter().copied().max().unwrap_or(0);
    let slack_us: Vec<u64> = (0..n)
        .map(|i| cp_len_us - (up[i] + down[i] - g.ivs[i].duration_us()))
        .collect();

    // Backtrack one longest chain: end at the smallest-id maximal task,
    // then repeatedly step to a predecessor that realizes the remainder.
    let mut critical_path = Vec::new();
    if n > 0 {
        let mut cur = (0..n)
            .map(TaskId::from_index)
            .min_by_key(|t| (std::cmp::Reverse(up[t.index()]), *t))
            .unwrap();
        loop {
            let iv = g.ivs[cur.index()];
            critical_path.push(CriticalStep {
                task: cur,
                resource: iv.resource,
                kind: iv.kind,
                label: iv.label.clone(),
                start_us: iv.start.as_micros_rounded(),
                dur_us: iv.duration_us(),
            });
            let remainder = up[cur.index()] - iv.duration_us();
            if remainder == 0 {
                break;
            }
            cur = g
                .preds(cur)
                .filter(|p| up[p.index()] == remainder)
                .min()
                .expect("longest-path remainder is realized by some predecessor");
        }
        critical_path.reverse();
    }

    // --- Stall attribution ------------------------------------------------
    let mut stalls = Vec::with_capacity(trace.resource_names().len());
    for (ridx, name) in trace.resource_names().iter().enumerate() {
        let rid = ResourceId::from_index(ridx);
        let mut by_class = [0u64; 5];
        let mut charge = |class: StallClass, us: u64| {
            by_class[STALL_CLASSES.iter().position(|&c| c == class).unwrap()] += us;
        };

        // Walk the binding chain backwards from `task`, charging the idle
        // window [gap_start_us, gap_end_us) segment by segment.
        let mut attribute = |task: TaskId, gap_start_us: u64, gap_end_us: u64| {
            let mut seg_end_us = gap_end_us;
            let mut cur = task;
            loop {
                let Some(p) = g.binding_pred(cur) else {
                    // Started at its release time (or time zero): the
                    // remaining window has no in-trace cause.
                    charge(StallClass::StartupDrain, seg_end_us - gap_start_us);
                    return;
                };
                let p_iv = g.ivs[p.index()];
                let p_start_us = p_iv.start.as_micros_rounded();
                if let Some(class) = class_of(p_iv) {
                    let lo = p_start_us.max(gap_start_us).min(seg_end_us);
                    charge(class, seg_end_us - lo);
                    seg_end_us = lo;
                }
                if p_start_us <= gap_start_us {
                    // p (and through it, the rest of the chain) covers the
                    // remainder of the window.
                    charge(
                        class_of(p_iv).unwrap_or(StallClass::WaitingOnDependency),
                        seg_end_us - gap_start_us,
                    );
                    return;
                }
                seg_end_us = seg_end_us.min(p_start_us);
                cur = p;
            }
        };

        let row = &g.by_resource[ridx];
        let mut run_end_us = 0u64;
        for iv in row {
            let start_us = iv.start.as_micros_rounded();
            if start_us > run_end_us {
                attribute(iv.task, run_end_us, start_us);
            }
            run_end_us = run_end_us.max(iv.end.as_micros_rounded());
        }
        if makespan_us > run_end_us {
            charge(StallClass::StartupDrain, makespan_us - run_end_us);
        }

        stalls.push(ResourceStalls {
            name: name.clone(),
            busy_us: trace.busy_us(rid),
            idle_us: trace.idle_us(rid),
            by_class,
        });
    }

    // --- Bottleneck ranking with what-if headroom -------------------------
    let mut cp_by_resource = vec![0u64; trace.resource_names().len()];
    for step in &critical_path {
        cp_by_resource[step.resource.index()] += step.dur_us;
    }
    let mut ranked: Vec<usize> = (0..cp_by_resource.len())
        .filter(|&r| cp_by_resource[r] > 0)
        .collect();
    ranked.sort_by_key(|&r| (std::cmp::Reverse(cp_by_resource[r]), r));
    let bottlenecks = ranked
        .into_iter()
        .take(5)
        .map(|r| {
            let rid = ResourceId::from_index(r);
            let halved = longest_path(&g, &order, Some(rid));
            let new_cp = halved.iter().copied().max().unwrap_or(0);
            Bottleneck {
                resource: trace.resource_names()[r].clone(),
                critical_path_us: cp_by_resource[r],
                cp_share: if cp_len_us > 0 {
                    cp_by_resource[r] as f64 / cp_len_us as f64
                } else {
                    0.0
                },
                busy_us: trace.busy_us(rid),
                speedup_bound: if new_cp > 0 {
                    makespan_us as f64 / new_cp as f64
                } else {
                    1.0
                },
            }
        })
        .collect();

    AnalysisReport {
        makespan_us,
        cp_len_us,
        critical_path,
        slack_us,
        stalls,
        bottlenecks,
    }
}

impl AnalysisReport {
    /// Total idle microseconds across all resources.
    pub fn total_idle_us(&self) -> u64 {
        self.stalls.iter().map(|s| s.idle_us).sum()
    }

    /// Total idle microseconds per class across all resources, in
    /// [`STALL_CLASSES`] order.
    pub fn totals_by_class(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for s in &self.stalls {
            for (t, v) in totals.iter_mut().zip(&s.by_class) {
                *t += v;
            }
        }
        totals
    }

    /// The longest critical-path steps (duration-descending, then start,
    /// then task id), for compact reporting.
    pub fn top_steps(&self, k: usize) -> Vec<&CriticalStep> {
        let mut steps: Vec<&CriticalStep> = self.critical_path.iter().collect();
        steps.sort_by_key(|s| (std::cmp::Reverse(s.dur_us), s.start_us, s.task));
        steps.truncate(k);
        steps
    }

    /// Serializes the report as a deterministic, versioned JSON object
    /// (schema [`ANALYSIS_SCHEMA`]). `meta` entries identify the run, as
    /// in [`crate::telemetry::MetricsRecorder::snapshot_json`].
    ///
    /// The critical path is summarized (length, per-resource and per-kind
    /// totals, the 32 longest steps); full per-task slack is reduced to
    /// counts so snapshots stay diff- and gate-friendly.
    pub fn to_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", escape_json(ANALYSIS_SCHEMA));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", escape_json(k), escape_json(v));
        }
        if !meta.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"makespan_us\": {},", self.makespan_us);

        // Critical path.
        let mut by_res: BTreeMap<&str, u64> = BTreeMap::new();
        let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.critical_path {
            *by_res
                .entry(&self.stalls[s.resource.index()].name)
                .or_insert(0) += s.dur_us;
            *by_kind.entry(s.kind.to_string()).or_insert(0) += s.dur_us;
        }
        out.push_str("  \"critical_path\": {\n");
        let _ = writeln!(out, "    \"length_us\": {},", self.cp_len_us);
        let _ = writeln!(out, "    \"tasks\": {},", self.critical_path.len());
        let frac = if self.makespan_us > 0 {
            self.cp_len_us as f64 / self.makespan_us as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "    \"makespan_fraction\": {frac},");
        out.push_str("    \"by_resource_us\": {");
        for (i, (k, v)) in by_res.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(k));
        }
        out.push_str("},\n    \"by_kind_us\": {");
        for (i, (k, v)) in by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(k));
        }
        out.push_str("},\n    \"top_steps\": [");
        for (i, s) in self.top_steps(32).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"task\": {}, \"resource\": \"{}\", \"kind\": \"{}\", \"label\": \"{}\", \"start_us\": {}, \"dur_us\": {}}}",
                s.task.index(),
                escape_json(&self.stalls[s.resource.index()].name),
                s.kind,
                escape_json(&s.label),
                s.start_us,
                s.dur_us,
            );
        }
        if !self.critical_path.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  },\n");

        // Slack summary.
        let zero_slack = self.slack_us.iter().filter(|&&s| s == 0).count();
        let total_slack: u64 = self.slack_us.iter().sum();
        let _ = writeln!(
            out,
            "  \"slack\": {{\"tasks\": {}, \"zero_slack_tasks\": {zero_slack}, \"total_slack_us\": {total_slack}}},",
            self.slack_us.len()
        );

        // Stalls.
        out.push_str("  \"stalls\": {\n");
        let _ = writeln!(out, "    \"total_idle_us\": {},", self.total_idle_us());
        out.push_str("    \"by_class_us\": {");
        for (i, (class, total)) in STALL_CLASSES.iter().zip(self.totals_by_class()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{class}\": {total}");
        }
        out.push_str("},\n    \"resources\": [");
        for (i, s) in self.stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"name\": \"{}\", \"busy_us\": {}, \"idle_us\": {}, \"classes\": {{",
                escape_json(&s.name),
                s.busy_us,
                s.idle_us
            );
            for (j, (class, v)) in STALL_CLASSES.iter().zip(&s.by_class).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{class}\": {v}");
            }
            out.push_str("}}");
        }
        if !self.stalls.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  },\n");

        // Bottlenecks.
        out.push_str("  \"bottlenecks\": [");
        for (i, b) in self.bottlenecks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"resource\": \"{}\", \"critical_path_us\": {}, \"cp_share\": {}, \"busy_us\": {}, \"speedup_bound\": {}}}",
                escape_json(&b.resource),
                b.critical_path_us,
                b.cp_share,
                b.busy_us,
                b.speedup_bound,
            );
        }
        if !self.bottlenecks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render_table(&self) -> String {
        let ms = |us: u64| us as f64 / 1e3;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan {:.3} ms, critical path {:.3} ms ({:.1}% of makespan, {} tasks)",
            ms(self.makespan_us),
            ms(self.cp_len_us),
            if self.makespan_us > 0 {
                100.0 * self.cp_len_us as f64 / self.makespan_us as f64
            } else {
                0.0
            },
            self.critical_path.len(),
        );
        let _ = writeln!(
            out,
            "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "resource", "busy ms", "idle ms", "xfer ms", "dep ms", "evict ms", "opt ms", "edge ms"
        );
        for s in &self.stalls {
            let _ = writeln!(
                out,
                "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                s.name,
                ms(s.busy_us),
                ms(s.idle_us),
                ms(s.by_class[0]),
                ms(s.by_class[1]),
                ms(s.by_class[2]),
                ms(s.by_class[3]),
                ms(s.by_class[4]),
            );
        }
        let _ = writeln!(
            out,
            "\n{:<12} {:>10} {:>9} {:>14}",
            "bottleneck", "cp ms", "share", "2x speedup <="
        );
        for b in &self.bottlenecks {
            let _ = writeln!(
                out,
                "{:<12} {:>10.3} {:>8.1}% {:>13.2}x",
                b.resource,
                ms(b.critical_path_us),
                b.cp_share * 100.0,
                b.speedup_bound,
            );
        }
        let _ = writeln!(out, "\ntop critical-path steps:");
        for s in self.top_steps(8) {
            let _ = writeln!(
                out,
                "  {:<24} {:<10} {:>10.3} ms at {:>10.3} ms",
                if s.label.is_empty() {
                    "(task)"
                } else {
                    &s.label
                },
                self.stalls[s.resource.index()].name,
                ms(s.dur_us),
                ms(s.start_us),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulator, TaskSpec};
    use crate::time::SimTime;

    fn ms(x: f64) -> SimTime {
        SimTime::from_millis(x)
    }

    /// gpu: bwd(4ms) ......... fwd(2ms)
    /// cpu: ........ step(3ms) .........
    /// The GPU idles 3 ms waiting on the (tagged) optimizer step.
    fn optimizer_exposed_trace() -> Trace {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let cpu = sim.add_resource("cpu");
        let bwd = sim
            .add_task(TaskSpec::compute(gpu, ms(4.0)).with_label("bwd"))
            .unwrap();
        let step = sim
            .add_task(
                TaskSpec::compute(cpu, ms(3.0))
                    .with_label("step")
                    .tagged(TaskTag::OptimizerStep)
                    .after(bwd),
            )
            .unwrap();
        sim.add_task(
            TaskSpec::compute(gpu, ms(2.0))
                .with_label("fwd")
                .after(step),
        )
        .unwrap();
        sim.run().unwrap()
    }

    #[test]
    fn critical_path_is_the_full_chain() {
        let report = analyze(&optimizer_exposed_trace());
        assert_eq!(report.makespan_us, 9_000);
        assert_eq!(report.cp_len_us, 9_000);
        let labels: Vec<&str> = report
            .critical_path
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(labels, vec!["bwd", "step", "fwd"]);
        assert!(report.slack_us.iter().all(|&s| s == 0));
    }

    #[test]
    fn gpu_idle_charged_to_exposed_optimizer() {
        let report = analyze(&optimizer_exposed_trace());
        let gpu = &report.stalls[0];
        assert_eq!(gpu.idle_us, 3_000);
        assert_eq!(gpu.class_us(StallClass::OptimizerExposed), 3_000);
        let cpu = &report.stalls[1];
        assert_eq!(cpu.idle_us, 6_000);
        // 4 ms waiting for bwd, 2 ms drain after its last task.
        assert_eq!(cpu.class_us(StallClass::WaitingOnDependency), 4_000);
        assert_eq!(cpu.class_us(StallClass::StartupDrain), 2_000);
    }

    #[test]
    fn stall_classes_partition_idle_exactly() {
        let trace = optimizer_exposed_trace();
        let report = analyze(&trace);
        for (ridx, s) in report.stalls.iter().enumerate() {
            let sum: u64 = s.by_class.iter().sum();
            assert_eq!(sum, s.idle_us);
            assert_eq!(s.idle_us, trace.idle_us(ResourceId::from_index(ridx)));
        }
    }

    #[test]
    fn transfer_stall_classified_and_chased_through_sync() {
        // gpu: a(2ms) ................. c
        // link: ...... x(3ms, evict) ....
        // gate: sync after x; c waits on gate.
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        let link = sim.add_resource("link");
        let a = sim.add_task(TaskSpec::compute(gpu, ms(2.0))).unwrap();
        let x = sim
            .add_task(
                TaskSpec::transfer(link, ms(3.0))
                    .tagged(TaskTag::Eviction)
                    .after(a),
            )
            .unwrap();
        let gate = sim.add_task(TaskSpec::sync(gpu).after(x)).unwrap();
        sim.add_task(TaskSpec::compute(gpu, ms(1.0)).after(gate))
            .unwrap();
        let report = analyze(&sim.run().unwrap());
        let gpu_stalls = &report.stalls[0];
        assert_eq!(gpu_stalls.idle_us, 3_000);
        // The sync gate is chased through to the tagged eviction transfer.
        assert_eq!(gpu_stalls.class_us(StallClass::CapacityEvicted), 3_000);
    }

    #[test]
    fn cp_invariants_hold() {
        let trace = optimizer_exposed_trace();
        let report = analyze(&trace);
        assert!(report.cp_len_us <= report.makespan_us);
        for ridx in 0..trace.resource_names().len() {
            assert!(report.cp_len_us >= trace.busy_us(ResourceId::from_index(ridx)));
        }
    }

    #[test]
    fn bottlenecks_ranked_with_headroom() {
        let report = analyze(&optimizer_exposed_trace());
        assert_eq!(report.bottlenecks[0].resource, "gpu");
        assert_eq!(report.bottlenecks[0].critical_path_us, 6_000);
        // Halving gpu time: cp = 2 + 3 + 1 = 6 ms; bound = 9/6.
        assert!((report.bottlenecks[0].speedup_bound - 1.5).abs() < 1e-12);
        let cpu = &report.bottlenecks[1];
        assert_eq!(cpu.resource, "cpu");
        // Halving cpu: cp = 4 + 1.5 + 2 = 7.5 ms; bound = 9/7.5 = 1.2.
        assert!((cpu.speedup_bound - 1.2).abs() < 1e-12);
    }

    #[test]
    fn slack_nonzero_off_critical_path() {
        // Two parallel chains: long (6ms) and short (1ms) joined by a gate.
        let mut sim = Simulator::new();
        let a = sim.add_resource("a");
        let b = sim.add_resource("b");
        let long = sim.add_task(TaskSpec::compute(a, ms(6.0))).unwrap();
        let short = sim.add_task(TaskSpec::compute(b, ms(1.0))).unwrap();
        sim.add_task(TaskSpec::sync(a).after(long).after(short))
            .unwrap();
        let report = analyze(&sim.run().unwrap());
        assert_eq!(report.slack_us[long.index()], 0);
        assert_eq!(report.slack_us[short.index()], 5_000);
    }

    #[test]
    fn startup_and_drain_attributed() {
        // One task released late on an otherwise empty resource pair.
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu");
        sim.add_resource("idle");
        sim.add_task(TaskSpec::compute(gpu, ms(1.0)).not_before(ms(2.0)))
            .unwrap();
        let report = analyze(&sim.run().unwrap());
        assert_eq!(report.stalls[0].class_us(StallClass::StartupDrain), 2_000);
        assert_eq!(report.stalls[1].class_us(StallClass::StartupDrain), 3_000);
        assert_eq!(report.makespan_us, 3_000);
        assert_eq!(report.cp_len_us, 1_000);
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let mut sim = Simulator::new();
        sim.add_resource("gpu");
        let report = analyze(&sim.run().unwrap());
        assert_eq!(report.makespan_us, 0);
        assert_eq!(report.cp_len_us, 0);
        assert!(report.critical_path.is_empty());
        assert!(report.bottlenecks.is_empty());
        crate::telemetry::validate_json(&report.to_json(&[])).unwrap();
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let trace = optimizer_exposed_trace();
        let a = analyze(&trace).to_json(&[("system", "demo".to_string())]);
        let b = analyze(&trace).to_json(&[("system", "demo".to_string())]);
        assert_eq!(a, b);
        crate::telemetry::validate_json(&a).unwrap();
        assert!(a.contains(ANALYSIS_SCHEMA));
        assert!(a.contains("\"optimizer-exposed\": 3000"));
        assert!(a.contains("\"by_resource_us\""));
    }

    #[test]
    fn table_renders_key_lines() {
        let s = analyze(&optimizer_exposed_trace()).render_table();
        assert!(s.contains("critical path"));
        assert!(s.contains("bottleneck"));
        assert!(s.contains("gpu"));
    }
}
