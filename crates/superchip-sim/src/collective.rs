//! Cost models for collective communication.
//!
//! All collectives use ring-algorithm costs over an alpha-beta link model,
//! the same first-order model used in the ZeRO and Ulysses papers:
//! a ring step moves one message chunk and costs `latency + chunk/bw`.

use crate::link::Link;
use crate::time::SimTime;

/// Collective cost calculator bound to a link and a rank count.
///
/// ```
/// use superchip_sim::prelude::*;
/// let link = superchip_sim::topology::link_gbps(LinkKind::Nvlink, 450.0, 2.0);
/// let coll = CollectiveCost::new(link, 4);
/// let t = coll.all_reduce(1 << 30);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCost {
    link: Link,
    ranks: u32,
}

impl CollectiveCost {
    /// Creates a calculator for `ranks` participants over `link`.
    ///
    /// # Panics
    /// Panics if `ranks` is zero.
    pub fn new(link: Link, ranks: u32) -> Self {
        assert!(ranks >= 1, "collectives need at least one rank");
        CollectiveCost { link, ranks }
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// The link the collective runs over.
    pub fn link(&self) -> &Link {
        &self.link
    }

    fn ring_steps(&self, chunk_bytes: f64) -> SimTime {
        let p = self.ranks as f64;
        if self.ranks == 1 {
            return SimTime::ZERO;
        }
        let step = self.link.curve.latency_secs + chunk_bytes / self.link.curve.peak_bytes_per_sec;
        SimTime::from_secs((p - 1.0) * step)
    }

    /// Ring all-gather: every rank contributes `bytes_per_rank` and ends with
    /// all contributions.
    pub fn all_gather(&self, bytes_per_rank: u64) -> SimTime {
        self.ring_steps(bytes_per_rank as f64)
    }

    /// Ring reduce-scatter of a buffer of `total_bytes` (each rank ends with
    /// the reduced `total_bytes / ranks` shard).
    pub fn reduce_scatter(&self, total_bytes: u64) -> SimTime {
        self.ring_steps(total_bytes as f64 / self.ranks as f64)
    }

    /// Ring all-reduce of `total_bytes` (reduce-scatter + all-gather).
    pub fn all_reduce(&self, total_bytes: u64) -> SimTime {
        let chunk = total_bytes as f64 / self.ranks as f64;
        self.ring_steps(chunk) + self.ring_steps(chunk)
    }

    /// All-to-all of `total_bytes` held by each rank (each rank keeps `1/p`
    /// and sends `1/p` to every peer) — the Ulysses attention exchange.
    pub fn all_to_all(&self, total_bytes_per_rank: u64) -> SimTime {
        self.ring_steps(total_bytes_per_rank as f64 / self.ranks as f64)
    }

    /// Pipelined broadcast of `bytes` from one root to all ranks.
    pub fn broadcast(&self, bytes: u64) -> SimTime {
        if self.ranks == 1 {
            return SimTime::ZERO;
        }
        let p = self.ranks as f64;
        SimTime::from_secs(
            (p - 1.0) * self.link.curve.latency_secs
                + bytes as f64 / self.link.curve.peak_bytes_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use crate::topology::link_gbps;
    use crate::GIB;

    fn coll(p: u32) -> CollectiveCost {
        CollectiveCost::new(link_gbps(LinkKind::Nvlink, 100.0, 1.0), p)
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let c = coll(1);
        assert_eq!(c.all_reduce(GIB), SimTime::ZERO);
        assert_eq!(c.all_gather(GIB), SimTime::ZERO);
        assert_eq!(c.reduce_scatter(GIB), SimTime::ZERO);
        assert_eq!(c.broadcast(GIB), SimTime::ZERO);
    }

    #[test]
    fn all_reduce_is_twice_reduce_scatter() {
        let c = coll(8);
        let rs = c.reduce_scatter(GIB).as_secs();
        let ar = c.all_reduce(GIB).as_secs();
        assert!((ar - 2.0 * rs).abs() < 1e-12);
    }

    #[test]
    fn all_reduce_cost_approaches_2x_bandwidth_bound() {
        // For large p, ring all-reduce moves ~2*bytes over the slowest link.
        let c = coll(64);
        let t = c.all_reduce(GIB).as_secs();
        let bound = 2.0 * GIB as f64 / 100e9;
        assert!(t > bound * 0.9 && t < bound * 1.2, "t={t}, bound={bound}");
    }

    #[test]
    fn all_gather_scales_with_ranks() {
        let t4 = coll(4).all_gather(256 << 20);
        let t8 = coll(8).all_gather(256 << 20);
        assert!(t8 > t4);
    }

    #[test]
    fn all_to_all_cheaper_than_all_gather() {
        // Per-rank data volume (p-1)/p * bytes/p vs (p-1)/p * bytes.
        let c = coll(8);
        assert!(c.all_to_all(GIB) < c.all_gather(GIB));
    }

    #[test]
    fn broadcast_pipelines() {
        let c = coll(16);
        let t = c.broadcast(GIB).as_secs();
        let serial = 15.0 * (GIB as f64 / 100e9);
        assert!(t < serial / 4.0, "broadcast should pipeline, t={t}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = coll(0);
    }
}
