//! Discrete-event simulator of tightly-coupled Superchip nodes.
//!
//! This crate is the *performance plane* of the SuperOffload reproduction: it
//! models the hardware that the paper evaluates on — Hopper GPUs, Grace CPUs,
//! the NVLink-C2C interconnect, HBM/DDR memory pools, NUMA affinity, and
//! multi-node fabrics — as a deterministic discrete-event simulation.
//!
//! Training systems (SuperOffload and its baselines) are expressed as *task
//! graphs*: compute and transfer operations with explicit dependencies, each
//! bound to a hardware resource. The [`engine::Simulator`] executes the graph
//! with an event-driven list scheduler, producing a [`trace::Trace`] from
//! which throughput, idle time, and utilization are derived.
//!
//! # Example
//!
//! ```
//! use superchip_sim::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! // A GH200 Superchip, as described in Table 1 of the paper.
//! let chip = ChipSpec::gh200();
//! let mut sim = Simulator::new();
//! let gpu = sim.add_resource("gpu0");
//! let link = sim.add_resource("c2c0");
//!
//! // 10 TFLOP of GPU compute followed by a 64 MiB transfer to the CPU.
//! let compute = sim.add_task(
//!     TaskSpec::compute(gpu, chip.gpu.time_for_flops(10e12))
//!         .with_label("backward"),
//! )?;
//! let xfer = sim.add_task(
//!     TaskSpec::transfer(link, chip.c2c.transfer_time(64 << 20))
//!         .with_label("grad swap-out")
//!         .after(compute),
//! )?;
//! let trace = sim.run()?;
//! assert!(trace.end_time(xfer).unwrap() > trace.end_time(compute).unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod chrome_trace;
pub mod collective;
pub mod engine;
pub mod error;
pub mod link;
pub mod memory;
pub mod presets;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;

pub use analysis::{analyze, AnalysisReport, StallClass};
pub use engine::{Simulator, TaskId, TaskKind, TaskSpec, TaskTag};
pub use error::SimError;
pub use link::{BandwidthCurve, Link, LinkKind};
pub use memory::MemoryPool;
pub use telemetry::{CounterTrack, MetricsRecorder};
pub use time::SimTime;
pub use topology::{ChipSpec, ClusterSpec, ComputeDevice, NodeSpec, NumaBinding};
pub use trace::{ResourceStats, Trace};

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::analysis::{analyze, AnalysisReport, StallClass, STALL_CLASSES};
    pub use crate::collective::{self, CollectiveCost};
    pub use crate::engine::{ResourceId, Simulator, TaskId, TaskKind, TaskSpec, TaskTag};
    pub use crate::error::SimError;
    pub use crate::link::{BandwidthCurve, Link, LinkKind};
    pub use crate::memory::MemoryPool;
    pub use crate::presets;
    pub use crate::telemetry::{CounterTrack, MetricsRecorder};
    pub use crate::time::SimTime;
    pub use crate::topology::{ChipSpec, ClusterSpec, ComputeDevice, NodeSpec, NumaBinding};
    pub use crate::trace::{ResourceStats, Trace};
}

/// One gibibyte in bytes.
pub const GIB: u64 = 1 << 30;
/// One mebibyte in bytes.
pub const MIB: u64 = 1 << 20;
/// One kibibyte in bytes.
pub const KIB: u64 = 1 << 10;
/// One gigabyte (decimal, as used in hardware datasheets) in bytes.
pub const GB: u64 = 1_000_000_000;
