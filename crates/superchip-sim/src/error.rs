//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::engine::{ResourceId, TaskId};

/// Errors produced by the simulator and its hardware models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An allocation request exceeded a memory pool's remaining capacity.
    OutOfMemory {
        /// Name of the pool that rejected the allocation.
        pool: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A task referenced a resource that was never registered.
    UnknownResource(ResourceId),
    /// A task referenced a dependency that does not exist (yet).
    UnknownTask(TaskId),
    /// The task graph contains a dependency cycle and cannot be scheduled.
    DependencyCycle {
        /// Number of tasks left unscheduled when progress stopped.
        unscheduled: usize,
    },
    /// A freed allocation did not match any live allocation.
    InvalidFree {
        /// Name of the pool.
        pool: String,
        /// Bytes whose release was requested.
        bytes: u64,
    },
    /// A configuration value was outside its valid domain.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                pool,
                requested,
                available,
            } => write!(
                f,
                "out of memory in pool `{pool}`: requested {requested} bytes, {available} available"
            ),
            SimError::UnknownResource(id) => write!(f, "unknown resource {id:?}"),
            SimError::UnknownTask(id) => write!(f, "unknown task {id:?}"),
            SimError::DependencyCycle { unscheduled } => write!(
                f,
                "task graph contains a dependency cycle ({unscheduled} tasks unscheduled)"
            ),
            SimError::InvalidFree { pool, bytes } => {
                write!(f, "invalid free of {bytes} bytes in pool `{pool}`")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SimError::OutOfMemory {
                pool: "hbm".into(),
                requested: 10,
                available: 5,
            },
            SimError::DependencyCycle { unscheduled: 3 },
            SimError::InvalidConfig("bad".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
